//! Compiler-IR twins of the four paper workloads (§5.1), for static
//! verification.
//!
//! Each builder mirrors the homomorphic structure of one workload kernel —
//! the same rotations, the same multiply depth, the same accumulation
//! shape — as a `choco::compiler` [`Program`]. `choco-verify` interprets
//! these circuits abstractly to certify, before any ciphertext is uploaded,
//! that the workload respects the level/rescale discipline, stays inside
//! the BFV noise budget at the paper's parameter sets, and requests only
//! rotations the client's Galois key set covers.
//!
//! The builders are the source of truth for the key-coverage tests: every
//! rotation a builder's program requests must appear in the corresponding
//! hand-maintained `*_rotation_steps` provisioning list (`dnn`, `distance`,
//! `pagerank`, `pipeline` each pin this in their test modules).
//!
//! Weight and mask *values* are irrelevant to verification — only shapes,
//! shifts, and depths matter — so the builders synthesize small
//! deterministic constants instead of threading real model weights through.

use crate::distance::distance_rotation_steps;
use crate::dnn::{conv_rotation_steps, conv_taps};
use crate::pagerank::pagerank_rotation_steps;
use crate::pipeline::{all_rotation_steps, LenetLikeSpec};
use choco::compiler::Program;
use choco::rotation::RedundantLayout;
use choco::stacking::StackedLayout;

/// One workload's compiler-IR twin plus the Galois steps the client
/// provisions for it (the set `KEY001` checks rotations against).
#[derive(Debug, Clone)]
pub struct WorkloadCircuit {
    /// Short workload name (`"pipeline"`, `"dnn_conv"`, …).
    pub name: &'static str,
    /// The source program, ready for `compile()` / `to_circuit()`.
    pub program: Program,
    /// Rotation steps the client's key set covers for this workload.
    pub galois_steps: Vec<i64>,
}

/// All four workloads at their reference shapes — what the `choco-verify`
/// CLI and ci.sh verify under both paper parameter sets.
pub fn all_workloads() -> Vec<WorkloadCircuit> {
    let spec = LenetLikeSpec::tiny();
    vec![
        WorkloadCircuit {
            name: "pipeline",
            program: pipeline_program(&spec),
            galois_steps: all_rotation_steps(&spec, 512),
        },
        WorkloadCircuit {
            name: "dnn_conv",
            program: dnn_conv_program(4, 8, 8, 3),
            galois_steps: conv_rotation_steps(4, 8, 8, 3),
        },
        WorkloadCircuit {
            name: "pagerank",
            program: pagerank_program(8),
            galois_steps: pagerank_rotation_steps(8),
        },
        WorkloadCircuit {
            name: "distance",
            program: distance_program(4, 6, 512),
            galois_steps: distance_rotation_steps(4, 6, 512),
        },
    ]
}

/// The pipeline's encrypted fully-connected stage: a diagonal-method
/// matvec over `fc_inputs` features (one rotation + plaintext multiply per
/// diagonal, rotate-and-accumulate) followed by a plaintext bias add.
/// Multiplicative depth 1.
pub fn pipeline_program(spec: &LenetLikeSpec) -> Program {
    let m = spec.fc_inputs();
    let mut prog = Program::new();
    let x = prog.input("activations");
    let mut acc = None;
    for d in 0..m {
        let diag: Vec<f64> = (0..m).map(|j| (((j + d) % 16) + 1) as f64).collect();
        let c = prog.constant(&diag);
        let rot = if d == 0 { x } else { prog.rotate(x, d as i64) };
        let term = prog.mul_plain(rot, c);
        acc = Some(match acc {
            None => term,
            Some(a) => prog.add(a, term),
        });
    }
    let sum = acc.unwrap_or(x);
    let bias: Vec<f64> = (0..m).map(|j| (j % 7) as f64).collect();
    let b = prog.constant(&bias);
    let out = prog.add_plain(sum, b);
    prog.output(out);
    prog
}

/// One stacked convolution layer: the filter-tap rotations of
/// [`conv_taps`] with per-tap plaintext mask multiplies, then the
/// `log2(in_ch)` rotate-add channel-accumulation tree over the stacked
/// layout. Multiplicative depth 1.
pub fn dnn_conv_program(in_ch: usize, h: usize, w: usize, f: usize) -> Program {
    let pad = f / 2;
    let layout = StackedLayout::new(in_ch, RedundantLayout::new(h * w, pad * (w + 1)));
    let width = layout.slots_used();
    let weights: Vec<Vec<u64>> = (0..in_ch)
        .map(|c| (0..f * f).map(|i| ((i + c) % 16) as u64).collect())
        .collect();

    let mut prog = Program::new();
    let x = prog.input("channels");
    let mut acc = None;
    for tap in conv_taps(&weights, in_ch, f, w) {
        let mask: Vec<f64> = (0..width)
            .map(|j| {
                let ch = (j / layout.stride()) % in_ch;
                tap.channel_weights.get(ch).copied().unwrap_or(0) as f64
            })
            .collect();
        let c = prog.constant(&mask);
        let rot = if tap.shift == 0 {
            x
        } else {
            prog.rotate(x, tap.shift)
        };
        let term = prog.mul_plain(rot, c);
        acc = Some(match acc {
            None => term,
            Some(a) => prog.add(a, term),
        });
    }
    let mut folded = acc.unwrap_or(x);
    let mut step = 1usize;
    while step < in_ch {
        let r = prog.rotate(folded, (step * layout.stride()) as i64);
        folded = prog.add(folded, r);
        step <<= 1;
    }
    prog.output(folded);
    prog
}

/// One encrypted PageRank iteration: the diagonal-method matvec against
/// the (server-plaintext) transition matrix, a plaintext damping multiply,
/// and the teleport-term plaintext add. Multiplicative depth 2 in
/// plaintext multiplies — within the waterline band of both paper chains.
pub fn pagerank_program(n: usize) -> Program {
    let mut prog = Program::new();
    let r = prog.input("ranks");
    let mut acc = None;
    for d in 0..n {
        let diag: Vec<f64> = (0..n).map(|j| 1.0 / ((j + d + 1) as f64)).collect();
        let c = prog.constant(&diag);
        let rot = if d == 0 { r } else { prog.rotate(r, d as i64) };
        let term = prog.mul_plain(rot, c);
        acc = Some(match acc {
            None => term,
            Some(a) => prog.add(a, term),
        });
    }
    let matvec = acc.unwrap_or(r);
    let damping = prog.constant(&vec![0.85; n]);
    let damped = prog.mul_plain(matvec, damping);
    let teleport = prog.constant(&vec![0.15 / n as f64; n]);
    let out = prog.add_plain(damped, teleport);
    prog.output(out);
    prog
}

/// Squared-distance kernel (point-major packing): ciphertext subtract,
/// ciphertext square, then the three rotation groups of
/// [`distance_rotation_steps`] — the in-block fold, the collapse shifts,
/// and the stacked-dimension band folds. Multiplicative depth 1 (the only
/// ciphertext×ciphertext multiply in the suite).
pub fn distance_program(dims: usize, n_points: usize, slots: usize) -> Program {
    let stride = dims.next_power_of_two();
    let mut prog = Program::new();
    let q = prog.input("query");
    let p = prog.input("points");
    let d = prog.sub(q, p);
    let sq = prog.mul(d, d);

    let mut acc = sq;
    let mut step = 1usize;
    while step < stride {
        let r = prog.rotate(acc, step as i64);
        acc = prog.add(acc, r);
        step <<= 1;
    }
    for b in 1..n_points {
        let r = prog.rotate(acc, (b * stride - b) as i64);
        acc = prog.add(acc, r);
    }
    let mut per_ct = 1usize;
    while 2 * per_ct * n_points + n_points <= slots {
        per_ct *= 2;
    }
    per_ct = per_ct.min(dims);
    let mut band = 1usize;
    while band < per_ct {
        let r = prog.rotate(acc, (band * n_points) as i64);
        acc = prog.add(acc, r);
        band <<= 1;
    }
    prog.output(acc);
    prog
}

#[cfg(test)]
mod tests {
    use super::*;
    use choco::compiler::{compile, CompilerOptions};

    fn opts() -> CompilerOptions {
        CompilerOptions {
            scale_bits: 30,
            prime_bits: 45,
            max_levels: 3,
        }
    }

    #[test]
    fn every_workload_compiles_and_requests_only_advertised_rotations() {
        for w in all_workloads() {
            let compiled = compile(&w.program, &opts())
                .unwrap_or_else(|e| panic!("{}: compile failed: {e}", w.name));
            let requested = compiled.rotation_steps();
            assert!(!requested.is_empty(), "{}: no rotations", w.name);
            for s in requested {
                assert!(
                    w.galois_steps.contains(&s),
                    "{}: rotation {s} not in the provisioning list",
                    w.name
                );
            }
        }
    }

    #[test]
    fn workload_programs_execute_plain() {
        // The IR twins are real programs, not just rotation manifests:
        // plaintext execution must succeed on shape-matched inputs.
        let mut inputs = std::collections::HashMap::new();
        for name in ["activations", "channels", "ranks", "query", "points"] {
            let v: Vec<f64> = (0..16).map(|i| i as f64 * 0.1).collect();
            inputs.insert(name.to_string(), v);
        }
        for w in all_workloads() {
            let compiled = compile(&w.program, &opts()).unwrap();
            let out = compiled
                .execute_plain(&inputs)
                .unwrap_or_else(|e| panic!("{}: execute_plain failed: {e}", w.name));
            assert_eq!(out.len(), 1, "{}: one output expected", w.name);
        }
    }
}
