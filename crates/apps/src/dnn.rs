//! Quantized DNN inference workloads (Table 5, Figures 2/12/14/15).
//!
//! The four image-classification networks the paper evaluates are defined
//! structurally (layer geometry, MACs, parameters); weights are seeded
//! pseudo-random 4-bit values — every evaluated quantity (time, energy,
//! communication) depends only on structure, not on trained weights.
//! Accuracy columns of Table 5 are carried as published constants.
//!
//! The client-aided execution plan walks the layer graph: linear layers run
//! encrypted on the server; at every non-linear boundary (activation /
//! pooling) intermediate ciphertexts travel to the client, are decrypted,
//! processed, repacked with rotational redundancy, and re-encrypted.
//! [`InferencePlan`] counts those ciphertexts, bytes, and crypto operations —
//! the inputs to the CHOCO-TACO cost composition.
//!
//! A real encrypted convolution layer ([`run_encrypted_conv_layer`])
//! exercises the full stack (packing → encryption → server conv →
//! accumulation → decryption → unpacking) against a plaintext reference.

use choco::linalg::{accumulate_channels, stacked_conv, ConvTap};
use choco::rotation::RedundantLayout;
use choco::stacking::StackedLayout;
use choco::transport::{Channel, Session, TransportError};
use choco_he::bfv::Ciphertext;
use choco_he::params::HeParams;
use choco_he::{Bfv, HeError};

/// One layer of a network.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Layer {
    /// 2-D convolution (`same` padding when `padded`, else `valid`).
    Conv {
        /// Input channels.
        in_ch: usize,
        /// Output channels.
        out_ch: usize,
        /// Square filter size.
        filter: usize,
        /// Stride.
        stride: usize,
        /// Input height.
        in_h: usize,
        /// Input width.
        in_w: usize,
        /// Whether same-padding is applied.
        padded: bool,
    },
    /// Fully connected layer.
    Fc {
        /// Input features.
        in_features: usize,
        /// Output features.
        out_features: usize,
    },
    /// Element-wise activation over `elements` values (client-side).
    Activation {
        /// Number of activations.
        elements: usize,
    },
    /// Pooling: `channels` maps of `in_h × in_w` reduced by `window`
    /// (client-side).
    Pool {
        /// Channels.
        channels: usize,
        /// Input height.
        in_h: usize,
        /// Input width.
        in_w: usize,
        /// Pooling window (and stride).
        window: usize,
    },
}

impl Layer {
    /// Output spatial size of a conv layer.
    fn conv_out_hw(&self) -> Option<(usize, usize)> {
        match *self {
            Layer::Conv {
                filter,
                stride,
                in_h,
                in_w,
                padded,
                ..
            } => {
                let (h, w) = if padded {
                    (in_h, in_w)
                } else {
                    (in_h - filter + 1, in_w - filter + 1)
                };
                Some((h.div_ceil(stride), w.div_ceil(stride)))
            }
            _ => None,
        }
    }

    /// Multiply-accumulate operations this layer performs.
    pub fn macs(&self) -> u64 {
        match *self {
            Layer::Conv {
                in_ch,
                out_ch,
                filter,
                ..
            } => self.conv_out_hw().map_or(0, |(oh, ow)| {
                (oh * ow * out_ch * in_ch * filter * filter) as u64
            }),
            Layer::Fc {
                in_features,
                out_features,
            } => (in_features * out_features) as u64,
            _ => 0,
        }
    }

    /// Trainable parameters.
    pub fn params(&self) -> u64 {
        match *self {
            Layer::Conv {
                in_ch,
                out_ch,
                filter,
                ..
            } => (out_ch * in_ch * filter * filter + out_ch) as u64,
            Layer::Fc {
                in_features,
                out_features,
            } => (in_features * out_features + out_features) as u64,
            _ => 0,
        }
    }

    /// Number of output elements.
    pub fn output_elements(&self) -> usize {
        match *self {
            Layer::Conv { out_ch, .. } => self.conv_out_hw().map_or(0, |(oh, ow)| out_ch * oh * ow),
            Layer::Fc { out_features, .. } => out_features,
            Layer::Activation { elements } => elements,
            Layer::Pool {
                channels,
                in_h,
                in_w,
                window,
            } => channels * (in_h / window) * (in_w / window),
        }
    }

    /// Whether the layer runs encrypted on the server.
    pub fn is_linear(&self) -> bool {
        matches!(self, Layer::Conv { .. } | Layer::Fc { .. })
    }
}

/// Published Table 5 accuracy triple (float, 8-bit, 4-bit), percent.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Accuracy {
    /// Floating point accuracy.
    pub float: f64,
    /// 8-bit quantized accuracy.
    pub int8: f64,
    /// 4-bit quantized accuracy.
    pub int4: f64,
}

/// A DNN workload.
#[derive(Debug, Clone)]
pub struct Network {
    /// Display name.
    pub name: &'static str,
    /// Dataset label (MNIST / CIFAR-10).
    pub dataset: &'static str,
    /// Layers in order.
    pub layers: Vec<Layer>,
    /// Published accuracy (Table 5).
    pub accuracy: Accuracy,
}

impl Network {
    /// Total MACs across linear layers.
    pub fn total_macs(&self) -> u64 {
        self.layers.iter().map(Layer::macs).sum()
    }

    /// Total parameters.
    pub fn total_params(&self) -> u64 {
        self.layers.iter().map(Layer::params).sum()
    }

    /// Model size in bytes at `bits_per_weight` precision.
    pub fn model_bytes(&self, bits_per_weight: u32) -> u64 {
        self.total_params() * bits_per_weight as u64 / 8
    }

    /// Layer counts `(conv, fc, activation, pool)` — Table 5's shape columns.
    pub fn layer_counts(&self) -> (usize, usize, usize, usize) {
        let mut c = (0, 0, 0, 0);
        for l in &self.layers {
            match l {
                Layer::Conv { .. } => c.0 += 1,
                Layer::Fc { .. } => c.1 += 1,
                Layer::Activation { .. } => c.2 += 1,
                Layer::Pool { .. } => c.3 += 1,
            }
        }
        c
    }

    /// LeNet-5-Small (mlpack digit recognizer; MNIST; 0.24 M MACs).
    pub fn lenet_small() -> Network {
        Network {
            name: "LeNetSm",
            dataset: "MNIST",
            layers: vec![
                Layer::Conv {
                    in_ch: 1,
                    out_ch: 6,
                    filter: 5,
                    stride: 1,
                    in_h: 28,
                    in_w: 28,
                    padded: false,
                },
                Layer::Activation {
                    elements: 6 * 24 * 24,
                },
                Layer::Pool {
                    channels: 6,
                    in_h: 24,
                    in_w: 24,
                    window: 2,
                },
                Layer::Conv {
                    in_ch: 6,
                    out_ch: 16,
                    filter: 5,
                    stride: 1,
                    in_h: 12,
                    in_w: 12,
                    padded: false,
                },
                Layer::Activation {
                    elements: 16 * 8 * 8,
                },
                Layer::Pool {
                    channels: 16,
                    in_h: 8,
                    in_w: 8,
                    window: 2,
                },
                Layer::Fc {
                    in_features: 256,
                    out_features: 10,
                },
            ],
            accuracy: Accuracy {
                float: 99.0,
                int8: 94.9,
                int4: 93.8,
            },
        }
    }

    /// LeNet-5-Large (TensorFlow tutorial model; MNIST; 12.27 M MACs).
    pub fn lenet_large() -> Network {
        Network {
            name: "LeNetLg",
            dataset: "MNIST",
            layers: vec![
                Layer::Conv {
                    in_ch: 1,
                    out_ch: 32,
                    filter: 5,
                    stride: 1,
                    in_h: 28,
                    in_w: 28,
                    padded: true,
                },
                Layer::Activation {
                    elements: 32 * 28 * 28,
                },
                Layer::Pool {
                    channels: 32,
                    in_h: 28,
                    in_w: 28,
                    window: 2,
                },
                Layer::Conv {
                    in_ch: 32,
                    out_ch: 64,
                    filter: 5,
                    stride: 1,
                    in_h: 14,
                    in_w: 14,
                    padded: true,
                },
                Layer::Activation {
                    elements: 64 * 14 * 14,
                },
                Layer::Pool {
                    channels: 64,
                    in_h: 14,
                    in_w: 14,
                    window: 2,
                },
                Layer::Fc {
                    in_features: 3136,
                    out_features: 512,
                },
                Layer::Activation { elements: 512 },
                Layer::Fc {
                    in_features: 512,
                    out_features: 10,
                },
            ],
            accuracy: Accuracy {
                float: 98.7,
                int8: 97.2,
                int4: 96.4,
            },
        }
    }

    /// SqueezeNet for CIFAR-10 (fire-module stack; ≈32.6 M MACs).
    pub fn squeezenet() -> Network {
        let mut layers = vec![
            Layer::Conv {
                in_ch: 3,
                out_ch: 64,
                filter: 3,
                stride: 2,
                in_h: 32,
                in_w: 32,
                padded: true,
            },
            Layer::Activation {
                elements: 64 * 16 * 16,
            },
        ];
        // Fire 1 @16×16, in 64 → out 256.
        layers.extend([
            Layer::Conv {
                in_ch: 64,
                out_ch: 32,
                filter: 1,
                stride: 1,
                in_h: 16,
                in_w: 16,
                padded: true,
            },
            Layer::Activation {
                elements: 32 * 16 * 16,
            },
            Layer::Conv {
                in_ch: 32,
                out_ch: 128,
                filter: 1,
                stride: 1,
                in_h: 16,
                in_w: 16,
                padded: true,
            },
            Layer::Activation {
                elements: 128 * 16 * 16,
            },
            Layer::Conv {
                in_ch: 32,
                out_ch: 128,
                filter: 3,
                stride: 1,
                in_h: 16,
                in_w: 16,
                padded: true,
            },
            Layer::Activation {
                elements: 128 * 16 * 16,
            },
            Layer::Pool {
                channels: 256,
                in_h: 16,
                in_w: 16,
                window: 2,
            },
        ]);
        // Fire 2 @8×8, in 256 → out 512.
        layers.extend([
            Layer::Conv {
                in_ch: 256,
                out_ch: 64,
                filter: 1,
                stride: 1,
                in_h: 8,
                in_w: 8,
                padded: true,
            },
            Layer::Activation {
                elements: 64 * 8 * 8,
            },
            Layer::Conv {
                in_ch: 64,
                out_ch: 256,
                filter: 1,
                stride: 1,
                in_h: 8,
                in_w: 8,
                padded: true,
            },
            Layer::Activation {
                elements: 256 * 8 * 8,
            },
            Layer::Conv {
                in_ch: 64,
                out_ch: 256,
                filter: 3,
                stride: 1,
                in_h: 8,
                in_w: 8,
                padded: true,
            },
            Layer::Activation {
                elements: 256 * 8 * 8,
            },
            Layer::Pool {
                channels: 512,
                in_h: 8,
                in_w: 8,
                window: 2,
            },
        ]);
        // Fire 3 @4×4, in 512 → out 512 (3×3 expand only).
        layers.extend([
            Layer::Conv {
                in_ch: 512,
                out_ch: 128,
                filter: 1,
                stride: 1,
                in_h: 4,
                in_w: 4,
                padded: true,
            },
            Layer::Activation {
                elements: 128 * 4 * 4,
            },
            Layer::Conv {
                in_ch: 128,
                out_ch: 512,
                filter: 3,
                stride: 1,
                in_h: 4,
                in_w: 4,
                padded: true,
            },
            Layer::Activation {
                elements: 512 * 4 * 4,
            },
            Layer::Pool {
                channels: 512,
                in_h: 4,
                in_w: 4,
                window: 2,
            },
        ]);
        // Classifier conv 1×1 → 10.
        layers.extend([
            Layer::Conv {
                in_ch: 512,
                out_ch: 10,
                filter: 1,
                stride: 1,
                in_h: 2,
                in_w: 2,
                padded: true,
            },
            Layer::Activation {
                elements: 10 * 2 * 2,
            },
        ]);
        Network {
            name: "SqzNet",
            dataset: "CIFAR-10",
            layers,
            accuracy: Accuracy {
                float: 76.5,
                int8: 74.0,
                int4: 15.0,
            },
        }
    }

    /// VGG16 for CIFAR-10 (13 conv + 2 FC; ≈313 M MACs).
    pub fn vgg16() -> Network {
        let blocks: [(usize, usize, usize); 5] = [
            (2, 64, 32),
            (2, 128, 16),
            (3, 256, 8),
            (3, 512, 4),
            (3, 512, 2),
        ];
        let mut layers = Vec::new();
        let mut in_ch = 3usize;
        for (convs, ch, hw) in blocks {
            for _ in 0..convs {
                layers.push(Layer::Conv {
                    in_ch,
                    out_ch: ch,
                    filter: 3,
                    stride: 1,
                    in_h: hw,
                    in_w: hw,
                    padded: true,
                });
                layers.push(Layer::Activation {
                    elements: ch * hw * hw,
                });
                in_ch = ch;
            }
            layers.push(Layer::Pool {
                channels: ch,
                in_h: hw,
                in_w: hw,
                window: 2,
            });
        }
        layers.push(Layer::Fc {
            in_features: 512,
            out_features: 512,
        });
        layers.push(Layer::Activation { elements: 512 });
        layers.push(Layer::Fc {
            in_features: 512,
            out_features: 10,
        });
        Network {
            name: "VGG16",
            dataset: "CIFAR-10",
            layers,
            accuracy: Accuracy {
                float: 70.0,
                int8: 66.0,
                int4: 21.0,
            },
        }
    }

    /// The four Table 5 networks.
    pub fn all() -> Vec<Network> {
        vec![
            Self::lenet_small(),
            Self::lenet_large(),
            Self::squeezenet(),
            Self::vgg16(),
        ]
    }
}

/// Client-aided execution accounting for one single-image inference.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct InferencePlan {
    /// Client encryption operations.
    pub encryptions: u64,
    /// Client decryption operations.
    pub decryptions: u64,
    /// Total bytes transferred (both directions).
    pub comm_bytes: u64,
    /// Client↔server boundaries (non-linear stages).
    pub boundaries: u32,
    /// Elements processed by client non-linear code.
    pub nonlinear_elements: u64,
}

/// Ciphertexts needed to carry `slots` packed slots at `row_size` slots per
/// ciphertext row.
fn cts_for_slots(slots: usize, row_size: usize) -> u64 {
    slots.div_ceil(row_size) as u64
}

/// Slots a conv input occupies under redundant channel stacking.
fn stacked_slots(channels: usize, hw: usize, redundancy: usize) -> usize {
    channels * (hw + 2 * redundancy).next_power_of_two()
}

/// Builds the client-aided inference plan for `net` under parameter set
/// `params`.
///
/// The walk mirrors §5.1: the image is uploaded encrypted; every maximal
/// run of non-linear layers forms one boundary where the server's linear
/// output is downloaded and the repacked result re-uploaded.
pub fn client_aided_plan(net: &Network, params: &HeParams) -> InferencePlan {
    let row = params.degree() / 2;
    let ct_bytes = params.ciphertext_bytes() as u64;
    let mut plan = InferencePlan::default();

    // Initial upload: the input of the first linear layer.
    let first = &net.layers[0];
    let first_up = match *first {
        Layer::Conv {
            in_ch,
            in_h,
            in_w,
            filter,
            ..
        } => {
            let red = (filter / 2) * (in_w + 1);
            cts_for_slots(stacked_slots(in_ch, in_h * in_w, red), row)
        }
        Layer::Fc { in_features, .. } => cts_for_slots(2 * in_features, row),
        _ => 0,
    };
    plan.encryptions += first_up;
    plan.comm_bytes += first_up * ct_bytes;

    let n_layers = net.layers.len();
    let mut i = 0;
    while i < n_layers {
        if net.layers[i].is_linear() {
            // Find the end of the linear run.
            let mut j = i;
            while j + 1 < n_layers && net.layers[j + 1].is_linear() {
                j += 1;
            }
            let out_elems = net.layers[j].output_elements();
            // Download the linear output.
            let down = cts_for_slots(out_elems, row);
            plan.decryptions += down;
            plan.comm_bytes += down * ct_bytes;

            // Walk the non-linear run.
            let mut k = j + 1;
            let mut nonlinear = 0u64;
            while k < n_layers && !net.layers[k].is_linear() {
                nonlinear += net.layers[k].output_elements() as u64;
                k += 1;
            }
            plan.nonlinear_elements += nonlinear.max(out_elems as u64);

            if k < n_layers {
                // Re-upload packed for the next linear layer.
                let up = match net.layers[k] {
                    Layer::Conv {
                        in_ch,
                        in_h,
                        in_w,
                        filter,
                        ..
                    } => {
                        let red = (filter / 2) * (in_w + 1);
                        cts_for_slots(stacked_slots(in_ch, in_h * in_w, red), row)
                    }
                    Layer::Fc { in_features, .. } => cts_for_slots(2 * in_features, row),
                    _ => {
                        debug_assert!(false, "k indexes a linear layer");
                        0
                    }
                };
                plan.encryptions += up;
                plan.comm_bytes += up * ct_bytes;
                plan.boundaries += 1;
            }
            i = k;
        } else {
            i += 1;
        }
    }
    plan
}

/// One point of the Figure 15 convolution microbenchmark.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MicroPoint {
    /// Image height = width.
    pub img: usize,
    /// Input = output channels.
    pub channels: usize,
    /// Filter size (1 or 3).
    pub filter: usize,
    /// MACs of the layer.
    pub macs: u64,
    /// Boundary communication in bytes under `params`.
    pub comm_bytes: u64,
}

/// Generates the Figure 15 sweep: image sizes 2–32 (powers of two),
/// channels 32–512 (powers of two), filter sizes {1, 3}.
pub fn conv_microbenchmark(params: &HeParams) -> Vec<MicroPoint> {
    let row = params.degree() / 2;
    let ct_bytes = params.ciphertext_bytes() as u64;
    let mut out = Vec::new();
    let mut img = 2usize;
    while img <= 32 {
        let mut ch = 32usize;
        while ch <= 512 {
            for filter in [1usize, 3] {
                let layer = Layer::Conv {
                    in_ch: ch,
                    out_ch: ch,
                    filter,
                    stride: 1,
                    in_h: img,
                    in_w: img,
                    padded: true,
                };
                let red = (filter / 2) * (img + 1);
                let up = cts_for_slots(stacked_slots(ch, img * img, red), row);
                let down = cts_for_slots(layer.output_elements(), row);
                out.push(MicroPoint {
                    img,
                    channels: ch,
                    filter,
                    macs: layer.macs(),
                    comm_bytes: (up + down) * ct_bytes,
                });
            }
            ch *= 2;
        }
        img *= 2;
    }
    out
}

/// Plaintext reference: 2-D *circular* convolution per output channel
/// (matching the encrypted kernel's flattened-rotation semantics; callers
/// compare interior pixels for `valid` behaviour).
pub fn conv2d_plain_circular(
    input: &[Vec<u64>],        // [in_ch][h*w]
    weights: &[Vec<Vec<u64>>], // [out_ch][in_ch][f*f]
    h: usize,
    w: usize,
    f: usize,
    t: u64,
) -> Vec<Vec<u64>> {
    let pad = f / 2;
    let out_ch = weights.len();
    let in_ch = input.len();
    let mut out = vec![vec![0u64; h * w]; out_ch];
    for (o, out_map) in out.iter_mut().enumerate() {
        for y in 0..h {
            for x in 0..w {
                let mut acc = 0u64;
                for (c, in_map) in input.iter().enumerate().take(in_ch) {
                    for dy in 0..f {
                        for dx in 0..f {
                            // Flattened circular shift: index (y*w + x) +
                            // (dy-pad)*w + (dx-pad), wrapped mod h*w.
                            let shift =
                                (dy as i64 - pad as i64) * w as i64 + (dx as i64 - pad as i64);
                            let idx =
                                ((y * w + x) as i64 + shift).rem_euclid((h * w) as i64) as usize;
                            acc = (acc + weights[o][c][dy * f + dx] * in_map[idx]) % t;
                        }
                    }
                }
                out_map[y * w + x] = acc;
            }
        }
    }
    out
}

/// Runs one encrypted convolution layer end to end through the client-aided
/// protocol session and returns the per-output-channel feature maps.
///
/// Input: `in_ch` channel maps of `h·w` 4-bit values; weights
/// `[out_ch][in_ch][f·f]` 4-bit values. The result matches
/// [`conv2d_plain_circular`] exactly (the client would discard border
/// pixels for `valid` semantics).
///
/// Every ciphertext crosses the session's framed channels with retries, and
/// the noise watchdog guards the input ciphertext before each output
/// channel's server-side work. Over a
/// [`DirectChannel`](choco::transport::DirectChannel) link this *is* the
/// fault-free path, with identical primary ledger counters.
///
/// # Errors
///
/// Typed [`TransportError`]s when the link is worse than the retry budget;
/// HE-layer failures are wrapped in [`TransportError::He`].
pub fn run_encrypted_conv_layer<C: Channel>(
    session: &mut Session<Bfv, C>,
    input: &[Vec<u64>],
    weights: &[Vec<Vec<u64>>],
    h: usize,
    w: usize,
    f: usize,
) -> Result<Vec<Vec<u64>>, TransportError> {
    let in_ch = input.len();
    let red = (f / 2) * (w + 1);
    let layout = StackedLayout::new(in_ch, RedundantLayout::new(h * w, red));
    if !layout.fits(session.server().context().degree() / 2) {
        return Err(HeError::Mismatch(
            "layer too large for one ciphertext; split across ciphertexts".into(),
        )
        .into());
    }

    // Client: pack + encrypt + upload (framed, retried).
    let slots = layout.pack(input);
    let ct = session.client_mut().encrypt_slots(&slots)?;
    let mut at_server = session.upload(&ct)?;

    // Server: stacked conv + accumulation per output channel, with the
    // watchdog checking the input's remaining budget before each pass.
    let mut maps = Vec::new();
    for out_weights in weights {
        at_server = session.guard(&at_server)?;
        let taps = conv_taps(out_weights, in_ch, f, w);
        let conv = stacked_conv(session.server(), &at_server, &layout, &taps)?;
        let acc = accumulate_channels(session.server(), &conv, &layout)?;
        let back = session.download(&acc)?;
        let slots = session.client_mut().decrypt_slots(&back)?;
        maps.push(layout.extract(&slots)[0].clone());
    }
    session.ledger_mut().end_round();
    Ok(maps)
}

/// Filter taps for one output channel: per-tap shift plus the per-input-
/// channel weight vector.
pub(crate) fn conv_taps(
    out_weights: &[Vec<u64>],
    in_ch: usize,
    f: usize,
    w: usize,
) -> Vec<ConvTap> {
    let pad = f / 2;
    let mut taps = Vec::with_capacity(f * f);
    for dy in 0..f {
        for dx in 0..f {
            let shift = (dy as i64 - pad as i64) * w as i64 + (dx as i64 - pad as i64);
            let channel_weights: Vec<u64> =
                (0..in_ch).map(|c| out_weights[c][dy * f + dx]).collect();
            taps.push(ConvTap {
                shift,
                channel_weights,
            });
        }
    }
    taps
}

/// Runs an encrypted convolution layer whose input channels may exceed one
/// ciphertext: channels are partitioned into power-of-two groups that each
/// fit a ciphertext row, each group is convolved and accumulated
/// independently, and the per-group partial sums (all aligned at channel
/// block 0) are added ciphertext-to-ciphertext server-side.
///
/// Falls back to the single-ciphertext path when everything fits.
///
/// # Errors
///
/// Typed [`TransportError`]s when the link is worse than the retry budget;
/// HE-layer failures are wrapped in [`TransportError::He`].
pub fn run_encrypted_conv_layer_multi<C: Channel>(
    session: &mut Session<Bfv, C>,
    input: &[Vec<u64>],
    weights: &[Vec<Vec<u64>>],
    h: usize,
    w: usize,
    f: usize,
) -> Result<Vec<Vec<u64>>, TransportError> {
    let in_ch = input.len();
    let pad = f / 2;
    let red = pad * (w + 1);
    let row = session.server().context().degree() / 2;
    let stride = (h * w + 2 * red).next_power_of_two();
    if stride > row {
        return Err(HeError::Mismatch("one channel must fit a ciphertext row".into()).into());
    }
    // Largest power-of-two channel-group size that fits the row.
    let per_ct = (1usize << (row / stride).ilog2()).min(in_ch.next_power_of_two());

    if in_ch <= per_ct {
        return run_encrypted_conv_layer(session, input, weights, h, w, f);
    }

    // Partition channels into groups of `per_ct` (zero-padding the tail).
    let groups: Vec<Vec<Vec<u64>>> = input
        .chunks(per_ct)
        .map(|chunk| {
            let mut g = chunk.to_vec();
            while g.len() < per_ct {
                g.push(vec![0u64; h * w]);
            }
            g
        })
        .collect();
    let layout = StackedLayout::new(per_ct, RedundantLayout::new(h * w, red));

    // Client: one upload per group.
    let mut uploaded = Vec::with_capacity(groups.len());
    for g in &groups {
        let ct = {
            let packed = layout.pack(g);
            session.client_mut().encrypt_slots(&packed)?
        };
        uploaded.push(session.upload(&ct)?);
    }

    // Server: per output channel, conv + accumulate each group, then sum
    // the aligned group partials.
    let mut maps = Vec::with_capacity(weights.len());
    for out_weights in weights {
        let mut total: Option<Ciphertext> = None;
        for (gi, ct) in uploaded.iter().enumerate() {
            let base = gi * per_ct;
            let mut taps = Vec::new();
            for dy in 0..f {
                for dx in 0..f {
                    let shift = (dy as i64 - pad as i64) * w as i64 + (dx as i64 - pad as i64);
                    let channel_weights: Vec<u64> = (0..per_ct)
                        .map(|c| {
                            out_weights
                                .get(base + c)
                                .map(|wc| wc[dy * f + dx])
                                .unwrap_or(0)
                        })
                        .collect();
                    taps.push(ConvTap {
                        shift,
                        channel_weights,
                    });
                }
            }
            let conv = stacked_conv(session.server(), ct, &layout, &taps)?;
            let acc = accumulate_channels(session.server(), &conv, &layout)?;
            total = Some(match total {
                None => acc,
                Some(t) => session.server().add(&t, &acc)?,
            });
        }
        let total =
            total.ok_or_else(|| HeError::Mismatch("conv layer has no channel groups".into()))?;
        let back = session.download(&total)?;
        let slots = session.client_mut().decrypt_slots(&back)?;
        maps.push(layout.extract(&slots)[0].clone());
    }
    session.ledger_mut().end_round();
    Ok(maps)
}

/// Galois rotation steps a conv layer of this shape needs (filter taps plus
/// the channel-accumulation tree).
pub fn conv_rotation_steps(in_ch: usize, h: usize, w: usize, f: usize) -> Vec<i64> {
    let pad = f / 2;
    let red = pad * (w + 1);
    let layout = StackedLayout::new(in_ch, RedundantLayout::new(h * w, red));
    let mut steps = Vec::new();
    for dy in 0..f {
        for dx in 0..f {
            let s = (dy as i64 - pad as i64) * w as i64 + (dx as i64 - pad as i64);
            if s != 0 {
                steps.push(s);
            }
        }
    }
    let mut step = 1usize;
    while step < in_ch {
        steps.push((step * layout.stride()) as i64);
        step <<= 1;
    }
    steps.sort_unstable();
    steps.dedup();
    steps
}

/// Rotation steps for the multi-ciphertext conv path: like
/// [`conv_rotation_steps`] but with the accumulation tree sized to the
/// per-ciphertext channel-group capacity of `row` slots.
pub fn conv_rotation_steps_multi(
    in_ch: usize,
    h: usize,
    w: usize,
    f: usize,
    row: usize,
) -> Vec<i64> {
    let pad = f / 2;
    let red = pad * (w + 1);
    let stride = (h * w + 2 * red).next_power_of_two();
    assert!(stride <= row, "one channel must fit a ciphertext row");
    let per_ct = (1usize << (row / stride).ilog2()).min(in_ch.next_power_of_two());
    conv_rotation_steps(per_ct, h, w, f)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conv_rotation_steps_cover_every_kernel_rotation() {
        // The conv kernel's compiler-IR twin requests one rotation per
        // filter tap plus the channel-accumulation tree; the
        // hand-maintained provisioning list must be a superset — a missing
        // Galois key would otherwise only surface as a runtime error.
        use crate::circuits::dnn_conv_program;
        use choco::compiler::{compile, CompilerOptions};
        let (in_ch, h, w, f) = (4usize, 8usize, 8usize, 3usize);
        let opts = CompilerOptions {
            scale_bits: 30,
            prime_bits: 45,
            max_levels: 3,
        };
        let compiled = compile(&dnn_conv_program(in_ch, h, w, f), &opts).unwrap();

        let advertised = conv_rotation_steps(in_ch, h, w, f);
        let requested = compiled.rotation_steps();
        assert!(!requested.is_empty());
        for s in requested {
            assert!(
                advertised.contains(&s),
                "kernel requests rotation {s} that conv_rotation_steps does not advertise"
            );
        }
    }

    #[test]
    fn table5_mac_totals() {
        let nets = Network::all();
        let expect = [
            ("LeNetSm", 0.24e6, 0.05),
            ("LeNetLg", 12.27e6, 0.05),
            ("SqzNet", 32.6e6, 0.10),
            ("VGG16", 313.26e6, 0.05),
        ];
        for (net, (name, macs, tol)) in nets.iter().zip(expect) {
            assert_eq!(net.name, name);
            let got = net.total_macs() as f64;
            assert!((got - macs).abs() / macs < tol, "{name}: {got} vs {macs}");
        }
    }

    #[test]
    fn table5_layer_counts() {
        assert_eq!(Network::lenet_small().layer_counts(), (2, 1, 2, 2));
        assert_eq!(Network::lenet_large().layer_counts(), (2, 2, 3, 2));
        let (c, f, a, p) = Network::squeezenet().layer_counts();
        assert_eq!((c, f, p), (10, 0, 3), "squeezenet shape");
        assert_eq!(a, 10);
        assert_eq!(Network::vgg16().layer_counts(), (13, 2, 14, 5));
    }

    #[test]
    fn table5_model_sizes() {
        // Float (32-bit) sizes in MB vs Table 5, loose tolerance (the paper
        // includes framework overheads).
        let lenet_sm = Network::lenet_small().model_bytes(32) as f64 / 1e6;
        assert!((0.015..0.03).contains(&lenet_sm), "LeNetSm {lenet_sm} MB");
        let vgg = Network::vgg16().model_bytes(32) as f64 / 1e6;
        assert!((50.0..70.0).contains(&vgg), "VGG {vgg} MB");
        // 4-bit is 8× smaller than float.
        let net = Network::lenet_large();
        assert_eq!(net.model_bytes(32), 8 * net.model_bytes(4));
    }

    #[test]
    fn plans_scale_with_network_size() {
        let params = HeParams::set_a();
        let plans: Vec<InferencePlan> = Network::all()
            .iter()
            .map(|n| client_aided_plan(n, &params))
            .collect();
        // Larger networks need at least as much communication as LeNetSm.
        assert!(plans[1].comm_bytes > plans[0].comm_bytes);
        assert!(plans[3].comm_bytes > plans[0].comm_bytes);
        for p in &plans {
            assert!(p.encryptions > 0 && p.decryptions > 0);
            assert!(p.boundaries > 0);
        }
    }

    #[test]
    fn lenet_comm_is_megabytes_not_gigabytes() {
        // §5.3: CHOCO's whole-network communication is a few MB (Table 5:
        // 2.6 MB for LeNetLg with set B).
        let params = HeParams::set_b();
        let plan = client_aided_plan(&Network::lenet_large(), &params);
        let mb = plan.comm_bytes as f64 / 1e6;
        assert!((0.5..20.0).contains(&mb), "LeNetLg comm {mb} MB");
    }

    #[test]
    fn microbenchmark_covers_figure15_grid() {
        let pts = conv_microbenchmark(&HeParams::set_a());
        // 5 image sizes × 5 channel counts × 2 filters.
        assert_eq!(pts.len(), 50);
        // Larger filters mean more MACs, same (or equal) communication for
        // fixed geometry — the paper's "filters add classification power
        // for free" observation.
        for pair in pts.chunks(2) {
            let (f1, f3) = (&pair[0], &pair[1]);
            assert!(f3.macs > f1.macs);
        }
    }

    #[test]
    fn multi_ciphertext_conv_matches_plain_reference() {
        // 8 input channels of 8x8 at N=1024 (row 512): stride 128 → only 4
        // channels fit per ciphertext → 2 groups, summed server-side.
        let params = HeParams::bfv_insecure(1024, &[45, 45, 46], 20).unwrap();
        let (h, w, f, in_ch, out_ch) = (8usize, 8usize, 3usize, 8usize, 2usize);
        let row = params.degree() / 2;
        let steps = conv_rotation_steps_multi(in_ch, h, w, f, row);
        let mut session = Session::<Bfv>::direct(&params, b"multi conv", &steps).unwrap();

        let input: Vec<Vec<u64>> = (0..in_ch)
            .map(|c| (0..h * w).map(|i| ((i * 3 + c * 7) % 8) as u64).collect())
            .collect();
        let weights: Vec<Vec<Vec<u64>>> = (0..out_ch)
            .map(|o| {
                (0..in_ch)
                    .map(|c| (0..f * f).map(|i| ((i + o + 2 * c) % 8) as u64).collect())
                    .collect()
            })
            .collect();

        let got = run_encrypted_conv_layer_multi(&mut session, &input, &weights, h, w, f).unwrap();
        let t = session.server().context().plain_modulus();
        let want = conv2d_plain_circular(&input, &weights, h, w, f, t);
        assert_eq!(got, want);
        // Two uploads (one per group), one download per output channel.
        assert_eq!(session.ledger().uploads, 2);
        assert_eq!(session.ledger().downloads, out_ch as u32);
    }

    #[test]
    fn multi_path_falls_back_to_single_ciphertext() {
        let params = HeParams::bfv_insecure(1024, &[45, 45, 46], 18).unwrap();
        let (h, w, f, in_ch) = (6usize, 6usize, 3usize, 2usize);
        let steps = conv_rotation_steps(in_ch, h, w, f);
        let mut session = Session::<Bfv>::direct(&params, b"multi fallback", &steps).unwrap();
        let input: Vec<Vec<u64>> = (0..in_ch)
            .map(|c| (0..h * w).map(|i| ((i + c) % 16) as u64).collect())
            .collect();
        let weights: Vec<Vec<Vec<u64>>> =
            vec![(0..in_ch).map(|c| vec![(c + 1) as u64; f * f]).collect()];
        let got = run_encrypted_conv_layer_multi(&mut session, &input, &weights, h, w, f).unwrap();
        assert_eq!(
            session.ledger().uploads,
            1,
            "small layer uses the single-ct path"
        );
        let t = session.server().context().plain_modulus();
        assert_eq!(got, conv2d_plain_circular(&input, &weights, h, w, f, t));
    }

    #[test]
    fn encrypted_conv_layer_matches_plain_reference() {
        let params = HeParams::bfv_insecure(2048, &[45, 45, 46], 18).unwrap();
        let (h, w, f, in_ch, out_ch) = (6usize, 6usize, 3usize, 2usize, 2usize);
        let steps = conv_rotation_steps(in_ch, h, w, f);
        let mut session = Session::<Bfv>::direct(&params, b"dnn conv", &steps).unwrap();

        // Seeded 4-bit inputs and weights.
        let input: Vec<Vec<u64>> = (0..in_ch)
            .map(|c| (0..h * w).map(|i| ((i * 7 + c * 3) % 16) as u64).collect())
            .collect();
        let weights: Vec<Vec<Vec<u64>>> = (0..out_ch)
            .map(|o| {
                (0..in_ch)
                    .map(|c| (0..f * f).map(|i| ((i + o + c) % 16) as u64).collect())
                    .collect()
            })
            .collect();

        let got = run_encrypted_conv_layer(&mut session, &input, &weights, h, w, f).unwrap();
        let t = session.server().context().plain_modulus();
        let want = conv2d_plain_circular(&input, &weights, h, w, f, t);
        assert_eq!(got, want);
        assert_eq!(session.ledger().uploads, 1);
        assert_eq!(session.ledger().downloads, out_ch as u32);
        let (client, _server, _ledger) = session.into_parts();
        assert_eq!(client.encryption_count(), 1);
        assert_eq!(client.decryption_count(), out_ch as u64);
    }
}
