//! Encrypted PageRank (§5.1, §5.6, Figure 13).
//!
//! PageRank is pure linear algebra — `r ← d·M·r + (1−d)/n` — so iterations
//! can run entirely in encrypted space. The client-aided variant decrypts
//! and re-encrypts every `s` iterations to refresh noise (BFV) or restore
//! scale/levels (CKKS). Figure 13's finding: *frequent refreshes with small
//! parameters beat long fully-encrypted runs*, and the optimal schedules fit
//! the CHOCO-TACO envelope (`N ≤ 8192`, `k ≤ 3`).
//!
//! Both a real encrypted implementation (BFV fixed-point, via the diagonal
//! matrix-vector kernel) and the analytic communication model behind
//! Figure 13 live here.

use choco::linalg::{matvec_diagonals, replicate_for_matvec};
use choco::protocol::CommLedger;
use choco::transport::{LinkConfig, Session, TransportError};
use choco_he::params::{max_coeff_bits_128, HeParams, SchemeType, WORD_BYTES};
use choco_he::{HeError, HeScheme};

/// A row-stochastic link graph for PageRank.
#[derive(Debug, Clone)]
pub struct Graph {
    /// Column-stochastic transition matrix `M[i][j]` = weight of `j → i`.
    pub transition: Vec<Vec<f64>>,
}

impl Graph {
    /// Builds the transition matrix from an adjacency list (dangling nodes
    /// distribute uniformly).
    pub fn from_adjacency(adj: &[Vec<usize>]) -> Graph {
        let n = adj.len();
        let mut m = vec![vec![0.0; n]; n];
        for (j, outs) in adj.iter().enumerate() {
            if outs.is_empty() {
                for row in m.iter_mut() {
                    row[j] = 1.0 / n as f64;
                }
            } else {
                for &i in outs {
                    m[i][j] = 1.0 / outs.len() as f64;
                }
            }
        }
        Graph { transition: m }
    }

    /// Node count.
    pub fn len(&self) -> usize {
        self.transition.len()
    }

    /// Whether the graph is empty.
    pub fn is_empty(&self) -> bool {
        self.transition.is_empty()
    }
}

/// Plaintext PageRank reference.
pub fn pagerank_plain(graph: &Graph, damping: f64, iterations: u32) -> Vec<f64> {
    let n = graph.len();
    let mut r = vec![1.0 / n as f64; n];
    for _ in 0..iterations {
        let mut next = vec![(1.0 - damping) / n as f64; n];
        for i in 0..n {
            for j in 0..n {
                next[i] += damping * graph.transition[i][j] * r[j];
            }
        }
        r = next;
    }
    r
}

/// Result of a client-aided encrypted PageRank run.
#[derive(Debug, Clone)]
pub struct EncryptedPageRank {
    /// Final rank vector (dequantized).
    pub ranks: Vec<f64>,
    /// Communication ledger across all refresh rounds.
    pub ledger: CommLedger,
    /// Client encryption count.
    pub encryptions: u64,
    /// Client decryption count.
    pub decryptions: u64,
}

/// Rotation steps the PageRank kernels need: diagonal shifts plus the
/// replication shift for multi-iteration bursts.
pub fn pagerank_rotation_steps(n: usize) -> Vec<i64> {
    let mut steps: Vec<i64> = (1..n as i64).collect();
    steps.push(-(n as i64));
    steps
}

/// Runs client-aided PageRank over the given link, generic over the HE
/// scheme.
///
/// Under BFV the matrix and ranks are quantized with `scale_bits`
/// fractional bits via [`HeScheme::quantize`]: every encrypted iteration
/// multiplies the rank scale by the matrix scale, so after a burst of
/// `iters_per_refresh` iterations the values carry `scale^(burst+1)` which
/// the client strips in plaintext (the noise refresh). Under CKKS the
/// quantize hooks are the identity (`scale_bits` is ignored — ciphertexts
/// carry the scale natively) and each iteration consumes rescale levels
/// instead, so a refresh restores the level chain.
///
/// A [`LinkConfig::direct`] link is the fault-free paper protocol; any
/// other link adds framed retries (billed to `retransmit_bytes`) and arms
/// the health watchdog before each burst without changing the ranks: under
/// any fault schedule within the retry budget the result is bit-identical
/// to the direct run.
///
/// # Errors
///
/// Transport errors when the link defeats the retry policy; HE-layer
/// failures — including insufficient CKKS levels when `iters_per_refresh`
/// exceeds what the prime chain supports, the Figure 13 tradeoff surfacing
/// as an API error — wrapped in [`TransportError::He`]. Oversized graphs
/// and a zero refresh cadence are reported as [`HeError::Mismatch`].
pub fn pagerank_encrypted<S: HeScheme>(
    graph: &Graph,
    damping: f64,
    total_iterations: u32,
    iters_per_refresh: u32,
    params: &HeParams,
    scale_bits: u32,
    link: LinkConfig,
) -> Result<EncryptedPageRank, TransportError> {
    if iters_per_refresh < 1 {
        return Err(HeError::Mismatch("need at least one iteration per refresh".into()).into());
    }
    let n = graph.len();
    let mut session =
        Session::<S>::with_link(params, b"pagerank", &pagerank_rotation_steps(n), link)?;
    let width = session.server().slot_width();
    if 2 * n > width {
        return Err(HeError::Mismatch("graph too large for one ciphertext row".into()).into());
    }
    let ctx = session.server().context().clone();

    // Damped transition matrix at fixed-point depth 1 (identity under CKKS).
    let qm: Vec<Vec<S::Value>> = graph
        .transition
        .iter()
        .map(|row| {
            let damped: Vec<f64> = row.iter().map(|&v| damping * v).collect();
            S::quantize(&ctx, &damped, scale_bits, 1)
        })
        .collect();
    let teleport = (1.0 - damping) / n as f64;
    let mask_plain: Vec<S::Value> = {
        let mut mask = vec![0.0f64; width];
        for s in mask.iter_mut().take(n) {
            *s = 1.0;
        }
        S::quantize(&ctx, &mask, scale_bits, 0)
    };

    let mut ranks: Vec<f64> = vec![1.0 / n as f64; n];
    let mut done = 0u32;
    while done < total_iterations {
        let burst = iters_per_refresh.min(total_iterations - done);
        // Client: quantize at depth 1, replicate for the diagonal kernel,
        // encrypt, upload.
        let qr = S::quantize(&ctx, &ranks, scale_bits, 1);
        let replicated = replicate_for_matvec(&qr, width);
        let ct = session.client_mut().encrypt(&replicated)?;
        let uploaded = session.upload(&ct)?;
        let mut at_server = session.guard(&uploaded)?;

        // Server: `burst` encrypted iterations. After iteration `it` every
        // term carries depth `it + 2`, so teleport constants are injected
        // at the matching depth and everything meets at depth `burst + 1`
        // for the client to strip.
        for it in 0..burst {
            at_server = matvec_diagonals(session.server(), &at_server, &qm)?;
            let mut tvec = vec![0.0f64; width];
            for s in tvec.iter_mut().take(n) {
                *s = teleport;
            }
            let tq = S::quantize(&ctx, &tvec, scale_bits, it + 2);
            at_server = session.server().add_plain(&at_server, &tq)?;
            if it + 1 < burst {
                // Continuous encrypted operation must re-replicate the rank
                // vector for the next diagonal product: one masking multiply
                // plus one rotation — exactly the noise/level tax that makes
                // long bursts lose to frequent refresh (§5.6).
                let masked = session.server().mul_plain(&at_server, &mask_plain)?;
                let copy = session.server().rotate(&masked, -(n as i64))?;
                at_server = session.server().add(&masked, &copy)?;
            }
        }
        let back = session.download(&at_server)?;
        session.ledger_mut().end_round();

        // Client: decrypt, strip the accumulated depth, renormalize to a
        // probability vector.
        let slots = session.client_mut().decrypt(&back)?;
        let stripped = S::dequantize(&ctx, &slots[..n], scale_bits, burst + 1);
        ranks.copy_from_slice(&stripped);
        let sum: f64 = ranks.iter().sum();
        for r in ranks.iter_mut() {
            *r /= sum;
        }
        done += burst;
    }

    let (client, _server, ledger) = session.into_parts();
    Ok(EncryptedPageRank {
        ranks,
        encryptions: client.encryption_count(),
        decryptions: client.decryption_count(),
        ledger,
    })
}

/// Analytic communication model behind Figure 13.
///
/// Achieving `total_iterations` with encrypted bursts of `set_size`
/// iterations costs `ceil(total/set)` refresh rounds of one upload + one
/// download. Larger bursts force larger parameters:
///
/// * **BFV**: each iteration multiplies the rank scale by the quantized
///   matrix (`scale_bits` per iteration), so the data modulus must hold
///   `set_size·(scale_bits + log2 n)` bits of signal plus noise headroom.
/// * **CKKS**: each iteration consumes one rescaling prime
///   (`ckks_prime_bits`), so the chain needs `set_size + 1` data primes —
///   smaller per-iteration cost, hence Figure 13's "CKKS communicates less
///   across the board".
///
/// Returns `(params_n, k_total, bytes_total)`, or `None` when no
/// standardized degree can support the burst at 128-bit security.
pub fn pagerank_comm_model(
    scheme: SchemeType,
    total_iterations: u32,
    set_size: u32,
    graph_nodes: usize,
    scale_bits: u32,
) -> Option<(usize, usize, u64)> {
    if set_size < 1 || set_size > total_iterations {
        return None;
    }
    let rounds = total_iterations.div_ceil(set_size) as u64;
    let s = set_size;
    let (needed_data_bits, k_data_floor) = match scheme {
        SchemeType::Bfv => {
            // Signal: values carry scale^(s+1) plus n-fan-in accumulation,
            // all of which must fit the plaintext modulus t.
            let acc_bits = (graph_nodes as f64).log2().ceil() as u32;
            let t_bits = (s + 1) * scale_bits + acc_bits;
            // Noise: each encrypted iteration is a plaintext multiply at
            // modulus t (≈ t_bits + 7 bits), so the demand is *quadratic*
            // in the burst length — the physics behind Figure 13.
            let fresh = 11u32;
            let noise = s * (t_bits + 7) + fresh;
            (t_bits + 1 + noise, 1usize)
        }
        SchemeType::Ckks => {
            // One ~40-bit rescaling prime per iteration plus a 60-bit base:
            // linear in the burst length.
            (40 * s + 60, (s + 1) as usize)
        }
    };
    // Special prime sized like a data prime.
    let special_bits = 60u32;
    for n in [2048usize, 4096, 8192, 16384, 32768] {
        if 2 * graph_nodes > n / 2 {
            continue;
        }
        let max = max_coeff_bits_128(n)?;
        if needed_data_bits + special_bits > max {
            continue;
        }
        // Residues of ≤60 bits each.
        let k_data = (needed_data_bits.div_ceil(60).max(1) as usize).max(k_data_floor);
        let k_total = k_data + 1;
        let ct_bytes = (2 * n * k_data * WORD_BYTES) as u64;
        return Some((n, k_total, rounds * 2 * ct_bytes));
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use choco_he::{Bfv, Ckks};

    #[test]
    fn pagerank_rotation_steps_cover_every_kernel_rotation() {
        // The PageRank iteration's compiler-IR twin requests one rotation
        // per matrix diagonal; the provisioning list must be a superset.
        use crate::circuits::pagerank_program;
        use choco::compiler::{compile, CompilerOptions};
        let n = 8usize;
        let opts = CompilerOptions {
            scale_bits: 30,
            prime_bits: 45,
            max_levels: 3,
        };
        let compiled = compile(&pagerank_program(n), &opts).unwrap();
        let advertised = pagerank_rotation_steps(n);
        let requested = compiled.rotation_steps();
        assert!(!requested.is_empty());
        for s in requested {
            assert!(
                advertised.contains(&s),
                "kernel requests rotation {s} that pagerank_rotation_steps does not advertise"
            );
        }
    }

    fn small_graph() -> Graph {
        // Classic 4-node example with a dangling node.
        Graph::from_adjacency(&[vec![1, 2], vec![2], vec![0], vec![0, 2]])
    }

    #[test]
    fn transition_matrix_is_column_stochastic() {
        let g = small_graph();
        for j in 0..g.len() {
            let col: f64 = (0..g.len()).map(|i| g.transition[i][j]).sum();
            assert!((col - 1.0).abs() < 1e-12, "column {j} sums to {col}");
        }
    }

    #[test]
    fn plain_pagerank_converges_to_stationary() {
        let g = small_graph();
        let r20 = pagerank_plain(&g, 0.85, 100);
        let r40 = pagerank_plain(&g, 0.85, 200);
        for (a, b) in r20.iter().zip(&r40) {
            assert!((a - b).abs() < 1e-6);
        }
        let sum: f64 = r40.iter().sum();
        assert!((sum - 1.0).abs() < 1e-9);
    }

    #[test]
    fn encrypted_pagerank_tracks_plain_reference() {
        let g = small_graph();
        let params = HeParams::bfv_insecure(1024, &[45, 45, 46], 24).unwrap();
        let enc =
            pagerank_encrypted::<Bfv>(&g, 0.85, 6, 1, &params, 10, LinkConfig::direct()).unwrap();
        let plain = pagerank_plain(&g, 0.85, 6);
        for (i, (e, p)) in enc.ranks.iter().zip(&plain).enumerate() {
            assert!((e - p).abs() < 0.02, "node {i}: encrypted {e} vs plain {p}");
        }
        assert_eq!(enc.encryptions, 6);
        assert_eq!(enc.decryptions, 6);
        assert_eq!(enc.ledger.rounds, 6);
    }

    #[test]
    fn ckks_pagerank_tracks_plain_reference() {
        let g = small_graph();
        let params = HeParams::ckks_insecure(1024, &[45, 45, 45, 46], 38).unwrap();
        let enc =
            pagerank_encrypted::<Ckks>(&g, 0.85, 6, 1, &params, 0, LinkConfig::direct()).unwrap();
        let plain = pagerank_plain(&g, 0.85, 6);
        for (i, (e, p)) in enc.ranks.iter().zip(&plain).enumerate() {
            assert!((e - p).abs() < 0.01, "node {i}: {e} vs {p}");
        }
        assert_eq!(enc.ledger.rounds, 6);
    }

    #[test]
    fn ckks_pagerank_bursts_consume_levels() {
        let g = small_graph();
        // Each burst iteration costs one matvec rescale plus (between
        // iterations) one mask rescale: burst 2 needs 3 levels + headroom,
        // so a 4-data-prime chain fits and burst 3 must fail — the Figure 13
        // tradeoff surfacing as levels.
        let params = HeParams::ckks_insecure(1024, &[45, 45, 45, 45, 46], 38).unwrap();
        let enc =
            pagerank_encrypted::<Ckks>(&g, 0.85, 4, 2, &params, 0, LinkConfig::direct()).unwrap();
        let plain = pagerank_plain(&g, 0.85, 4);
        for (e, p) in enc.ranks.iter().zip(&plain) {
            assert!((e - p).abs() < 0.02, "{e} vs {p}");
        }
        assert_eq!(enc.ledger.rounds, 2);
        // A burst of 3 needs more levels than the chain has.
        assert!(
            pagerank_encrypted::<Ckks>(&g, 0.85, 3, 3, &params, 0, LinkConfig::direct()).is_err()
        );
    }

    #[test]
    fn encrypted_bursts_stay_correct_and_cost_more_noise() {
        // Two encrypted iterations per refresh: the server re-replicates
        // with a masking multiply, and results still track the reference.
        // Note the *larger* coefficient modulus this demands — three chained
        // plaintext multiplies per burst — which is Figure 13's lesson about
        // continuous encrypted operation.
        let g = small_graph();
        let params = HeParams::bfv_insecure(1024, &[50, 50, 50, 51], 21).unwrap();
        let enc =
            pagerank_encrypted::<Bfv>(&g, 0.85, 4, 2, &params, 6, LinkConfig::direct()).unwrap();
        let plain = pagerank_plain(&g, 0.85, 4);
        for (i, (e, p)) in enc.ranks.iter().zip(&plain).enumerate() {
            assert!((e - p).abs() < 0.05, "node {i}: encrypted {e} vs plain {p}");
        }
        // Half the refreshes of the burst-1 schedule.
        assert_eq!(enc.ledger.rounds, 2);
    }

    #[test]
    fn resilient_pagerank_matches_direct_under_faults() {
        use choco::transport::{FaultPlan, FaultyChannel, RetryPolicy};

        let g = small_graph();
        let params = HeParams::bfv_insecure(1024, &[45, 45, 46], 24).unwrap();
        let baseline =
            pagerank_encrypted::<Bfv>(&g, 0.85, 4, 1, &params, 10, LinkConfig::direct()).unwrap();

        let plan = FaultPlan::lossless()
            .with_drop_rate(0.25)
            .with_corrupt_rate(0.2)
            .with_max_latency_ms(15);
        let link = LinkConfig {
            uplink: Box::new(FaultyChannel::new(b"pagerank up", plan)),
            downlink: Box::new(FaultyChannel::new(b"pagerank down", plan)),
            policy: RetryPolicy {
                max_attempts: 16,
                ..RetryPolicy::default()
            },
        };
        let enc = pagerank_encrypted::<Bfv>(&g, 0.85, 4, 1, &params, 10, link).unwrap();
        // Bit-identical ranks: faults only cost retries, never precision.
        assert_eq!(enc.ranks, baseline.ranks);
        assert_eq!(enc.ledger.rounds, baseline.ledger.rounds);
        assert!(
            enc.ledger.retransmit_bytes > 0,
            "a lossy channel must bill retransmissions"
        );
        // Paper-visible counters stay comparable to the direct run.
        assert_eq!(enc.ledger.upload_bytes, baseline.ledger.upload_bytes);
        assert_eq!(enc.ledger.download_bytes, baseline.ledger.download_bytes);
    }

    #[test]
    fn resilient_pagerank_surfaces_dead_channel() {
        use choco::transport::{FaultPlan, FaultyChannel};

        let g = small_graph();
        let params = HeParams::bfv_insecure(1024, &[45, 45, 46], 24).unwrap();
        let link = LinkConfig {
            uplink: Box::new(FaultyChannel::new(b"void", FaultPlan::blackhole())),
            ..LinkConfig::direct()
        };
        let err = pagerank_encrypted::<Bfv>(&g, 0.85, 2, 1, &params, 10, link).unwrap_err();
        assert!(matches!(err, TransportError::RetriesExhausted { .. }));
    }

    #[test]
    fn cross_scheme_pagerank_agrees_under_direct_and_faulty_links() {
        // The same generic runner under both schemes, over both a perfect
        // link and a seeded lossy link: all four runs must agree with the
        // plaintext reference (and hence with each other), faults costing
        // only retransmissions.
        use choco::transport::{FaultPlan, FaultyChannel, RetryPolicy};

        let g = small_graph();
        let plain = pagerank_plain(&g, 0.85, 4);
        let bfv_params = HeParams::bfv_insecure(1024, &[45, 45, 46], 24).unwrap();
        let ckks_params = HeParams::ckks_insecure(1024, &[45, 45, 45, 46], 38).unwrap();
        let plan = FaultPlan::lossless()
            .with_drop_rate(0.25)
            .with_corrupt_rate(0.2);
        let faulty = |label: &'static [u8]| LinkConfig {
            uplink: Box::new(FaultyChannel::new(label, plan)),
            downlink: Box::new(FaultyChannel::new(label, plan)),
            policy: RetryPolicy {
                max_attempts: 16,
                ..RetryPolicy::default()
            },
        };

        let runs = [
            pagerank_encrypted::<Bfv>(&g, 0.85, 4, 1, &bfv_params, 10, LinkConfig::direct())
                .unwrap(),
            pagerank_encrypted::<Bfv>(&g, 0.85, 4, 1, &bfv_params, 10, faulty(b"xs bfv")).unwrap(),
            pagerank_encrypted::<Ckks>(&g, 0.85, 4, 1, &ckks_params, 0, LinkConfig::direct())
                .unwrap(),
            pagerank_encrypted::<Ckks>(&g, 0.85, 4, 1, &ckks_params, 0, faulty(b"xs ckks"))
                .unwrap(),
        ];
        for (which, run) in runs.iter().enumerate() {
            for (i, (e, p)) in run.ranks.iter().zip(&plain).enumerate() {
                assert!((e - p).abs() < 0.02, "run {which} node {i}: {e} vs {p}");
            }
        }
        // Faults never change the answer, only the retransmit bill.
        assert_eq!(runs[0].ranks, runs[1].ranks);
        assert_eq!(runs[2].ranks, runs[3].ranks);
        assert!(runs[1].ledger.retransmit_bytes > 0);
        assert!(runs[3].ledger.retransmit_bytes > 0);
    }

    #[test]
    fn comm_model_prefers_frequent_refresh() {
        // Figure 13's headline: for 24 total iterations, bursts of 1–2
        // communicate less than one burst of 24.
        let total = 24;
        let frequent = pagerank_comm_model(SchemeType::Bfv, total, 1, 64, 8).unwrap();
        let rare = pagerank_comm_model(SchemeType::Bfv, total, 24, 64, 8);
        // 24 encrypted iterations may simply not fit any secure set — an
        // even stronger version of the paper's point — otherwise frequent
        // refresh must communicate strictly less.
        if let Some((_, _, bytes)) = rare {
            assert!(
                frequent.2 < bytes,
                "frequent {} vs rare {bytes}",
                frequent.2
            );
        }
    }

    #[test]
    fn optimal_schedules_fit_the_taco_envelope() {
        // §5.6: the best client-aided combinations use N ≤ 8192, k ≤ 3.
        for total in [8u32, 16, 24, 48] {
            let mut best: Option<(u32, usize, usize, u64)> = None;
            for set in 1..=total {
                if let Some((n, k, bytes)) = pagerank_comm_model(SchemeType::Bfv, total, set, 64, 8)
                {
                    if best.is_none() || bytes < best.unwrap().3 {
                        best = Some((set, n, k, bytes));
                    }
                }
            }
            let (set, n, k, _) = best.expect("some schedule must work");
            assert!(n <= 8192, "total {total}: optimal N {n}");
            assert!(k <= 3, "total {total}: optimal k {k}");
            assert!(set <= 4, "total {total}: optimal burst {set}");
        }
    }

    #[test]
    fn ckks_communicates_less_than_bfv() {
        // Figure 13: CKKS curves sit below BFV for matched schedules.
        let total = 12;
        let mut bfv_best = u64::MAX;
        let mut ckks_best = u64::MAX;
        for set in 1..=3u32 {
            // 16 fractional bits: the precision PageRank convergence needs,
            // where CKKS's native rescaling precision pulls ahead.
            if let Some((_, _, b)) = pagerank_comm_model(SchemeType::Bfv, total, set, 64, 16) {
                bfv_best = bfv_best.min(b);
            }
            if let Some((_, _, b)) = pagerank_comm_model(SchemeType::Ckks, total, set, 64, 16) {
                ckks_best = ckks_best.min(b);
            }
        }
        assert!(ckks_best <= bfv_best, "ckks {ckks_best} vs bfv {bfv_best}");
    }
}
