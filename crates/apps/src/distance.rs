//! Distance-based algorithms: KNN and K-Means over encrypted distances
//! (§5.1, §5.4, Figures 9 and 11).
//!
//! The Euclidean kernel is modified to a sum of squared differences (no
//! square root), so the server can compute it homomorphically in CKKS. The
//! client sends encrypted query/centroid coordinates; the server holds the
//! reference points (aggregated across many clients — the centralization
//! benefit) in plaintext; the client decrypts distances and performs the
//! non-linear `min` / argmin / label vote.
//!
//! Five packing variants of Figure 9 are implemented. They trade input
//! utilization against output utilization:
//!
//! | variant                | input cts      | output cts | server extra |
//! |------------------------|----------------|-----------|---------------|
//! | point-major            | 1 (pt blocks)  | 1 sparse  | rotate tree   |
//! | dimension-major        | d              | 1 dense   | none          |
//! | stacked point-major    | 1 (small dims) | 1 sparse  | rotate tree   |
//! | stacked dimension-major| ⌈d/stack⌉      | 1 dense   | rotate tree   |
//! | collapsed point-major  | 1              | 1 dense   | masks + rots  |

use choco::protocol::{CommLedger, Server};
use choco::transport::{Channel, Session, TransportError};
use choco_he::ckks::CkksCiphertext;
use choco_he::{Ckks, HeError, HeScheme};

/// Packing variants of Figure 9.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PackingVariant {
    /// One point's dimensions per power-of-two block.
    PointMajor,
    /// One dimension across all points per ciphertext.
    DimensionMajor,
    /// Multiple points per block row (small dimension counts).
    StackedPointMajor,
    /// Multiple dimensions per ciphertext (small point counts).
    StackedDimensionMajor,
    /// Point-major input, masked/accumulated into one dense output.
    CollapsedPointMajor,
}

impl PackingVariant {
    /// All five variants in Figure 9 order.
    pub fn all() -> [PackingVariant; 5] {
        [
            PackingVariant::PointMajor,
            PackingVariant::DimensionMajor,
            PackingVariant::StackedPointMajor,
            PackingVariant::StackedDimensionMajor,
            PackingVariant::CollapsedPointMajor,
        ]
    }

    /// Short display label.
    pub fn label(&self) -> &'static str {
        match self {
            PackingVariant::PointMajor => "point-major",
            PackingVariant::DimensionMajor => "dimension-major",
            PackingVariant::StackedPointMajor => "stacked point-major",
            PackingVariant::StackedDimensionMajor => "stacked dimension-major",
            PackingVariant::CollapsedPointMajor => "collapsed point-major",
        }
    }
}

/// Outcome of one encrypted distance computation.
#[derive(Debug, Clone)]
pub struct DistanceResult {
    /// Squared distances from the query to every reference point.
    pub distances: Vec<f64>,
    /// Communication ledger for the round.
    pub ledger: CommLedger,
    /// Client encryptions performed.
    pub encryptions: u64,
    /// Client decryptions performed.
    pub decryptions: u64,
    /// Homomorphic operation count on the server (rough server-cost proxy).
    pub server_ops: u64,
    /// Serialized reply ciphertext as delivered — the bit-identity witness
    /// resumable drivers store in their checkpoint progress.
    pub reply_wire: Vec<u8>,
}

fn block_stride(dims: usize) -> usize {
    dims.next_power_of_two()
}

/// Rejects empty or ragged inputs before any packing arithmetic runs.
fn validate_point_set(query: &[f64], points: &[Vec<f64>]) -> Result<(), HeError> {
    if points.is_empty() {
        return Err(HeError::Mismatch(
            "need at least one reference point".into(),
        ));
    }
    if query.is_empty() {
        return Err(HeError::Mismatch("need at least one dimension".into()));
    }
    let d = query.len();
    if points.iter().any(|p| p.len() != d) {
        return Err(HeError::Mismatch(format!(
            "ragged point set: all points must have {d} dimensions"
        )));
    }
    Ok(())
}

/// Computes squared distances with the requested packing variant over the
/// session's link.
///
/// `query` has `d` coordinates; `points` is `n` reference points of the same
/// dimension, held in plaintext by the server. Every ciphertext crosses the
/// session's framed, retried channels; over a
/// [`DirectChannel`](choco::transport::DirectChannel) link this is the
/// fault-free paper protocol. The reported ledger covers only this call
/// (the session's cumulative ledger keeps growing).
///
/// # Errors
///
/// Typed [`TransportError`]s when the link defeats the retry budget;
/// HE-layer failures — capacity, missing keys, empty or ragged point sets
/// ([`HeError::Mismatch`]) — wrapped in [`TransportError::He`].
pub fn encrypted_distances<C: Channel>(
    variant: PackingVariant,
    session: &mut Session<Ckks, C>,
    query: &[f64],
    points: &[Vec<f64>],
) -> Result<DistanceResult, TransportError> {
    validate_point_set(query, points)?;
    let before = *session.ledger();
    let mut res = match variant {
        PackingVariant::PointMajor | PackingVariant::StackedPointMajor => {
            point_major(session, query, points, false)
        }
        PackingVariant::CollapsedPointMajor => point_major(session, query, points, true),
        PackingVariant::DimensionMajor | PackingVariant::StackedDimensionMajor => {
            dimension_major(session, query, points)
        }
    }?;
    res.ledger = ledger_delta(session.ledger(), &before);
    Ok(res)
}

/// Per-call traffic: the session ledger's growth since `before`.
fn ledger_delta(after: &CommLedger, before: &CommLedger) -> CommLedger {
    CommLedger {
        upload_bytes: after.upload_bytes - before.upload_bytes,
        download_bytes: after.download_bytes - before.download_bytes,
        uploads: after.uploads - before.uploads,
        downloads: after.downloads - before.downloads,
        rounds: after.rounds - before.rounds,
        retransmit_bytes: after.retransmit_bytes - before.retransmit_bytes,
        refresh_rounds: after.refresh_rounds - before.refresh_rounds,
        recovery_bytes: after.recovery_bytes - before.recovery_bytes,
    }
}

/// Client-side point-major packing: the query replicated into every point
/// block.
fn point_major_qslots(query: &[f64], n: usize, stride: usize) -> Vec<f64> {
    let d = query.len();
    let mut qslots = vec![0.0f64; n * stride];
    for b in 0..n {
        qslots[b * stride..b * stride + d].copy_from_slice(query);
    }
    qslots
}

/// Server-side point-major computation: diff = q − p (plaintext add of −p),
/// square, rotate-add dims; optionally collapse block heads into dense low
/// slots. Returns the reply ciphertext and the homomorphic op count.
fn point_major_server(
    server: &Server<Ckks>,
    at_server: &CkksCiphertext,
    points: &[Vec<f64>],
    stride: usize,
    collapse: bool,
) -> Result<(CkksCiphertext, u64), HeError> {
    let n = points.len();
    let mut server_ops = 0u64;
    let ctx = server.context();
    let mut pslots = vec![0.0f64; n * stride];
    for (b, p) in points.iter().enumerate() {
        for (j, &v) in p.iter().enumerate() {
            pslots[b * stride + j] = -v;
        }
    }
    let ppt = server.encode_at(&pslots, at_server.level(), at_server.scale())?;
    let diff = ctx.add_plain(at_server, &ppt)?;
    server_ops += 1;
    let sq = ctx.multiply_relin(&diff, &diff, server.relin_key())?;
    let sq = ctx.rescale(&sq)?;
    server_ops += 2;

    // Rotate-add tree over the (power-of-two) block stride.
    let mut acc = sq;
    let mut step = 1usize;
    while step < stride {
        let rot = ctx.rotate(&acc, step as i64, server.galois_keys())?;
        acc = ctx.add(&acc, &rot)?;
        server_ops += 2;
        step <<= 1;
    }
    // Distances now sit at each block's slot 0 (sparse, 1/stride utilized).

    let reply = if collapse {
        // Rotate-then-mask (equivalent to masking block b's head then
        // shifting it to slot b, since the mask commutes with the shift):
        // every rotation acts on the same `acc`, so all of them share one
        // hoisted key-switch decomposition.
        let shifts: Vec<i64> = (1..n).map(|b| (b * stride - b) as i64).collect();
        let rotated = if shifts.is_empty() {
            Vec::new()
        } else {
            server_ops += shifts.len() as u64;
            ctx.rotate_many(&acc, &shifts, server.galois_keys())?
        };
        let mut collapsed: Option<CkksCiphertext> = None;
        for (b, rot) in std::iter::once(&acc).chain(rotated.iter()).enumerate() {
            let mut mask = vec![0.0f64; n * stride];
            mask[b] = 1.0;
            let mpt = server.encode_at(&mask, rot.level(), ctx.default_scale())?;
            let picked = ctx.multiply_plain(rot, &mpt)?;
            let picked = ctx.rescale(&picked)?;
            server_ops += 2;
            collapsed = Some(match collapsed {
                None => picked,
                Some(c) => {
                    server_ops += 1;
                    ctx.add(&c, &picked)?
                }
            });
        }
        collapsed.ok_or_else(|| HeError::Mismatch("need at least one point".into()))?
    } else {
        acc
    };
    Ok((reply, server_ops))
}

/// Reads the distances out of a decrypted point-major reply.
fn point_major_extract(slots_out: &[f64], n: usize, stride: usize, collapse: bool) -> Vec<f64> {
    if collapse {
        (0..n).map(|b| slots_out[b]).collect()
    } else {
        (0..n).map(|b| slots_out[b * stride]).collect()
    }
}

/// Point-major family: query replicated per point block; per-block
/// rotate-add tree accumulates dimensions. With `collapse`, the server masks
/// each block's result and packs all distances densely into the low slots
/// before replying (extra server work, single dense output — the
/// client-optimal variant of §5.4).
fn point_major<C: Channel>(
    session: &mut Session<Ckks, C>,
    query: &[f64],
    points: &[Vec<f64>],
    collapse: bool,
) -> Result<DistanceResult, TransportError> {
    let n = points.len();
    let stride = block_stride(query.len());
    let slots = session.server().context().slot_count();
    if n * stride > slots {
        return Err(
            HeError::Mismatch("point-major packing exceeds ciphertext capacity".into()).into(),
        );
    }

    let ct = session
        .client_mut()
        .encrypt_values(&point_major_qslots(query, n, stride))?;
    let at_server = session.upload(&ct)?;
    let (reply, server_ops) =
        point_major_server(session.server(), &at_server, points, stride, collapse)?;
    let back = session.download(&reply)?;
    session.ledger_mut().end_round();
    let slots_out = session.client_mut().decrypt_values(&back)?;
    Ok(DistanceResult {
        distances: point_major_extract(&slots_out, n, stride, collapse),
        ledger: CommLedger::new(), // overwritten by the caller with the delta
        encryptions: session.client_mut().encryption_count(),
        decryptions: session.client_mut().decryption_count(),
        server_ops,
        reply_wire: Ckks::ct_to_wire(&back),
    })
}

/// How many dimensions fit in one ciphertext at `n`-slot strides. Slot
/// rotations wrap cyclically, so the fold tree needs the top band plus one
/// band of headroom to stay clear of wrapped-in values; cap at the largest
/// power of two with `per_ct·n + n ≤ slots`.
fn dims_per_ciphertext(n: usize, slots: usize) -> usize {
    let mut per_ct = 1usize;
    while 2 * per_ct * n + n <= slots {
        per_ct *= 2;
    }
    per_ct
}

/// Client-side packing of one dimension batch: broadcast `q_dim` across the
/// `n` points of each stacked band (and the negated point coordinates the
/// server will add).
fn dimension_batch_slots(
    query: &[f64],
    points: &[Vec<f64>],
    dim: usize,
    batch: usize,
) -> (Vec<f64>, Vec<f64>) {
    let n = points.len();
    let mut qslots = vec![0.0f64; batch * n];
    let mut pslots = vec![0.0f64; batch * n];
    for b in 0..batch {
        for i in 0..n {
            qslots[b * n + i] = query[dim + b];
            pslots[b * n + i] = -points[i][dim + b];
        }
    }
    (qslots, pslots)
}

/// Server-side work for one dimension batch: diff, square, fold stacked
/// bands onto band 0. Returns the partial-sum ciphertext and op count.
fn dimension_batch_server(
    server: &Server<Ckks>,
    at_server: &CkksCiphertext,
    pslots: &[f64],
    batch: usize,
    n: usize,
) -> Result<(CkksCiphertext, u64), HeError> {
    let ctx = server.context();
    let mut server_ops = 0u64;
    let ppt = server.encode_at(pslots, at_server.level(), at_server.scale())?;
    let diff = ctx.add_plain(at_server, &ppt)?;
    server_ops += 1;
    let sq = ctx.multiply_relin(&diff, &diff, server.relin_key())?;
    let mut sq = ctx.rescale(&sq)?;
    server_ops += 2;
    // Fold stacked bands onto band 0.
    let mut band = 1usize;
    while band < batch {
        // Fold by the largest power-of-two band count.
        let rot = ctx.rotate(&sq, (band * n) as i64, server.galois_keys())?;
        sq = ctx.add(&sq, &rot)?;
        server_ops += 2;
        band <<= 1;
    }
    Ok((sq, server_ops))
}

/// Dimension-major family: one ciphertext per dimension (the stacked form
/// packs several dimensions into one ciphertext at `n`-slot strides and
/// folds them with rotations). Output is a single dense distance vector.
fn dimension_major<C: Channel>(
    session: &mut Session<Ckks, C>,
    query: &[f64],
    points: &[Vec<f64>],
) -> Result<DistanceResult, TransportError> {
    let d = query.len();
    let n = points.len();
    let slots = session.server().context().slot_count();
    if n > slots {
        return Err(HeError::Mismatch("too many points for one ciphertext".into()).into());
    }

    let mut server_ops = 0u64;
    let per_ct = dims_per_ciphertext(n, slots).min(d);
    let mut total: Option<CkksCiphertext> = None;
    let mut dim = 0usize;
    while dim < d {
        let batch = per_ct.min(d - dim);
        let (qslots, pslots) = dimension_batch_slots(query, points, dim, batch);
        let ct = session.client_mut().encrypt_values(&qslots)?;
        let at_server = session.upload(&ct)?;
        let (sq, ops) = dimension_batch_server(session.server(), &at_server, &pslots, batch, n)?;
        server_ops += ops;
        total = Some(match total {
            None => sq,
            Some(tt) => {
                server_ops += 1;
                session.server().context().add(&tt, &sq)?
            }
        });
        dim += batch;
    }
    let reply = total.ok_or_else(|| {
        TransportError::He(HeError::Mismatch("need at least one dimension".into()))
    })?;
    let back = session.download(&reply)?;
    session.ledger_mut().end_round();
    let out = session.client_mut().decrypt_values(&back)?;
    Ok(DistanceResult {
        distances: out[..n].to_vec(),
        ledger: CommLedger::new(), // overwritten by the caller with the delta
        encryptions: session.client_mut().encryption_count(),
        decryptions: session.client_mut().decryption_count(),
        server_ops,
        reply_wire: Ckks::ct_to_wire(&back),
    })
}

/// Plaintext reference: squared Euclidean distances.
pub fn distances_plain(query: &[f64], points: &[Vec<f64>]) -> Vec<f64> {
    points
        .iter()
        .map(|p| {
            p.iter()
                .zip(query)
                .map(|(a, b)| (a - b) * (a - b))
                .sum::<f64>()
        })
        .collect()
}

/// KNN classification: the client takes decrypted distances and votes among
/// the `k` nearest labels.
pub fn knn_classify(distances: &[f64], labels: &[usize], k: usize) -> usize {
    let n = distances.len().min(labels.len());
    let k = k.clamp(1, n.max(1));
    let mut idx: Vec<usize> = (0..n).collect();
    // total_cmp: NaN distances (e.g. from a corrupted reply) sort last
    // instead of panicking mid-vote.
    idx.sort_by(|&a, &b| distances[a].total_cmp(&distances[b]));
    let mut votes = std::collections::HashMap::new();
    for &i in idx.iter().take(k) {
        *votes.entry(labels[i]).or_insert(0usize) += 1;
    }
    votes
        .into_iter()
        .max_by_key(|&(_, c)| c)
        .map(|(l, _)| l)
        .unwrap_or(0)
}

/// One K-Means step on the client given per-centroid distance vectors:
/// assigns each point to its nearest centroid and returns the new centroids.
pub fn kmeans_update(points: &[Vec<f64>], distances_per_centroid: &[Vec<f64>]) -> Vec<Vec<f64>> {
    let k = distances_per_centroid.len();
    let n = points.len();
    let d = points[0].len();
    let mut sums = vec![vec![0.0f64; d]; k];
    let mut counts = vec![0usize; k];
    for i in 0..n {
        let mut best = 0usize;
        for c in 1..k {
            if distances_per_centroid[c][i] < distances_per_centroid[best][i] {
                best = c;
            }
        }
        counts[best] += 1;
        for j in 0..d {
            sums[best][j] += points[i][j];
        }
    }
    for c in 0..k {
        if counts[c] > 0 {
            for j in 0..d {
                sums[c][j] /= counts[c] as f64;
            }
        }
    }
    sums
}

/// Result of a full client-aided K-Means run over encrypted distances.
#[derive(Debug, Clone)]
pub struct KMeansRun {
    /// Final centroids.
    pub centroids: Vec<Vec<f64>>,
    /// Iterations executed (each = one encrypted distance round per
    /// centroid + one plaintext update).
    pub iterations: u32,
    /// Whether the run converged within tolerance.
    pub converged: bool,
    /// Total communication across all rounds.
    pub ledger: CommLedger,
}

/// Runs K-Means to convergence with encrypted distance computation: each
/// iteration, the client encrypts every centroid, the server returns
/// encrypted distances to all points, and the client performs the
/// assignment + centroid update in plaintext (§5.1: "K-Means iterates
/// client-server interaction until convergence").
///
/// # Errors
///
/// Propagates transport and HE errors from the distance kernels; empty
/// inputs are reported as [`HeError::Mismatch`].
pub fn kmeans_encrypted<C: Channel>(
    variant: PackingVariant,
    session: &mut Session<Ckks, C>,
    points: &[Vec<f64>],
    initial_centroids: &[Vec<f64>],
    max_iterations: u32,
    tolerance: f64,
) -> Result<KMeansRun, TransportError> {
    if points.is_empty() || initial_centroids.is_empty() {
        return Err(
            HeError::Mismatch("k-means needs at least one point and one centroid".into()).into(),
        );
    }
    let mut centroids = initial_centroids.to_vec();
    let mut ledger = CommLedger::new();
    let mut converged = false;
    let mut iterations = 0;
    while iterations < max_iterations {
        iterations += 1;
        let mut dists = Vec::with_capacity(centroids.len());
        for c in &centroids {
            let res = encrypted_distances(variant, session, c, points)?;
            ledger.merge(&res.ledger);
            dists.push(res.distances);
        }
        let updated = kmeans_update(points, &dists);
        let movement = centroids
            .iter()
            .zip(&updated)
            .map(|(a, b)| distances_plain(a, std::slice::from_ref(b))[0])
            .fold(0.0f64, f64::max);
        centroids = updated;
        if movement < tolerance * tolerance {
            converged = true;
            break;
        }
    }
    Ok(KMeansRun {
        centroids,
        iterations,
        converged,
        ledger,
    })
}

/// Rotation steps the distance kernels need for `(dims, points)` shapes.
pub fn distance_rotation_steps(dims: usize, n_points: usize, slots: usize) -> Vec<i64> {
    let stride = block_stride(dims);
    let mut steps = Vec::new();
    let mut s = 1usize;
    while s < stride {
        steps.push(s as i64);
        s <<= 1;
    }
    // Collapse shifts (block b head → slot b) only exist when the
    // point-major packing fits at all.
    if n_points * stride <= slots {
        for b in 1..n_points {
            steps.push((b * stride - b) as i64);
        }
    }
    // Stacked-dimension folds (same band cap as `dimension_major`).
    let mut per_ct = 1usize;
    while 2 * per_ct * n_points + n_points <= slots {
        per_ct *= 2;
    }
    let mut band = 1usize;
    while band < per_ct {
        steps.push((band * n_points) as i64);
        band <<= 1;
    }
    steps.sort_unstable();
    steps.dedup();
    steps.retain(|&x| x != 0 && x.unsigned_abs() < slots as u64);
    steps
}

#[cfg(test)]
mod tests {
    use super::*;
    use choco_he::params::HeParams;

    #[test]
    fn distance_rotation_steps_cover_every_kernel_rotation() {
        // The distance kernel's compiler-IR twin requests every rotation
        // group (point-major rotate-add tree, collapsed block shifts,
        // stacked-dimension folds); the hand-maintained provisioning list
        // must be a superset — a missing Galois key would otherwise only
        // surface as a runtime error.
        use crate::circuits::distance_program;
        use choco::compiler::{compile, CompilerOptions};
        let (dims, n, slots) = (4usize, 6usize, 512usize);
        let opts = CompilerOptions {
            scale_bits: 30,
            prime_bits: 45,
            max_levels: 3,
        };
        let compiled = compile(&distance_program(dims, n, slots), &opts).unwrap();

        let advertised = distance_rotation_steps(dims, n, slots);
        let requested = compiled.rotation_steps();
        assert!(!requested.is_empty());
        for s in requested {
            assert!(
                advertised.contains(&s),
                "kernel requests rotation {s} that distance_rotation_steps does not advertise"
            );
        }
    }

    fn setup(dims: usize, n: usize) -> Session<Ckks> {
        let params = HeParams::ckks_insecure(1024, &[45, 45, 45, 46], 38).unwrap();
        let steps = distance_rotation_steps(dims, n, 512);
        Session::<Ckks>::direct(&params, b"distance", &steps).unwrap()
    }

    fn test_data(dims: usize, n: usize) -> (Vec<f64>, Vec<Vec<f64>>) {
        let query: Vec<f64> = (0..dims).map(|i| (i as f64 * 0.7).sin()).collect();
        let points: Vec<Vec<f64>> = (0..n)
            .map(|p| {
                (0..dims)
                    .map(|i| ((p * dims + i) as f64 * 0.3).cos())
                    .collect()
            })
            .collect();
        (query, points)
    }

    #[test]
    fn all_variants_match_plain_distances() {
        let (dims, n) = (4usize, 6usize);
        let (query, points) = test_data(dims, n);
        let want = distances_plain(&query, &points);
        for variant in PackingVariant::all() {
            let mut session = setup(dims, n);
            let res = encrypted_distances(variant, &mut session, &query, &points).unwrap();
            assert_eq!(res.distances.len(), n);
            for (i, (g, w)) in res.distances.iter().zip(&want).enumerate() {
                assert!(
                    (g - w).abs() < 1e-2,
                    "{}: point {i}: {g} vs {w}",
                    variant.label()
                );
            }
        }
    }

    #[test]
    fn collapsed_costs_more_server_ops_same_comm_fewer_sparse_slots() {
        let (dims, n) = (4usize, 6usize);
        let (query, points) = test_data(dims, n);
        let mut s1 = setup(dims, n);
        let plain =
            encrypted_distances(PackingVariant::PointMajor, &mut s1, &query, &points).unwrap();
        let mut s2 = setup(dims, n);
        let collapsed = encrypted_distances(
            PackingVariant::CollapsedPointMajor,
            &mut s2,
            &query,
            &points,
        )
        .unwrap();
        // §5.4: the collapsed variant shifts work to the server...
        assert!(collapsed.server_ops > plain.server_ops);
        // ...to produce a dense output the client reads directly.
        assert_eq!(collapsed.distances.len(), n);
    }

    #[test]
    fn dimension_major_uploads_scale_with_dims() {
        let (query_small, points_small) = test_data(2, 100);
        let mut s = setup(2, 100);
        let small = encrypted_distances(
            PackingVariant::DimensionMajor,
            &mut s,
            &query_small,
            &points_small,
        )
        .unwrap();
        // 100-point bands: 512/100 → 5 dims per ct; 2 dims → one upload.
        assert_eq!(small.ledger.uploads, 1);
        let (query_big, points_big) = test_data(16, 100);
        let mut s = setup(16, 100);
        let big = encrypted_distances(
            PackingVariant::DimensionMajor,
            &mut s,
            &query_big,
            &points_big,
        )
        .unwrap();
        assert!(big.ledger.uploads > small.ledger.uploads);
        // Accuracy holds for the stacked path too.
        let want = distances_plain(&query_big, &points_big);
        for (g, w) in big.distances.iter().zip(&want) {
            assert!((g - w).abs() < 2e-2, "{g} vs {w}");
        }
    }

    #[test]
    fn knn_votes_among_nearest() {
        let distances = vec![0.5, 0.1, 0.2, 3.0, 0.15];
        let labels = vec![0, 1, 1, 0, 2];
        assert_eq!(knn_classify(&distances, &labels, 1), 1);
        assert_eq!(knn_classify(&distances, &labels, 3), 1);
    }

    #[test]
    fn kmeans_step_moves_centroids_toward_clusters() {
        let points = vec![
            vec![0.0, 0.0],
            vec![0.1, 0.0],
            vec![5.0, 5.0],
            vec![5.1, 5.0],
        ];
        let centroids = [vec![1.0, 1.0], vec![4.0, 4.0]];
        let dists: Vec<Vec<f64>> = centroids
            .iter()
            .map(|c| distances_plain(c, &points))
            .collect();
        let updated = kmeans_update(&points, &dists);
        assert!((updated[0][0] - 0.05).abs() < 1e-9);
        assert!((updated[1][0] - 5.05).abs() < 1e-9);
    }

    #[test]
    fn kmeans_encrypted_full_loop_converges() {
        let points = vec![
            vec![0.0, 0.1, 0.0, 0.0],
            vec![0.1, 0.0, 0.1, 0.1],
            vec![0.05, 0.05, 0.0, 0.1],
            vec![2.0, 2.1, 2.0, 1.9],
            vec![2.1, 2.0, 1.9, 2.0],
            vec![1.9, 1.9, 2.1, 2.1],
        ];
        let init = vec![vec![0.5; 4], vec![1.5; 4]];
        let mut session = setup(4, 6);
        let run = kmeans_encrypted(
            PackingVariant::DimensionMajor,
            &mut session,
            &points,
            &init,
            10,
            1e-3,
        )
        .unwrap();
        assert!(run.converged, "k-means should converge in 10 iterations");
        // Centroids land at the two cluster means.
        let c0 = &run.centroids[0];
        let c1 = &run.centroids[1];
        assert!(c0[0] < 0.2, "cluster 0 centroid {c0:?}");
        assert!((c1[0] - 2.0).abs() < 0.1, "cluster 1 centroid {c1:?}");
        assert!(run.ledger.total_bytes() > 0);
        assert!(run.iterations >= 2);
    }

    #[test]
    fn encrypted_kmeans_iteration_converges_like_plain() {
        // One full client-aided K-Means round using encrypted distances.
        let points = vec![
            vec![0.0, 0.2, 0.1, 0.0],
            vec![0.1, 0.1, 0.0, 0.1],
            vec![2.0, 2.1, 1.9, 2.0],
            vec![2.1, 2.0, 2.0, 1.9],
        ];
        let centroids = vec![vec![0.5; 4], vec![1.5; 4]];
        let mut session = setup(4, 4);
        let mut enc_dists = Vec::new();
        for c in &centroids {
            let r = encrypted_distances(PackingVariant::DimensionMajor, &mut session, c, &points)
                .unwrap();
            enc_dists.push(r.distances);
        }
        let plain_dists: Vec<Vec<f64>> = centroids
            .iter()
            .map(|c| distances_plain(c, &points))
            .collect();
        assert_eq!(
            kmeans_update(&points, &enc_dists),
            kmeans_update(&points, &plain_dists)
        );
    }
}
