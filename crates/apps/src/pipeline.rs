//! Whole-network client-aided encrypted inference.
//!
//! Chains the encrypted convolution kernel, client-side non-linear stages
//! (requantization + max-pooling, §5.1's "client computes all non-linear
//! operations locally on plaintext data" — see [`crate::client_ops`]), and
//! the encrypted fully-connected matvec into a complete LeNet-style
//! inference — every linear layer on the server, every boundary crossing
//! counted. The plaintext twin ([`run_plain`]) applies bit-identical integer
//! arithmetic, so the encrypted pipeline must match it *exactly*.
//!
//! There is one encrypted implementation, [`run_encrypted`], generic over
//! the transport: a [`LinkConfig::direct`] link is the fault-free paper
//! protocol, any other link adds framed retries and watchdog refreshes
//! without changing the numbers.

pub use crate::client_ops::{max_pool2x2, requantize};
use crate::dnn::{conv2d_plain_circular, conv_rotation_steps, run_encrypted_conv_layer};
use choco::linalg::{matvec_diagonals, replicate_for_matvec};
use choco::protocol::CommLedger;
use choco::transport::{LinkConfig, Session, TransportError};
use choco_he::params::HeParams;
use choco_he::{Bfv, HeError};
use choco_prng::Blake3Rng;

/// Geometry of a two-conv + FC quantized network (LeNet-style).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LenetLikeSpec {
    /// Input image height = width.
    pub img: usize,
    /// Conv-1 output channels (must be a power of two).
    pub conv1_ch: usize,
    /// Conv-2 output channels.
    pub conv2_ch: usize,
    /// Square filter size for both convs (odd).
    pub filter: usize,
    /// Output classes of the FC layer.
    pub classes: usize,
}

impl LenetLikeSpec {
    /// A miniature spec that fits small test parameters.
    pub fn tiny() -> Self {
        LenetLikeSpec {
            img: 8,
            conv1_ch: 2,
            conv2_ch: 4,
            filter: 3,
            classes: 4,
        }
    }

    /// The real LeNet-5-Small geometry (28×28, 6→16 channels, 5×5 filters),
    /// with channel counts rounded up to powers of two for stacking.
    pub fn lenet_small() -> Self {
        LenetLikeSpec {
            img: 28,
            conv1_ch: 8, // 6 rounded up
            conv2_ch: 16,
            filter: 5,
            classes: 10,
        }
    }

    fn pooled(img: usize) -> usize {
        img / 2
    }

    /// FC input features = conv2 channels × (img/4)².
    pub fn fc_inputs(&self) -> usize {
        let p2 = Self::pooled(Self::pooled(self.img));
        self.conv2_ch * p2 * p2
    }
}

/// 4-bit weights for a [`LenetLikeSpec`].
#[derive(Debug, Clone)]
pub struct LenetLikeWeights {
    /// `[conv1_ch][1][f·f]`.
    pub conv1: Vec<Vec<Vec<u64>>>,
    /// `[conv2_ch][conv1_ch][f·f]`.
    pub conv2: Vec<Vec<Vec<u64>>>,
    /// `[classes][fc_inputs]`.
    pub fc: Vec<Vec<u64>>,
}

/// Deterministic pseudo-random 4-bit weights from a seed.
pub fn seeded_weights(spec: &LenetLikeSpec, seed: &[u8]) -> LenetLikeWeights {
    let mut rng = Blake3Rng::from_seed_labeled(seed, "weights");
    let mut w4 = |count: usize| -> Vec<u64> { (0..count).map(|_| rng.next_below(16)).collect() };
    let f2 = spec.filter * spec.filter;
    let conv1 = (0..spec.conv1_ch).map(|_| vec![w4(f2)]).collect();
    let conv2 = (0..spec.conv2_ch)
        .map(|_| (0..spec.conv1_ch).map(|_| w4(f2)).collect())
        .collect();
    let fc = (0..spec.classes).map(|_| w4(spec.fc_inputs())).collect();
    LenetLikeWeights { conv1, conv2, fc }
}

/// Result of one whole-network inference.
#[derive(Debug, Clone)]
pub struct PipelineRun {
    /// Raw class scores.
    pub logits: Vec<u64>,
    /// Predicted class (argmax).
    pub class: usize,
    /// Communication ledger across all boundaries.
    pub ledger: CommLedger,
    /// Client encryption / decryption operation counts.
    pub crypto_ops: (u64, u64),
}

/// All rotation steps any pipeline stage needs, provisioned once (offline
/// setup). Public so resumable drivers and chaos harnesses can provision a
/// session before stepping the pipeline through it.
pub fn all_rotation_steps(spec: &LenetLikeSpec, row: usize) -> Vec<i64> {
    let p1 = spec.img / 2;
    let mut steps = conv_rotation_steps(1, spec.img, spec.img, spec.filter);
    steps.extend(conv_rotation_steps(spec.conv1_ch, p1, p1, spec.filter));
    steps.extend(1..spec.fc_inputs() as i64);
    steps.sort_unstable();
    steps.dedup();
    steps.retain(|&s| s != 0 && s.unsigned_abs() < row as u64);
    steps
}

/// Runs the full encrypted pipeline over the given link. The plaintext
/// modulus must hold `15·15·conv2_ch·f²` accumulations (e.g. 18 bits for
/// the tiny spec).
///
/// A [`LinkConfig::direct`] link is the fault-free paper protocol. Under
/// any fault schedule within the retry budget this returns logits
/// **bit-identical** to the direct run with the same `seed`; a link worse
/// than the budget yields a typed [`TransportError`], never garbage.
///
/// # Errors
///
/// Transport errors when the link defeats the retry policy; HE-layer
/// failures wrapped in [`TransportError::He`].
pub fn run_encrypted(
    spec: &LenetLikeSpec,
    weights: &LenetLikeWeights,
    image: &[u64],
    params: &HeParams,
    seed: &[u8],
    link: LinkConfig,
) -> Result<PipelineRun, TransportError> {
    if image.len() != spec.img * spec.img {
        return Err(HeError::Mismatch(format!(
            "image has {} pixels, spec wants {}x{}",
            image.len(),
            spec.img,
            spec.img
        ))
        .into());
    }
    if spec.classes == 0 {
        return Err(HeError::Mismatch("need at least one output class".into()).into());
    }
    let row = params.degree() / 2;
    let p1 = spec.img / 2;

    let steps = all_rotation_steps(spec, row);
    let mut session = Session::<Bfv>::with_link(params, seed, &steps, link)?;

    // Stage 1: encrypted conv over the single input channel.
    let maps1 = run_encrypted_conv_layer(
        &mut session,
        &[image.to_vec()],
        &weights.conv1,
        spec.img,
        spec.img,
        spec.filter,
    )?;
    // Client: requantize + pool per channel.
    let pooled1: Vec<Vec<u64>> = maps1
        .iter()
        .map(|m| max_pool2x2(&requantize(m), spec.img, spec.img))
        .collect();

    // Stage 2: encrypted conv over conv1_ch channels.
    let maps2 =
        run_encrypted_conv_layer(&mut session, &pooled1, &weights.conv2, p1, p1, spec.filter)?;
    let p2 = p1 / 2;
    let pooled2: Vec<Vec<u64>> = maps2
        .iter()
        .map(|m| max_pool2x2(&requantize(m), p1, p1))
        .collect();

    // Stage 3: encrypted fully-connected layer over the flattened features.
    let mut features = Vec::with_capacity(spec.fc_inputs());
    for m in &pooled2 {
        features.extend_from_slice(m);
    }
    debug_assert_eq!(features.len(), spec.conv2_ch * p2 * p2);
    let ct = session
        .client_mut()
        .encrypt_slots(&replicate_for_matvec(&features, row))?;
    let uploaded = session.upload(&ct)?;
    let at_server = session.guard(&uploaded)?;
    let logits_ct = matvec_diagonals(session.server(), &at_server, &weights.fc)?;
    let reply = session.download(&logits_ct)?;
    session.ledger_mut().end_round();
    let slots = session.client_mut().decrypt_slots(&reply)?;
    let logits = slots[..spec.classes].to_vec();

    let class = logits
        .iter()
        .enumerate()
        .max_by_key(|&(_, v)| *v)
        .map(|(i, _)| i)
        .ok_or_else(|| {
            TransportError::from(HeError::Mismatch("need at least one output class".into()))
        })?;
    let (client, _server, ledger) = session.into_parts();
    Ok(PipelineRun {
        logits,
        class,
        crypto_ops: (client.encryption_count(), client.decryption_count()),
        ledger,
    })
}

/// The bit-identical plaintext twin of [`run_encrypted`].
pub fn run_plain(
    spec: &LenetLikeSpec,
    weights: &LenetLikeWeights,
    image: &[u64],
    plain_modulus: u64,
) -> (Vec<u64>, usize) {
    let t = plain_modulus;
    let maps1 = conv2d_plain_circular(
        &[image.to_vec()],
        &weights.conv1,
        spec.img,
        spec.img,
        spec.filter,
        t,
    );
    let pooled1: Vec<Vec<u64>> = maps1
        .iter()
        .map(|m| max_pool2x2(&requantize(m), spec.img, spec.img))
        .collect();
    let p1 = spec.img / 2;
    let maps2 = conv2d_plain_circular(&pooled1, &weights.conv2, p1, p1, spec.filter, t);
    let pooled2: Vec<Vec<u64>> = maps2
        .iter()
        .map(|m| max_pool2x2(&requantize(m), p1, p1))
        .collect();
    let mut features = Vec::new();
    for m in &pooled2 {
        features.extend_from_slice(m);
    }
    let logits: Vec<u64> = weights
        .fc
        .iter()
        .map(|row| {
            row.iter()
                .zip(&features)
                .fold(0u64, |acc, (w, x)| (acc + w * x) % t)
        })
        .collect();
    let class = logits
        .iter()
        .enumerate()
        .max_by_key(|&(_, v)| *v)
        .map(|(i, _)| i)
        .unwrap_or(0);
    (logits, class)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pipeline_rotation_steps_cover_fc_matvec_rotations() {
        // The pipeline's FC-stage compiler-IR twin requests one rotation
        // per matvec diagonal; the all-stage provisioning list must be a
        // superset.
        use crate::circuits::pipeline_program;
        use choco::compiler::{compile, CompilerOptions};
        let spec = LenetLikeSpec::tiny();
        let opts = CompilerOptions {
            scale_bits: 30,
            prime_bits: 45,
            max_levels: 3,
        };
        let compiled = compile(&pipeline_program(&spec), &opts).unwrap();
        let advertised = all_rotation_steps(&spec, 512);
        let requested = compiled.rotation_steps();
        assert!(!requested.is_empty());
        for s in requested {
            assert!(
                advertised.contains(&s),
                "FC matvec requests rotation {s} that all_rotation_steps does not advertise"
            );
        }
    }

    #[test]
    fn seeded_weights_are_4bit_and_deterministic() {
        let spec = LenetLikeSpec::tiny();
        let a = seeded_weights(&spec, b"w");
        let b = seeded_weights(&spec, b"w");
        assert_eq!(a.fc, b.fc);
        assert!(a.conv1.iter().flatten().flatten().all(|&w| w < 16));
        assert_eq!(a.fc.len(), spec.classes);
        assert_eq!(a.fc[0].len(), spec.fc_inputs());
    }

    #[test]
    fn encrypted_pipeline_matches_plaintext_twin_exactly() {
        let spec = LenetLikeSpec::tiny();
        let weights = seeded_weights(&spec, b"pipeline test");
        let image: Vec<u64> = (0..spec.img * spec.img)
            .map(|i| ((i * 7 + 3) % 16) as u64)
            .collect();
        let params = HeParams::bfv_insecure(1024, &[45, 45, 46], 18).unwrap();
        let enc = run_encrypted(
            &spec,
            &weights,
            &image,
            &params,
            b"pipe",
            LinkConfig::direct(),
        )
        .unwrap();
        let ctx_t = {
            use choco_he::bfv::BfvContext;
            BfvContext::new(&params).unwrap().plain_modulus()
        };
        let (logits, class) = run_plain(&spec, &weights, &image, ctx_t);
        assert_eq!(enc.logits, logits, "bit-exact logits");
        assert_eq!(enc.class, class);
        // Boundaries: conv1 down, conv2 up+down, fc up+down.
        assert!(enc.ledger.rounds >= 3);
        assert!(enc.crypto_ops.0 >= 3 && enc.crypto_ops.1 >= spec.conv2_ch as u64);
    }
}
