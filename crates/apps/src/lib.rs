//! The CHOCO workload suite (§5.1).
//!
//! Every application the paper evaluates, rebuilt on the `choco` protocol
//! layer:
//!
//! * [`dnn`] — the four quantized image-classification networks of Table 5
//!   (LeNet-5-Small/Large, SqueezeNet, VGG16) with MAC / parameter /
//!   communication accounting, the Figure 15 convolution microbenchmark
//!   generator, and a real encrypted convolution layer executed through the
//!   client-aided protocol;
//! * [`pagerank`] — encrypted PageRank in both BFV and CKKS with a
//!   configurable refresh schedule (Figure 13), plus a plaintext reference;
//! * [`distance`] — KNN / K-Means distance kernels in CKKS with the five
//!   packing variants of Figure 9 (point-major, dimension-major, their
//!   stacked forms, and collapsed point-major);
//! * [`circuits`] — compiler-IR twins of the four workload kernels, the
//!   programs `choco-verify` statically certifies before upload;
//! * [`protocols`] — analytic communication models of the seven prior
//!   privacy-preserving protocols Figure 10 compares against.

#![forbid(unsafe_code)]
// Panics hide protocol bugs: outside tests, prefer typed errors (PR 1's
// robustness audit). New `unwrap`/`expect` calls in library code must either
// be converted to `Result` or carry a `# Panics` contract at the public API.
#![cfg_attr(not(test), warn(clippy::unwrap_used))]
// Reference-style loops index multiple arrays in lockstep; the index
// form is clearer than zipped iterators for these numeric kernels.
#![allow(clippy::needless_range_loop)]

pub mod batched;
pub mod circuits;
pub mod client_ops;
pub mod distance;
pub mod dnn;
pub mod pagerank;
pub mod pipeline;
pub mod protocols;
pub mod remote;
pub mod resumable;
