//! Property-based tests for the arithmetic substrate.

use choco_math::bigint::UBig;
use choco_math::modops::{add_mod, center, inv_mod, mul_mod, pow_mod, sub_mod};
use choco_math::ntt::NttTable;
use choco_math::prime::generate_ntt_primes;
use choco_math::rns::RnsBasis;
use proptest::prelude::*;

const Q: u64 = 1_152_921_504_606_830_593; // 60-bit prime

proptest! {
    #[test]
    fn modops_match_u128_semantics(a in 0..Q, b in 0..Q) {
        prop_assert_eq!(add_mod(a, b, Q) as u128, (a as u128 + b as u128) % Q as u128);
        prop_assert_eq!(mul_mod(a, b, Q) as u128, (a as u128 * b as u128) % Q as u128);
        prop_assert_eq!(
            sub_mod(a, b, Q) as u128,
            (a as u128 + Q as u128 - b as u128) % Q as u128
        );
    }

    #[test]
    fn modular_inverse_is_inverse(a in 1..Q) {
        let inv = inv_mod(a, Q);
        prop_assert_eq!(mul_mod(a, inv, Q), 1);
    }

    #[test]
    fn pow_satisfies_exponent_addition(base in 1..Q, e1 in 0u64..1000, e2 in 0u64..1000) {
        let lhs = pow_mod(base, e1 + e2, Q);
        let rhs = mul_mod(pow_mod(base, e1, Q), pow_mod(base, e2, Q), Q);
        prop_assert_eq!(lhs, rhs);
    }

    #[test]
    fn center_roundtrips(a in 0..Q) {
        let c = center(a, Q);
        let back = c.rem_euclid(Q as i64) as u64;
        prop_assert_eq!(back, a);
        prop_assert!(c.unsigned_abs() <= Q / 2 + 1);
    }

    #[test]
    fn ubig_add_sub_roundtrip(a in any::<[u64; 4]>(), b in any::<[u64; 3]>()) {
        let x = UBig::from_limbs(&a);
        let y = UBig::from_limbs(&b);
        let sum = x.add(&y);
        prop_assert_eq!(sum.sub(&y), x);
    }

    #[test]
    fn ubig_mul_matches_u128(a in any::<u64>(), b in any::<u64>()) {
        let prod = UBig::from_u64(a).mul(&UBig::from_u64(b));
        prop_assert_eq!(prod, UBig::from_u128(a as u128 * b as u128));
    }

    #[test]
    fn ubig_divrem_reconstructs(a in any::<[u64; 5]>(), d in any::<[u64; 2]>()) {
        let x = UBig::from_limbs(&a);
        let y = UBig::from_limbs(&d);
        prop_assume!(!y.is_zero());
        let (q, r) = x.divrem(&y);
        prop_assert!(r < y);
        prop_assert_eq!(q.mul(&y).add(&r), x);
    }

    #[test]
    fn ubig_shift_roundtrip(a in any::<[u64; 3]>(), s in 0u32..130) {
        let x = UBig::from_limbs(&a);
        prop_assert_eq!(x.shl(s).shr(s), x);
    }

    #[test]
    fn ubig_mul_distributes(a in any::<[u64; 2]>(), b in any::<[u64; 2]>(), c in any::<[u64; 2]>()) {
        let x = UBig::from_limbs(&a);
        let y = UBig::from_limbs(&b);
        let z = UBig::from_limbs(&c);
        prop_assert_eq!(x.add(&y).mul(&z), x.mul(&z).add(&y.mul(&z)));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn ntt_roundtrip_random_polys(seed in any::<u64>()) {
        let n = 256usize;
        let q = generate_ntt_primes(45, n, 1)[0];
        let table = NttTable::new(n, q).unwrap();
        let orig: Vec<u64> = (0..n as u64).map(|i| (i.wrapping_mul(seed | 1)) % q).collect();
        let mut a = orig.clone();
        table.forward(&mut a);
        table.inverse(&mut a);
        prop_assert_eq!(a, orig);
    }

    #[test]
    fn ntt_mul_commutes(seed in any::<u64>()) {
        let n = 128usize;
        let q = generate_ntt_primes(45, n, 1)[0];
        let table = NttTable::new(n, q).unwrap();
        let a: Vec<u64> = (0..n as u64).map(|i| (i.wrapping_mul(seed | 1)) % q).collect();
        let b: Vec<u64> = (0..n as u64).map(|i| (i.wrapping_add(seed >> 3)) % q).collect();
        prop_assert_eq!(table.negacyclic_mul(&a, &b), table.negacyclic_mul(&b, &a));
    }

    #[test]
    fn rns_compose_decompose_roundtrip(v in any::<[u64; 2]>()) {
        let n = 64usize;
        let primes = generate_ntt_primes(50, n, 3);
        let basis = RnsBasis::new(n, &primes).unwrap();
        let x = UBig::from_limbs(&v);
        prop_assume!(x < *basis.modulus());
        let residues = basis.decompose(&x);
        prop_assert_eq!(basis.compose(&residues), x);
    }

    #[test]
    fn rns_compose_is_additive(a in any::<u64>(), b in any::<u64>()) {
        let n = 64usize;
        let primes = generate_ntt_primes(50, n, 2);
        let basis = RnsBasis::new(n, &primes).unwrap();
        let ra = basis.decompose(&UBig::from_u64(a));
        let rb = basis.decompose(&UBig::from_u64(b));
        let sum: Vec<u64> = ra
            .iter()
            .zip(&rb)
            .zip(basis.primes())
            .map(|((&x, &y), &q)| add_mod(x % q, y % q, q))
            .collect();
        let composed = basis.compose(&sum);
        let expect = UBig::from_u128(a as u128 + b as u128).divrem(basis.modulus()).1;
        prop_assert_eq!(composed, expect);
    }
}
