//! Property-based tests for the arithmetic substrate (deterministic
//! quickprop harness; each property runs seeded random cases).

use choco_math::bigint::UBig;
use choco_math::modops::{add_mod, center, inv_mod, mul_mod, pow_mod, sub_mod};
use choco_math::ntt::{apply_galois_ntt, galois_ntt_permutation, NttTable};
use choco_math::par;
use choco_math::poly::apply_galois;
use choco_math::prime::generate_ntt_primes;
use choco_math::rns::RnsBasis;
use choco_quickprop::run_cases;

const Q: u64 = 1_152_921_504_606_830_593; // 60-bit prime

#[test]
fn modops_match_u128_semantics() {
    run_cases("modops match u128", 256, |g| {
        let (a, b) = (g.u64_below(Q), g.u64_below(Q));
        assert_eq!(
            add_mod(a, b, Q) as u128,
            (a as u128 + b as u128) % Q as u128
        );
        assert_eq!(
            mul_mod(a, b, Q) as u128,
            (a as u128 * b as u128) % Q as u128
        );
        assert_eq!(
            sub_mod(a, b, Q) as u128,
            (a as u128 + Q as u128 - b as u128) % Q as u128
        );
    });
}

#[test]
fn modular_inverse_is_inverse() {
    run_cases("inverse is inverse", 256, |g| {
        let a = g.u64_in(1, Q);
        let inv = inv_mod(a, Q);
        assert_eq!(mul_mod(a, inv, Q), 1);
    });
}

#[test]
fn pow_satisfies_exponent_addition() {
    run_cases("pow exponent addition", 128, |g| {
        let base = g.u64_in(1, Q);
        let e1 = g.u64_below(1000);
        let e2 = g.u64_below(1000);
        let lhs = pow_mod(base, e1 + e2, Q);
        let rhs = mul_mod(pow_mod(base, e1, Q), pow_mod(base, e2, Q), Q);
        assert_eq!(lhs, rhs);
    });
}

#[test]
fn center_roundtrips() {
    run_cases("center roundtrip", 256, |g| {
        let a = g.u64_below(Q);
        let c = center(a, Q);
        let back = c.rem_euclid(Q as i64) as u64;
        assert_eq!(back, a);
        assert!(c.unsigned_abs() <= Q / 2 + 1);
    });
}

#[test]
fn ubig_add_sub_roundtrip() {
    run_cases("ubig add/sub roundtrip", 256, |g| {
        let x = UBig::from_limbs(&g.array_u64::<4>());
        let y = UBig::from_limbs(&g.array_u64::<3>());
        let sum = x.add(&y);
        assert_eq!(sum.sub(&y), x);
    });
}

#[test]
fn ubig_mul_matches_u128() {
    run_cases("ubig mul vs u128", 256, |g| {
        let (a, b) = (g.u64(), g.u64());
        let prod = UBig::from_u64(a).mul(&UBig::from_u64(b));
        assert_eq!(prod, UBig::from_u128(a as u128 * b as u128));
    });
}

#[test]
fn ubig_divrem_reconstructs() {
    run_cases("ubig divrem reconstructs", 256, |g| {
        let x = UBig::from_limbs(&g.array_u64::<5>());
        let y = UBig::from_limbs(&g.array_u64::<2>());
        if y.is_zero() {
            return; // discard the (astronomically rare) zero divisor
        }
        let (q, r) = x.divrem(&y);
        assert!(r < y);
        assert_eq!(q.mul(&y).add(&r), x);
    });
}

#[test]
fn ubig_shift_roundtrip() {
    run_cases("ubig shift roundtrip", 256, |g| {
        let x = UBig::from_limbs(&g.array_u64::<3>());
        let s = g.u64_below(130) as u32;
        assert_eq!(x.shl(s).shr(s), x);
    });
}

#[test]
fn ubig_mul_distributes() {
    run_cases("ubig mul distributes", 128, |g| {
        let x = UBig::from_limbs(&g.array_u64::<2>());
        let y = UBig::from_limbs(&g.array_u64::<2>());
        let z = UBig::from_limbs(&g.array_u64::<2>());
        assert_eq!(x.add(&y).mul(&z), x.mul(&z).add(&y.mul(&z)));
    });
}

#[test]
fn ntt_roundtrip_random_polys() {
    run_cases("ntt roundtrip", 16, |g| {
        let n = 256usize;
        let q = generate_ntt_primes(45, n, 1)[0];
        let table = NttTable::new(n, q).unwrap();
        let seed = g.u64();
        let orig: Vec<u64> = (0..n as u64)
            .map(|i| (i.wrapping_mul(seed | 1)) % q)
            .collect();
        let mut a = orig.clone();
        table.forward(&mut a);
        table.inverse(&mut a);
        assert_eq!(a, orig);
    });
}

#[test]
fn ntt_mul_commutes() {
    run_cases("ntt mul commutes", 16, |g| {
        let n = 128usize;
        let q = generate_ntt_primes(45, n, 1)[0];
        let table = NttTable::new(n, q).unwrap();
        let seed = g.u64();
        let a: Vec<u64> = (0..n as u64)
            .map(|i| (i.wrapping_mul(seed | 1)) % q)
            .collect();
        let b: Vec<u64> = (0..n as u64)
            .map(|i| (i.wrapping_add(seed >> 3)) % q)
            .collect();
        assert_eq!(table.negacyclic_mul(&a, &b), table.negacyclic_mul(&b, &a));
    });
}

#[test]
fn lazy_ntt_matches_strict_on_random_polys() {
    run_cases("lazy ntt matches strict", 24, |g| {
        let n = 1usize << g.usize_in(5, 10); // 32..512
        let bits = g.u64_in(30, 61) as u32;
        let q = generate_ntt_primes(bits, n, 1)[0];
        let table = NttTable::new(n, q).unwrap();
        let orig = g.vec_u64_below(n, q);

        let mut lazy = orig.clone();
        let mut strict = orig.clone();
        table.forward(&mut lazy);
        table.forward_strict(&mut strict);
        assert_eq!(lazy, strict, "forward diverged (n={n}, q={q})");

        table.inverse(&mut lazy);
        table.inverse_strict(&mut strict);
        assert_eq!(lazy, strict, "inverse diverged (n={n}, q={q})");
        assert_eq!(lazy, orig, "roundtrip lost data (n={n}, q={q})");
    });
}

#[test]
fn galois_ntt_permutation_matches_coefficient_automorphism() {
    run_cases("galois ntt permutation", 24, |g| {
        let n = 1usize << g.usize_in(4, 9); // 16..256
        let q = generate_ntt_primes(45, n, 1)[0];
        let table = NttTable::new(n, q).unwrap();
        let e = 2 * g.u64_below(n as u64) + 1; // odd element in [1, 2n)
        let a = g.vec_u64_below(n, q);

        // Coefficient-domain automorphism, then NTT.
        let mut coeff = vec![0u64; n];
        apply_galois(&a, e, q, &mut coeff);
        table.forward(&mut coeff);

        // NTT, then the pure evaluation-domain permutation.
        let mut ntt = a.clone();
        table.forward(&mut ntt);
        let perm = galois_ntt_permutation(n, e);
        let mut permuted = vec![0u64; n];
        apply_galois_ntt(&ntt, &perm, &mut permuted);

        assert_eq!(coeff, permuted, "galois mismatch (n={n}, e={e})");
    });
}

#[test]
fn parallel_primitives_match_sequential_at_any_thread_count() {
    // The workspace invariant: results are bit-identical no matter how many
    // worker threads run, because each worker owns a contiguous chunk.
    run_cases("parallel matches sequential", 12, |g| {
        let len = g.usize_in(1, 300);
        let q = 1_152_921_504_606_830_593u64;
        let data = g.vec_u64_below(len, q);

        let expect_map: Vec<u64> = data.iter().map(|&x| mul_mod(x, x, q)).collect();
        let mut expect_each = data.clone();
        for (i, v) in expect_each.iter_mut().enumerate() {
            *v = add_mod(*v, i as u64 % q, q);
        }

        for threads in [1usize, 2, par::num_threads().max(2)] {
            par::set_num_threads(threads);
            let mapped = par::par_map_range(len, |i| mul_mod(data[i], data[i], q));
            assert_eq!(mapped, expect_map, "par_map_range at {threads} threads");
            let mut each = data.clone();
            par::par_for_each_mut(&mut each, |i, v| *v = add_mod(*v, i as u64 % q, q));
            assert_eq!(each, expect_each, "par_for_each_mut at {threads} threads");
        }
        par::set_num_threads(0); // restore the environment default
    });
}

#[test]
fn rns_compose_decompose_roundtrip() {
    run_cases("rns compose/decompose", 16, |g| {
        let n = 64usize;
        let primes = generate_ntt_primes(50, n, 3);
        let basis = RnsBasis::new(n, &primes).unwrap();
        let x = UBig::from_limbs(&g.array_u64::<2>());
        if x >= *basis.modulus() {
            return; // discard values outside the RNS range
        }
        let residues = basis.decompose(&x);
        assert_eq!(basis.compose(&residues), x);
    });
}

#[test]
fn rns_compose_is_additive() {
    run_cases("rns compose additive", 16, |g| {
        let n = 64usize;
        let primes = generate_ntt_primes(50, n, 2);
        let basis = RnsBasis::new(n, &primes).unwrap();
        let (a, b) = (g.u64(), g.u64());
        let ra = basis.decompose(&UBig::from_u64(a));
        let rb = basis.decompose(&UBig::from_u64(b));
        let sum: Vec<u64> = ra
            .iter()
            .zip(&rb)
            .zip(basis.primes())
            .map(|((&x, &y), &q)| add_mod(x % q, y % q, q))
            .collect();
        let composed = basis.compose(&sum);
        let expect = UBig::from_u128(a as u128 + b as u128)
            .divrem(basis.modulus())
            .1;
        assert_eq!(composed, expect);
    });
}

/// Moduli sizes matched to the bench suite's parameter sets, plus the
/// 61-bit ceiling (`q` just below `2^61`, the lazy-reduction limit).
const SIMD_MOD_BITS: [u32; 6] = [30, 45, 55, 58, 60, 61];

#[test]
fn dispatched_ntt_bit_identical_to_scalar_and_strict() {
    // The dispatched transforms (`forward`/`inverse`) must agree bit-for-bit
    // with both the scalar lazy path and the fully-reduced strict reference,
    // whatever backend `CHOCO_SIMD`/detection selected for this process
    // (ci.sh runs this suite under CHOCO_SIMD=0 and =1 × CHOCO_THREADS=1/4).
    let mut tables = Vec::new();
    for log_n in 10..=14 {
        let n = 1usize << log_n;
        for &bits in &SIMD_MOD_BITS {
            let q = generate_ntt_primes(bits, n, 1)[0];
            tables.push(NttTable::new(n, q).unwrap());
        }
    }
    run_cases("dispatched ntt bit identity", 2, |g| {
        for t in &tables {
            let (n, q) = (t.size(), t.modulus());
            let a: Vec<u64> = (0..n).map(|_| g.u64_below(q)).collect();
            let ctx = format!("n={n}, q={q} ({} bits)", 64 - q.leading_zeros());

            let mut fwd = a.clone();
            t.forward(&mut fwd);
            let mut fwd_scalar = a.clone();
            t.forward_scalar(&mut fwd_scalar);
            assert_eq!(fwd, fwd_scalar, "forward simd != scalar: {ctx}");
            let mut fwd_strict = a.clone();
            t.forward_strict(&mut fwd_strict);
            assert_eq!(fwd, fwd_strict, "forward lazy != strict: {ctx}");

            let mut inv = fwd.clone();
            t.inverse(&mut inv);
            let mut inv_scalar = fwd.clone();
            t.inverse_scalar(&mut inv_scalar);
            assert_eq!(inv, inv_scalar, "inverse simd != scalar: {ctx}");
            let mut inv_strict = fwd.clone();
            t.inverse_strict(&mut inv_strict);
            assert_eq!(inv, inv_strict, "inverse lazy != strict: {ctx}");
            assert_eq!(inv, a, "roundtrip != identity: {ctx}");
        }
    });
}

#[test]
fn simd_slice_ops_match_scalar_reference() {
    use choco_math::modops::{mul_mod_shoup, shoup_precompute};
    use choco_math::simd;
    // Odd lengths exercise the vector tails; length < lane width exercises
    // the all-tail case.
    run_cases("simd slice ops match scalar", 48, |g| {
        let bits = SIMD_MOD_BITS[g.usize_in(0, SIMD_MOD_BITS.len() - 1)];
        let q = generate_ntt_primes(bits, 64, 1)[0];
        let len = g.usize_in(1, 131);
        let a: Vec<u64> = (0..len).map(|_| g.u64_below(q)).collect();
        let b: Vec<u64> = (0..len).map(|_| g.u64_below(q)).collect();

        let mut got = a.clone();
        simd::add_mod_slices(&mut got, &b, q);
        let want: Vec<u64> = a.iter().zip(&b).map(|(&x, &y)| add_mod(x, y, q)).collect();
        assert_eq!(got, want, "add_mod_slices (len {len}, q {q})");

        let mut got = a.clone();
        simd::sub_mod_slices(&mut got, &b, q);
        let want: Vec<u64> = a.iter().zip(&b).map(|(&x, &y)| sub_mod(x, y, q)).collect();
        assert_eq!(got, want, "sub_mod_slices (len {len}, q {q})");

        let s = g.u64_below(q);
        let s_sh = shoup_precompute(s, q);
        let mut got = a.clone();
        simd::scalar_mul_shoup_slices(&mut got, s, s_sh, q);
        let want: Vec<u64> = a.iter().map(|&x| mul_mod_shoup(x, s, s_sh, q)).collect();
        assert_eq!(got, want, "scalar_mul_shoup_slices (len {len}, q {q})");

        let b_sh: Vec<u64> = b.iter().map(|&y| shoup_precompute(y, q)).collect();
        let mut got = a.clone();
        simd::dyadic_mul_shoup_slices(&mut got, &b, &b_sh, q);
        let want: Vec<u64> = a
            .iter()
            .zip(&b)
            .zip(&b_sh)
            .map(|((&x, &y), &ysh)| mul_mod_shoup(x, y, ysh, q))
            .collect();
        assert_eq!(got, want, "dyadic_mul_shoup_slices (len {len}, q {q})");
    });
}
