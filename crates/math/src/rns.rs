//! Residue Number System (RNS) bases.
//!
//! HE ciphertext coefficients live modulo a composite `q = q_1 ⋯ q_k` of
//! NTT-friendly primes and are stored as `k` independent residues (one per
//! prime). [`RnsBasis`] bundles the primes with their NTT tables and the CRT
//! constants needed to compose residues back into exact integers — the
//! operation behind BFV decryption, noise measurement, and the exact
//! tensor-product multiply.

use crate::bigint::UBig;
use crate::modops::{inv_mod, mul_mod};
use crate::ntt::{NttError, NttTable};

/// A basis of distinct NTT-friendly primes for ring degree `n`.
#[derive(Debug, Clone)]
pub struct RnsBasis {
    n: usize,
    primes: Vec<u64>,
    ntts: Vec<NttTable>,
    /// q = product of all primes.
    modulus: UBig,
    /// q / q_i for each i.
    punctured: Vec<UBig>,
    /// (q / q_i)^{-1} mod q_i.
    inv_punctured: Vec<u64>,
}

/// Errors from [`RnsBasis::new`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RnsError {
    /// The prime list was empty or contained duplicates.
    InvalidPrimes,
    /// A prime was rejected by NTT table construction.
    Ntt(NttError),
}

impl std::fmt::Display for RnsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RnsError::InvalidPrimes => write!(f, "rns basis primes must be distinct and nonempty"),
            RnsError::Ntt(e) => write!(f, "rns basis prime unusable: {e}"),
        }
    }
}

impl std::error::Error for RnsError {}

impl From<NttError> for RnsError {
    fn from(e: NttError) -> Self {
        RnsError::Ntt(e)
    }
}

impl RnsBasis {
    /// Builds a basis over ring degree `n` from `primes`.
    ///
    /// # Errors
    ///
    /// Returns [`RnsError::InvalidPrimes`] for an empty or duplicated prime
    /// list, and [`RnsError::Ntt`] if any prime is not NTT-friendly for `n`.
    pub fn new(n: usize, primes: &[u64]) -> Result<Self, RnsError> {
        if primes.is_empty() {
            return Err(RnsError::InvalidPrimes);
        }
        let mut sorted = primes.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        if sorted.len() != primes.len() {
            return Err(RnsError::InvalidPrimes);
        }
        let ntts = primes
            .iter()
            .map(|&q| NttTable::new(n, q))
            .collect::<Result<Vec<_>, _>>()?;
        let mut modulus = UBig::one();
        for &q in primes {
            modulus = modulus.mul_u64(q);
        }
        let punctured: Vec<UBig> = primes.iter().map(|&q| modulus.divrem_u64(q).0).collect();
        let inv_punctured: Vec<u64> = primes
            .iter()
            .zip(&punctured)
            .map(|(&q, p)| inv_mod(p.rem_u64(q), q))
            .collect();
        Ok(RnsBasis {
            n,
            primes: primes.to_vec(),
            ntts,
            modulus,
            punctured,
            inv_punctured,
        })
    }

    /// Ring degree the basis was built for.
    pub fn degree(&self) -> usize {
        self.n
    }

    /// Number of primes in the basis.
    pub fn len(&self) -> usize {
        self.primes.len()
    }

    /// True iff the basis has no primes (never true for a constructed basis).
    pub fn is_empty(&self) -> bool {
        self.primes.is_empty()
    }

    /// The primes.
    pub fn primes(&self) -> &[u64] {
        &self.primes
    }

    /// NTT tables, aligned with [`Self::primes`].
    pub fn ntt_tables(&self) -> &[NttTable] {
        &self.ntts
    }

    /// The composite modulus `q`.
    pub fn modulus(&self) -> &UBig {
        &self.modulus
    }

    /// The punctured product `q / q_i`.
    pub fn punctured(&self, i: usize) -> &UBig {
        &self.punctured[i]
    }

    /// `(q / q_i)^{-1} mod q_i` — the CRT/decomposition constant.
    pub fn inv_punctured(&self, i: usize) -> u64 {
        self.inv_punctured[i]
    }

    /// log2 of the composite modulus.
    pub fn modulus_bits(&self) -> f64 {
        self.modulus.log2()
    }

    /// A sub-basis containing the first `k` primes.
    ///
    /// # Panics
    ///
    /// Panics if `k` is 0 or exceeds the basis size.
    pub fn prefix(&self, k: usize) -> RnsBasis {
        assert!(k >= 1 && k <= self.len(), "invalid sub-basis size");
        RnsBasis::new(self.n, &self.primes[..k]).expect("prefix of a valid basis is valid")
    }

    /// CRT-composes one residue per prime into the unique integer in `[0, q)`.
    ///
    /// # Panics
    ///
    /// Panics if `residues.len() != self.len()`.
    pub fn compose(&self, residues: &[u64]) -> UBig {
        assert_eq!(residues.len(), self.len(), "residue count mismatch");
        let mut acc = UBig::zero();
        for i in 0..self.len() {
            let coeff = mul_mod(
                residues[i] % self.primes[i],
                self.inv_punctured[i],
                self.primes[i],
            );
            acc = acc.add(&self.punctured[i].mul_u64(coeff));
        }
        acc.divrem(&self.modulus).1
    }

    /// Decomposes an integer into its residues modulo each prime.
    pub fn decompose(&self, value: &UBig) -> Vec<u64> {
        self.primes.iter().map(|&q| value.rem_u64(q)).collect()
    }

    /// Composes residues and centers the result: returns `(magnitude, is_negative)`
    /// for the representative in `(-q/2, q/2]`.
    pub fn compose_centered(&self, residues: &[u64]) -> (UBig, bool) {
        let v = self.compose(residues);
        let half = self.modulus.shr(1);
        if v > half {
            (self.modulus.sub(&v), true)
        } else {
            (v, false)
        }
    }

    /// Decomposes a signed integer (given as magnitude + sign) into residues.
    pub fn decompose_signed(&self, magnitude: &UBig, negative: bool) -> Vec<u64> {
        self.primes
            .iter()
            .map(|&q| {
                let r = magnitude.rem_u64(q);
                if negative && r != 0 {
                    q - r
                } else {
                    r
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prime::generate_ntt_primes;

    fn basis() -> RnsBasis {
        let primes = generate_ntt_primes(40, 64, 3);
        RnsBasis::new(64, &primes).unwrap()
    }

    #[test]
    fn compose_decompose_roundtrip() {
        let b = basis();
        let v = UBig::from_limbs(&[0xDEAD_BEEF_1234, 0x42]);
        assert!(v < *b.modulus());
        let residues = b.decompose(&v);
        assert_eq!(b.compose(&residues), v);
    }

    #[test]
    fn compose_of_small_value_is_identity() {
        let b = basis();
        let residues = b.decompose(&UBig::from_u64(12345));
        assert_eq!(b.compose(&residues).to_u64(), 12345);
    }

    #[test]
    fn compose_respects_crt_for_random_residues() {
        let b = basis();
        let residues: Vec<u64> = b.primes().iter().map(|&q| q / 3 + 1).collect();
        let v = b.compose(&residues);
        for (i, &q) in b.primes().iter().enumerate() {
            assert_eq!(v.rem_u64(q), residues[i]);
        }
    }

    #[test]
    fn centered_composition_negates_large_values() {
        let b = basis();
        // -5 mod q
        let neg5 = b.modulus().sub(&UBig::from_u64(5));
        let residues = b.decompose(&neg5);
        let (mag, neg) = b.compose_centered(&residues);
        assert!(neg);
        assert_eq!(mag.to_u64(), 5);
        // +5 stays positive
        let (mag, neg) = b.compose_centered(&b.decompose(&UBig::from_u64(5)));
        assert!(!neg);
        assert_eq!(mag.to_u64(), 5);
    }

    #[test]
    fn decompose_signed_roundtrips_negatives() {
        let b = basis();
        let residues = b.decompose_signed(&UBig::from_u64(77), true);
        let (mag, neg) = b.compose_centered(&residues);
        assert!(neg);
        assert_eq!(mag.to_u64(), 77);
    }

    #[test]
    fn prefix_shares_leading_primes() {
        let b = basis();
        let p = b.prefix(2);
        assert_eq!(p.primes(), &b.primes()[..2]);
        assert_eq!(p.degree(), b.degree());
    }

    #[test]
    fn rejects_duplicates_and_empty() {
        let q = generate_ntt_primes(40, 64, 1)[0];
        assert_eq!(
            RnsBasis::new(64, &[q, q]).unwrap_err(),
            RnsError::InvalidPrimes
        );
        assert_eq!(RnsBasis::new(64, &[]).unwrap_err(), RnsError::InvalidPrimes);
    }

    #[test]
    fn rejects_non_ntt_prime() {
        // 97 is prime but 97 ≢ 1 mod 128.
        assert!(matches!(
            RnsBasis::new(64, &[97]).unwrap_err(),
            RnsError::Ntt(_)
        ));
    }

    #[test]
    fn modulus_is_product() {
        let b = basis();
        let mut expect = UBig::one();
        for &q in b.primes() {
            expect = expect.mul_u64(q);
        }
        assert_eq!(*b.modulus(), expect);
        let bits: f64 = b.primes().iter().map(|&q| (q as f64).log2()).sum();
        assert!((b.modulus_bits() - bits).abs() < 1e-6);
    }
}
