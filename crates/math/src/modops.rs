//! 64-bit modular arithmetic primitives.
//!
//! All moduli handled by the HE stack fit in 61 bits (SEAL-style "up to
//! 60-bit" primes plus headroom), so products fit in `u128` and the plain
//! widening-multiply route is both simple and fast enough for a
//! reproduction-quality library.

/// Adds two residues modulo `q`.
///
/// Both inputs must already be reduced (`< q`); the result is reduced.
#[inline(always)]
// choco-lint: modops
pub fn add_mod(a: u64, b: u64, q: u64) -> u64 {
    debug_assert!(a < q && b < q);
    let s = a + b;
    if s >= q {
        s - q
    } else {
        s
    }
}

/// Subtracts `b` from `a` modulo `q`.
#[inline(always)]
// choco-lint: modops
pub fn sub_mod(a: u64, b: u64, q: u64) -> u64 {
    debug_assert!(a < q && b < q);
    if a >= b {
        a - b
    } else {
        a + q - b
    }
}

/// Negates a residue modulo `q`.
#[inline(always)]
// choco-lint: modops
pub fn neg_mod(a: u64, q: u64) -> u64 {
    debug_assert!(a < q);
    if a == 0 {
        0
    } else {
        q - a
    }
}

/// Multiplies two residues modulo `q` using a widening 128-bit product.
#[inline(always)]
// choco-lint: modops
pub fn mul_mod(a: u64, b: u64, q: u64) -> u64 {
    ((a as u128 * b as u128) % q as u128) as u64
}

/// Fused multiply-add `(a*b + c) mod q`.
#[inline(always)]
// choco-lint: modops
pub fn mul_add_mod(a: u64, b: u64, c: u64, q: u64) -> u64 {
    ((a as u128 * b as u128 + c as u128) % q as u128) as u64
}

/// Raises `base` to the power `exp` modulo `q` by square-and-multiply.
// choco-lint: modops
pub fn pow_mod(mut base: u64, mut exp: u64, q: u64) -> u64 {
    let mut acc: u64 = 1 % q;
    base %= q;
    while exp > 0 {
        if exp & 1 == 1 {
            acc = mul_mod(acc, base, q);
        }
        base = mul_mod(base, base, q);
        exp >>= 1;
    }
    acc
}

/// Computes the modular inverse of `a` modulo prime `q` via Fermat's little
/// theorem.
///
/// # Panics
///
/// Panics if `a` is zero (zero has no inverse).
// choco-lint: modops
pub fn inv_mod(a: u64, q: u64) -> u64 {
    assert!(!a.is_multiple_of(q), "zero has no modular inverse");
    pow_mod(a, q - 2, q)
}

/// Reduces an arbitrary `u64` into `[0, q)`.
#[inline(always)]
// choco-lint: modops
pub fn reduce(a: u64, q: u64) -> u64 {
    a % q
}

/// Reduces a signed value into `[0, q)`.
#[inline(always)]
// choco-lint: modops
pub fn reduce_signed(a: i64, q: u64) -> u64 {
    let r = a.rem_euclid(q as i64);
    r as u64
}

/// Maps a residue in `[0, q)` to its centered representative in
/// `(-q/2, q/2]` returned as `i64`.
///
/// Only valid for `q < 2^63`.
#[inline(always)]
// choco-lint: modops
pub fn center(a: u64, q: u64) -> i64 {
    debug_assert!(a < q && q < (1 << 63));
    if a > q / 2 {
        a as i64 - q as i64
    } else {
        a as i64
    }
}

/// Shoup precomputation for fast multiplication by a constant: returns
/// `floor(b * 2^64 / q)`.
#[inline]
// choco-lint: modops
pub fn shoup_precompute(b: u64, q: u64) -> u64 {
    (((b as u128) << 64) / q as u128) as u64
}

/// Multiplies `a` by the constant `b` (with its Shoup precomputation
/// `b_shoup`) modulo `q`. Result is in `[0, q)` when `q < 2^63`.
#[inline(always)]
// choco-lint: modops
pub fn mul_mod_shoup(a: u64, b: u64, b_shoup: u64, q: u64) -> u64 {
    let r = mul_mod_shoup_lazy(a, b, b_shoup, q);
    if r >= q {
        r - q
    } else {
        r
    }
}

/// Lazy Shoup multiplication: returns a value congruent to `a·b mod q` in
/// the **half-reduced** range `[0, 2q)`, skipping the final conditional
/// subtraction. This is the Harvey-NTT workhorse: butterflies keep operands
/// in `[0, 4q)` and only correct at the very end.
///
/// `b` must be reduced (`< q`); `a` may be any `u64` (in particular a lazy
/// value in `[0, 4q)`). Requires `q < 2^63` so `2q` fits in a `u64`.
#[inline(always)]
// choco-lint: modops
pub fn mul_mod_shoup_lazy(a: u64, b: u64, b_shoup: u64, q: u64) -> u64 {
    debug_assert!(b < q && q < (1 << 63));
    let hi = ((a as u128 * b_shoup as u128) >> 64) as u64;
    a.wrapping_mul(b).wrapping_sub(hi.wrapping_mul(q))
}

/// Final correction for a lazy value in `[0, 4q)`: reduces into `[0, q)`.
#[inline(always)]
// choco-lint: modops
pub fn reduce_4q(a: u64, q: u64) -> u64 {
    debug_assert!(a < 4 * q);
    let a = if a >= 2 * q { a - 2 * q } else { a };
    if a >= q {
        a - q
    } else {
        a
    }
}

/// Final correction for a lazy value in `[0, 2q)`: reduces into `[0, q)`.
#[inline(always)]
// choco-lint: modops
pub fn reduce_2q(a: u64, q: u64) -> u64 {
    debug_assert!(a < 2 * q);
    if a >= q {
        a - q
    } else {
        a
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const Q: u64 = 1_152_921_504_606_830_593; // 60-bit NTT prime (1 mod 2^15)

    #[test]
    fn add_sub_roundtrip() {
        let a = Q - 3;
        let b = 17;
        assert_eq!(sub_mod(add_mod(a, b, Q), b, Q), a);
    }

    #[test]
    fn add_wraps() {
        assert_eq!(add_mod(Q - 1, 1, Q), 0);
        assert_eq!(add_mod(Q - 1, Q - 1, Q), Q - 2);
    }

    #[test]
    fn sub_wraps() {
        assert_eq!(sub_mod(0, 1, Q), Q - 1);
    }

    #[test]
    fn neg_is_additive_inverse() {
        for a in [0u64, 1, 12345, Q - 1] {
            assert_eq!(add_mod(a, neg_mod(a, Q), Q), 0);
        }
    }

    #[test]
    fn mul_matches_u128() {
        let a = 0xDEAD_BEEF_CAFE_u64 % Q;
        let b = 0x1234_5678_9ABC_DEF0_u64 % Q;
        assert_eq!(
            mul_mod(a, b, Q),
            ((a as u128 * b as u128) % Q as u128) as u64
        );
    }

    #[test]
    fn pow_small_cases() {
        assert_eq!(pow_mod(2, 10, Q), 1024);
        assert_eq!(pow_mod(7, 0, Q), 1);
        assert_eq!(pow_mod(0, 5, Q), 0);
    }

    #[test]
    fn fermat_inverse() {
        for a in [1u64, 2, 3, 65537, Q - 2] {
            let inv = inv_mod(a, Q);
            assert_eq!(mul_mod(a, inv, Q), 1);
        }
    }

    #[test]
    #[should_panic(expected = "zero has no modular inverse")]
    fn inverse_of_zero_panics() {
        inv_mod(0, Q);
    }

    #[test]
    fn center_maps_to_half_open_interval() {
        assert_eq!(center(0, 7), 0);
        assert_eq!(center(3, 7), 3);
        assert_eq!(center(4, 7), -3);
        assert_eq!(center(6, 7), -1);
    }

    #[test]
    fn reduce_signed_matches_euclid() {
        assert_eq!(reduce_signed(-1, 7), 6);
        assert_eq!(reduce_signed(-7, 7), 0);
        assert_eq!(reduce_signed(8, 7), 1);
    }

    #[test]
    fn shoup_matches_plain_mul() {
        let b = 987_654_321_123_u64 % Q;
        let bs = shoup_precompute(b, Q);
        for a in [0u64, 1, 999, Q - 1, Q / 2] {
            assert_eq!(mul_mod_shoup(a, b, bs, Q), mul_mod(a, b, Q));
        }
    }

    #[test]
    fn lazy_shoup_is_congruent_and_half_reduced() {
        let b = 987_654_321_123_u64 % Q;
        let bs = shoup_precompute(b, Q);
        // Lazy inputs may sit anywhere in [0, 4q).
        for a in [0u64, 1, Q - 1, Q, 2 * Q - 1, 2 * Q + 5, 4 * Q - 1] {
            let r = mul_mod_shoup_lazy(a, b, bs, Q);
            assert!(r < 2 * Q, "lazy result out of range: {r}");
            assert_eq!(r % Q, mul_mod(a % Q, b, Q));
        }
    }

    #[test]
    fn lazy_corrections_reduce() {
        for a in [0u64, 1, Q - 1, Q, 2 * Q - 1] {
            assert_eq!(reduce_2q(a, Q), a % Q);
        }
        for a in [0u64, Q, 2 * Q, 3 * Q + 7, 4 * Q - 1] {
            assert_eq!(reduce_4q(a, Q), a % Q);
        }
    }

    #[test]
    fn mul_add_matches_composition() {
        let (a, b, c) = (123_456_789, 987_654_321, 555);
        assert_eq!(mul_add_mod(a, b, c, Q), add_mod(mul_mod(a, b, Q), c, Q));
    }
}
