//! Primality testing and NTT-friendly prime generation.
//!
//! HE moduli must satisfy `q ≡ 1 (mod 2N)` so that `Z_q` contains a
//! primitive `2N`-th root of unity (needed by the negacyclic NTT). SEAL
//! ships a table of such primes; we generate them on demand with a
//! deterministic Miller–Rabin test that is exact for all 64-bit integers.

use crate::modops::{mul_mod, pow_mod};

/// Witnesses sufficient for a deterministic Miller–Rabin test over `u64`
/// (Sinclair's 7-witness set).
const MR_WITNESSES: [u64; 7] = [2, 325, 9375, 28178, 450775, 9780504, 1795265022];

/// Returns `true` iff `n` is prime. Exact for every `u64`.
pub fn is_prime(n: u64) -> bool {
    if n < 2 {
        return false;
    }
    for p in [2u64, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37] {
        if n == p {
            return true;
        }
        if n.is_multiple_of(p) {
            return false;
        }
    }
    // Write n-1 = d * 2^s with d odd.
    let mut d = n - 1;
    let mut s = 0u32;
    while d.is_multiple_of(2) {
        d /= 2;
        s += 1;
    }
    'witness: for &w in &MR_WITNESSES {
        let w = w % n;
        if w == 0 {
            continue;
        }
        let mut x = pow_mod(w, d, n);
        if x == 1 || x == n - 1 {
            continue;
        }
        for _ in 0..s - 1 {
            x = mul_mod(x, x, n);
            if x == n - 1 {
                continue 'witness;
            }
        }
        return false;
    }
    true
}

/// Generates `count` distinct primes of exactly `bits` bits satisfying
/// `p ≡ 1 (mod 2n)`, scanning downward from the top of the bit range.
///
/// This mirrors SEAL's `CoeffModulus::Create`: the largest suitable primes
/// of the requested size are chosen so that moduli across calls are
/// reproducible.
///
/// # Panics
///
/// Panics if `bits` is not in `2..=62`, if `n` is not a power of two, or if
/// not enough primes exist in the requested range (practically impossible
/// for HE-relevant sizes).
pub fn generate_ntt_primes(bits: u32, n: usize, count: usize) -> Vec<u64> {
    try_generate_ntt_primes(bits, n, count).unwrap_or_else(|| {
        panic!(
            "not enough {bits}-bit primes congruent to 1 mod {}",
            2 * n as u64
        )
    })
}

/// Non-panicking variant of [`generate_ntt_primes`]: returns `None` when
/// fewer than `count` suitable primes exist at the requested size (possible
/// for small `bits` relative to `2n`).
pub fn try_generate_ntt_primes(bits: u32, n: usize, count: usize) -> Option<Vec<u64>> {
    assert!((2..=62).contains(&bits), "prime size out of range");
    assert!(n.is_power_of_two(), "ring degree must be a power of two");
    let m = 2 * n as u64;
    let hi = if bits == 62 {
        u64::MAX >> 2
    } else {
        (1u64 << bits) - 1
    };
    let lo = 1u64 << (bits - 1);
    if hi < m {
        return None;
    }
    // Largest candidate ≡ 1 mod m at or below hi.
    let mut cand = hi - ((hi - 1) % m);
    let mut out = Vec::with_capacity(count);
    while out.len() < count && cand > lo {
        if is_prime(cand) {
            out.push(cand);
        }
        match cand.checked_sub(m) {
            Some(next) => cand = next,
            None => break,
        }
    }
    (out.len() == count).then_some(out)
}

/// Generates a single prime with `bits` bits congruent to `1 (mod 2n)`,
/// suitable as a BFV plaintext modulus that supports batching.
///
/// # Panics
///
/// Panics when no such prime exists; use [`try_generate_plain_modulus`] to
/// handle that case.
pub fn generate_plain_modulus(bits: u32, n: usize) -> u64 {
    generate_ntt_primes(bits, n, 1)[0]
}

/// Non-panicking variant of [`generate_plain_modulus`].
pub fn try_generate_plain_modulus(bits: u32, n: usize) -> Option<u64> {
    try_generate_ntt_primes(bits, n, 1).map(|v| v[0])
}

/// Finds a generator (primitive root) of the multiplicative group of the
/// prime field `Z_q`.
///
/// Uses the factorization of `q - 1` by trial division (fine for our
/// NTT-friendly primes where `q - 1 = 2^a * odd-smallish`).
pub fn primitive_root(q: u64) -> u64 {
    let phi = q - 1;
    let factors = distinct_prime_factors(phi);
    'outer: for g in 2..q {
        for &f in &factors {
            if pow_mod(g, phi / f, q) == 1 {
                continue 'outer;
            }
        }
        return g;
    }
    unreachable!("every prime field has a generator")
}

/// Returns a primitive `order`-th root of unity modulo prime `q`.
///
/// # Panics
///
/// Panics unless `order` divides `q - 1`.
pub fn primitive_nth_root(order: u64, q: u64) -> u64 {
    assert!(
        (q - 1).is_multiple_of(order),
        "no primitive {order}-th root of unity mod {q}"
    );
    let g = primitive_root(q);
    let root = pow_mod(g, (q - 1) / order, q);
    debug_assert_eq!(pow_mod(root, order, q), 1);
    debug_assert_ne!(pow_mod(root, order / 2, q), 1);
    root
}

fn distinct_prime_factors(mut n: u64) -> Vec<u64> {
    let mut fs = Vec::new();
    let mut d = 2u64;
    while d.saturating_mul(d) <= n {
        if n.is_multiple_of(d) {
            fs.push(d);
            while n.is_multiple_of(d) {
                n /= d;
            }
        }
        d += 1;
    }
    if n > 1 {
        fs.push(n);
    }
    fs
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_primes_classified() {
        let primes = [2u64, 3, 5, 7, 11, 13, 97, 65537];
        let composites = [0u64, 1, 4, 9, 15, 91, 561, 65535];
        for p in primes {
            assert!(is_prime(p), "{p} should be prime");
        }
        for c in composites {
            assert!(!is_prime(c), "{c} should be composite");
        }
    }

    #[test]
    fn strong_pseudoprimes_rejected() {
        // Classic strong pseudoprimes to individual bases.
        for c in [2047u64, 1373653, 25326001, 3215031751, 3825123056546413051] {
            assert!(!is_prime(c), "{c} is composite");
        }
    }

    #[test]
    fn large_known_prime_accepted() {
        // 2^61 - 1 is a Mersenne prime.
        assert!(is_prime((1u64 << 61) - 1));
    }

    #[test]
    fn generated_primes_have_requested_shape() {
        for (bits, n) in [(30u32, 1024usize), (36, 4096), (58, 8192), (60, 8192)] {
            let ps = generate_ntt_primes(bits, n, 3);
            assert_eq!(ps.len(), 3);
            for p in ps {
                assert!(is_prime(p));
                assert_eq!(p % (2 * n as u64), 1);
                assert_eq!(64 - p.leading_zeros(), bits);
            }
        }
    }

    #[test]
    fn generated_primes_are_distinct_and_descending() {
        let ps = generate_ntt_primes(40, 2048, 5);
        for w in ps.windows(2) {
            assert!(w[0] > w[1]);
        }
    }

    #[test]
    fn primitive_root_has_full_order() {
        let q = generate_ntt_primes(30, 1024, 1)[0];
        let g = primitive_root(q);
        // g^((q-1)/2) must be -1 for a generator.
        assert_eq!(pow_mod(g, (q - 1) / 2, q), q - 1);
    }

    #[test]
    fn nth_root_has_exact_order() {
        let n = 1024u64;
        let q = generate_ntt_primes(30, n as usize, 1)[0];
        let w = primitive_nth_root(2 * n, q);
        assert_eq!(pow_mod(w, 2 * n, q), 1);
        assert_eq!(pow_mod(w, n, q), q - 1); // psi^N = -1 (negacyclic)
    }

    #[test]
    #[should_panic(expected = "no primitive")]
    fn nth_root_requires_divisibility() {
        primitive_nth_root(3, 257); // 3 does not divide 256
    }
}
