//! Coefficient-wise polynomial helpers over a single prime modulus.
//!
//! Polynomials are plain `&[u64]` / `&mut [u64]` coefficient slices reduced
//! modulo `q`; the ring structure (`x^N + 1`) is supplied by the caller via
//! [`crate::ntt::NttTable`] where products are needed.

use crate::modops::{add_mod, mul_add_mod, mul_mod, neg_mod, sub_mod};

/// `a += b (mod q)` element-wise.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn add_assign(a: &mut [u64], b: &[u64], q: u64) {
    assert_eq!(a.len(), b.len(), "polynomial length mismatch");
    crate::simd::add_mod_slices(a, b, q);
}

/// `a -= b (mod q)` element-wise.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn sub_assign(a: &mut [u64], b: &[u64], q: u64) {
    assert_eq!(a.len(), b.len(), "polynomial length mismatch");
    crate::simd::sub_mod_slices(a, b, q);
}

/// `a = -a (mod q)` element-wise.
pub fn neg_assign(a: &mut [u64], q: u64) {
    for x in a.iter_mut() {
        *x = neg_mod(*x, q);
    }
}

/// `a ⊙= b (mod q)`: the dyadic (element-wise / evaluation-form) product.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn dyadic_assign(a: &mut [u64], b: &[u64], q: u64) {
    assert_eq!(a.len(), b.len(), "polynomial length mismatch");
    for (x, &y) in a.iter_mut().zip(b) {
        *x = mul_mod(*x, y, q);
    }
}

/// `acc += a ⊙ b (mod q)`: fused dyadic multiply-accumulate, the inner step
/// of evaluation-form inner products. Avoids materialising the product.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn dyadic_acc_assign(acc: &mut [u64], a: &[u64], b: &[u64], q: u64) {
    assert_eq!(acc.len(), a.len(), "polynomial length mismatch");
    assert_eq!(acc.len(), b.len(), "polynomial length mismatch");
    for ((x, &y), &z) in acc.iter_mut().zip(a).zip(b) {
        *x = mul_add_mod(y, z, *x, q);
    }
}

/// `a *= s (mod q)` for a scalar `s`.
pub fn scalar_mul_assign(a: &mut [u64], s: u64, q: u64) {
    let s = s % q;
    let s_shoup = crate::modops::shoup_precompute(s, q);
    crate::simd::scalar_mul_shoup_slices(a, s, s_shoup, q);
}

/// Applies the Galois automorphism `x → x^e` to a polynomial in coefficient
/// form over `Z_q[x]/(x^N + 1)`, writing into `out`.
///
/// `e` must be odd and in `[1, 2N)`. Coefficient `c_i · x^i` maps to
/// `± c_i · x^{(i·e mod 2N) mod N}` with a sign flip when `i·e mod 2N ≥ N`.
///
/// # Panics
///
/// Panics if `out.len() != a.len()`, if the length is not a power of two, or
/// if `e` is even.
pub fn apply_galois(a: &[u64], e: u64, q: u64, out: &mut [u64]) {
    let n = a.len();
    assert_eq!(out.len(), n, "galois output length mismatch");
    assert!(n.is_power_of_two(), "ring degree must be a power of two");
    assert!(e % 2 == 1, "galois element must be odd");
    let m = 2 * n as u64;
    out.fill(0);
    for (i, &c) in a.iter().enumerate() {
        if c == 0 {
            continue;
        }
        let k = (i as u64 * e) % m;
        if k < n as u64 {
            out[k as usize] = add_mod(out[k as usize], c, q);
        } else {
            let idx = (k - n as u64) as usize;
            out[idx] = sub_mod(out[idx], c, q);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ntt::NttTable;
    use crate::prime::generate_ntt_primes;

    const Q: u64 = 97; // small prime for hand-checkable tests (not NTT use)

    #[test]
    fn add_sub_are_inverse() {
        let mut a = vec![1u64, 2, 3, 96];
        let b = vec![5u64, 96, 0, 50];
        let orig = a.clone();
        add_assign(&mut a, &b, Q);
        sub_assign(&mut a, &b, Q);
        assert_eq!(a, orig);
    }

    #[test]
    fn neg_twice_is_identity() {
        let mut a = vec![0u64, 1, 50, 96];
        let orig = a.clone();
        neg_assign(&mut a, Q);
        neg_assign(&mut a, Q);
        assert_eq!(a, orig);
    }

    #[test]
    fn dyadic_and_scalar() {
        let mut a = vec![2u64, 3];
        dyadic_assign(&mut a, &[10, 40], Q);
        assert_eq!(a, vec![20, 23]); // 3*40 = 120 = 23 mod 97
        scalar_mul_assign(&mut a, 2, Q);
        assert_eq!(a, vec![40, 46]);
    }

    #[test]
    fn galois_identity_element() {
        let a = vec![1u64, 2, 3, 4];
        let mut out = vec![0u64; 4];
        apply_galois(&a, 1, Q, &mut out);
        assert_eq!(out, a);
    }

    #[test]
    fn galois_x_to_x3_on_degree4() {
        // a = x. e=3 → x^3.
        let a = vec![0u64, 1, 0, 0];
        let mut out = vec![0u64; 4];
        apply_galois(&a, 3, Q, &mut out);
        assert_eq!(out, vec![0, 0, 0, 1]);
        // a = x^2, e=3 → x^6 = -x^2 (mod x^4+1).
        let a = vec![0u64, 0, 1, 0];
        apply_galois(&a, 3, Q, &mut out);
        assert_eq!(out, vec![0, 0, Q - 1, 0]);
    }

    #[test]
    fn galois_is_ring_homomorphism() {
        // aut(a*b) == aut(a)*aut(b) in Z_q[x]/(x^N+1).
        let n = 64;
        let q = generate_ntt_primes(30, n, 1)[0];
        let t = NttTable::new(n, q).unwrap();
        let a: Vec<u64> = (0..n as u64).map(|i| (i * 7 + 1) % q).collect();
        let b: Vec<u64> = (0..n as u64).map(|i| (i * 13 + 5) % q).collect();
        let e = 3u64;
        let prod = t.negacyclic_mul(&a, &b);
        let mut aut_prod = vec![0u64; n];
        apply_galois(&prod, e, q, &mut aut_prod);

        let mut aa = vec![0u64; n];
        let mut bb = vec![0u64; n];
        apply_galois(&a, e, q, &mut aa);
        apply_galois(&b, e, q, &mut bb);
        let prod_aut = t.negacyclic_mul(&aa, &bb);
        assert_eq!(aut_prod, prod_aut);
    }

    #[test]
    #[should_panic(expected = "galois element must be odd")]
    fn galois_rejects_even_element() {
        let a = vec![0u64; 8];
        let mut out = vec![0u64; 8];
        apply_galois(&a, 2, Q, &mut out);
    }
}
