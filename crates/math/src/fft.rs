//! Complex floating-point FFT used by the CKKS canonical-embedding encoder.
//!
//! A minimal `Complex` type and an iterative radix-2 transform are all the
//! encoder needs; sizes are powers of two up to the ring degree (≤ 2^15).

use std::ops::{Add, AddAssign, Mul, Neg, Sub};

/// A complex number with `f64` components.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Complex {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex {
    /// Constructs `re + im·i`.
    pub fn new(re: f64, im: f64) -> Self {
        Complex { re, im }
    }

    /// The additive identity.
    pub fn zero() -> Self {
        Complex { re: 0.0, im: 0.0 }
    }

    /// `e^{iθ}`.
    pub fn from_angle(theta: f64) -> Self {
        Complex {
            re: theta.cos(),
            im: theta.sin(),
        }
    }

    /// Complex conjugate.
    pub fn conj(self) -> Self {
        Complex {
            re: self.re,
            im: -self.im,
        }
    }

    /// Squared magnitude.
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Magnitude.
    pub fn abs(self) -> f64 {
        self.norm_sqr().sqrt()
    }

    /// Scales by a real factor.
    pub fn scale(self, s: f64) -> Self {
        Complex {
            re: self.re * s,
            im: self.im * s,
        }
    }
}

impl Add for Complex {
    type Output = Complex;
    fn add(self, rhs: Complex) -> Complex {
        Complex::new(self.re + rhs.re, self.im + rhs.im)
    }
}

impl AddAssign for Complex {
    fn add_assign(&mut self, rhs: Complex) {
        self.re += rhs.re;
        self.im += rhs.im;
    }
}

impl Sub for Complex {
    type Output = Complex;
    fn sub(self, rhs: Complex) -> Complex {
        Complex::new(self.re - rhs.re, self.im - rhs.im)
    }
}

impl Neg for Complex {
    type Output = Complex;
    fn neg(self) -> Complex {
        Complex::new(-self.re, -self.im)
    }
}

impl Mul for Complex {
    type Output = Complex;
    fn mul(self, rhs: Complex) -> Complex {
        Complex::new(
            self.re * rhs.re - self.im * rhs.im,
            self.re * rhs.im + self.im * rhs.re,
        )
    }
}

/// In-place iterative radix-2 FFT.
///
/// Computes `X_k = Σ_j x_j · e^{-2πi jk / n}` (the standard DFT with
/// negative exponent).
///
/// # Panics
///
/// Panics if the length is not a power of two.
pub fn fft_forward(a: &mut [Complex]) {
    fft(a, false)
}

/// In-place inverse FFT, including the `1/n` scaling:
/// `x_j = (1/n) Σ_k X_k · e^{+2πi jk / n}`.
///
/// # Panics
///
/// Panics if the length is not a power of two.
pub fn fft_inverse(a: &mut [Complex]) {
    fft(a, true);
    let inv_n = 1.0 / a.len() as f64;
    for x in a.iter_mut() {
        *x = x.scale(inv_n);
    }
}

fn fft(a: &mut [Complex], inverse: bool) {
    let n = a.len();
    assert!(n.is_power_of_two(), "fft length must be a power of two");
    if n <= 1 {
        return;
    }
    // Bit-reversal permutation.
    let bits = n.trailing_zeros();
    for i in 0..n {
        let j = i.reverse_bits() >> (usize::BITS - bits);
        if i < j {
            a.swap(i, j);
        }
    }
    let sign = if inverse { 1.0 } else { -1.0 };
    let mut len = 2;
    while len <= n {
        let ang = sign * 2.0 * std::f64::consts::PI / len as f64;
        let wlen = Complex::from_angle(ang);
        for start in (0..n).step_by(len) {
            let mut w = Complex::new(1.0, 0.0);
            for k in 0..len / 2 {
                let u = a[start + k];
                let v = a[start + k + len / 2] * w;
                a[start + k] = u + v;
                a[start + k + len / 2] = u - v;
                w = w * wlen;
            }
        }
        len <<= 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: Complex, b: Complex, eps: f64) -> bool {
        (a - b).abs() < eps
    }

    #[test]
    fn forward_of_impulse_is_flat() {
        let mut a = vec![Complex::zero(); 8];
        a[0] = Complex::new(1.0, 0.0);
        fft_forward(&mut a);
        for x in a {
            assert!(close(x, Complex::new(1.0, 0.0), 1e-12));
        }
    }

    #[test]
    fn roundtrip_recovers_signal() {
        let n = 256;
        let orig: Vec<Complex> = (0..n)
            .map(|i| Complex::new((i as f64 * 0.37).sin(), (i as f64 * 0.11).cos()))
            .collect();
        let mut a = orig.clone();
        fft_forward(&mut a);
        fft_inverse(&mut a);
        for (x, y) in a.iter().zip(&orig) {
            assert!(close(*x, *y, 1e-9));
        }
    }

    #[test]
    fn matches_naive_dft() {
        let n = 16;
        let x: Vec<Complex> = (0..n)
            .map(|i| Complex::new(i as f64, (i * i) as f64 * 0.1))
            .collect();
        let mut fast = x.clone();
        fft_forward(&mut fast);
        for k in 0..n {
            let mut acc = Complex::zero();
            for (j, &xj) in x.iter().enumerate() {
                let ang = -2.0 * std::f64::consts::PI * (j * k) as f64 / n as f64;
                acc += xj * Complex::from_angle(ang);
            }
            assert!(close(fast[k], acc, 1e-9), "bin {k}");
        }
    }

    #[test]
    fn parseval_energy_preserved() {
        let n = 64;
        let x: Vec<Complex> = (0..n)
            .map(|i| Complex::new((i as f64).sqrt(), 0.0))
            .collect();
        let time_energy: f64 = x.iter().map(|c| c.norm_sqr()).sum();
        let mut f = x.clone();
        fft_forward(&mut f);
        let freq_energy: f64 = f.iter().map(|c| c.norm_sqr()).sum::<f64>() / n as f64;
        assert!((time_energy - freq_energy).abs() < 1e-9 * time_energy.max(1.0));
    }

    #[test]
    fn complex_arithmetic_identities() {
        let a = Complex::new(3.0, -4.0);
        assert!((a.abs() - 5.0).abs() < 1e-12);
        assert!(close(a * a.conj(), Complex::new(25.0, 0.0), 1e-12));
        assert!(close(a + (-a), Complex::zero(), 1e-12));
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_non_power_of_two() {
        let mut a = vec![Complex::zero(); 3];
        fft_forward(&mut a);
    }
}
