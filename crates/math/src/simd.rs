//! Runtime-dispatched SIMD backends for the Harvey lazy NTT butterflies and
//! the dyadic coefficient-wise ops.
//!
//! This is the **only** module in the workspace that contains `unsafe`
//! code, and every unsafe token in it is one of exactly two shapes:
//!
//! 1. an unaligned vector load/store through a length-checked slice
//!    pointer (`_mm256_loadu_si256` / `vld1q_u64` and their stores), and
//! 2. a call from safe dispatch code into a `#[target_feature]` function,
//!    guarded by the one-time runtime CPU detection below.
//!
//! All lane arithmetic uses the safe-intrinsics-in-`target_feature`
//! rules (Rust ≥ 1.87). The crate root is `#![deny(unsafe_code)]` and this
//! module opts out locally; `choco-lint` pins the exact unsafe token count
//! in `lint.toml` (UNSAFE001/UNSAFE002) so any new unsafe site fails CI
//! until it is reviewed.
//!
//! # Bit-identical by construction
//!
//! Every vector kernel performs the *same* integer operations as its
//! scalar twin in [`crate::modops`] / [`crate::ntt`] — Shoup high-half
//! multiplies, wrapping low-half multiplies, conditional subtractions —
//! just four (AVX2) or two (NEON) lanes at a time. Modular arithmetic on
//! `u64` is exact, so the results are bit-identical, not merely
//! numerically close; the property suite in `crates/math/tests/prop_math.rs`
//! and the `CHOCO_SIMD=0/1` CI matrix enforce this.
//!
//! # Dispatch model
//!
//! [`backend`] resolves once per process (`OnceLock`): the `CHOCO_SIMD`
//! environment variable is consulted first (`0`/`scalar` forces scalar; a
//! backend name — `avx2`, `avx512`, `neon` — forces that backend when the
//! CPU supports it; `1` or unset allows the default), then CPU features
//! are detected. Each public op dispatches on the cached backend and
//! returns scalar results through the exact same code path the pre-SIMD
//! library used, so scalar-only hosts see zero behavior change.

// The workspace-wide forbid is relaxed to deny at the choco-math crate
// root precisely so this audited module can opt back in.
#![allow(unsafe_code)]

use crate::modops::{add_mod, mul_mod_shoup, sub_mod};
use std::sync::OnceLock;

/// The vectorization backend selected for this process.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Backend {
    /// Portable scalar code (also the forced `CHOCO_SIMD=0` mode).
    Scalar,
    /// 4×u64 lanes via AVX2 on x86_64.
    Avx2,
    /// 8×u64 lanes via AVX-512 (F+DQ: native 64-bit `vpmullq` and mask
    /// registers) on x86_64.
    Avx512,
    /// 2×u64 lanes via NEON on aarch64.
    Neon,
}

impl Backend {
    /// Stable lowercase name for logs and bench reports.
    pub fn name(self) -> &'static str {
        match self {
            Backend::Scalar => "scalar",
            Backend::Avx2 => "avx2",
            Backend::Avx512 => "avx512",
            Backend::Neon => "neon",
        }
    }

    /// Whether this backend vectorizes (anything but scalar).
    pub fn is_vector(self) -> bool {
        !matches!(self, Backend::Scalar)
    }
}

/// The process-wide backend: detected once, then cached.
pub fn backend() -> Backend {
    static BACKEND: OnceLock<Backend> = OnceLock::new();
    *BACKEND.get_or_init(detect)
}

fn detect() -> Backend {
    let forced = std::env::var("CHOCO_SIMD").ok();
    match forced.as_deref().map(str::trim) {
        Some("0") | Some("scalar") => return Backend::Scalar,
        // A named backend is honored only when the CPU supports it;
        // otherwise detection falls through to the best available (never
        // to an unsupported instruction set).
        Some("avx2") if have_avx2() => return Backend::Avx2,
        Some("avx512") if have_avx512() => return Backend::Avx512,
        Some("neon") if have_neon() => return Backend::Neon,
        // "1", unset, or an unsupported name: use the best available.
        _ => {}
    }
    // AVX2 is deliberately preferred over AVX-512: the Shoup kernels are
    // 64-bit-multiply-bound, `vpmullq` is microcoded on most parts, and
    // 512-bit multiply throughput generally equals 2×256-bit — measured on
    // the dev host the AVX-512 path is slightly *slower* (see DESIGN.md
    // §12). `CHOCO_SIMD=avx512` opts in for hardware where it wins.
    if have_avx2() {
        return Backend::Avx2;
    }
    if have_avx512() {
        return Backend::Avx512;
    }
    if have_neon() {
        return Backend::Neon;
    }
    Backend::Scalar
}

fn have_avx2() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        std::arch::is_x86_feature_detected!("avx2")
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

fn have_avx512() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        std::arch::is_x86_feature_detected!("avx512f")
            && std::arch::is_x86_feature_detected!("avx512dq")
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

fn have_neon() -> bool {
    #[cfg(target_arch = "aarch64")]
    {
        std::arch::is_aarch64_feature_detected!("neon")
    }
    #[cfg(not(target_arch = "aarch64"))]
    {
        false
    }
}

/// Minimum transform size the vector NTT paths accept; smaller inputs
/// (only reachable from unit tests — HE rings start at 1024) fall back to
/// scalar in the caller.
const MIN_VECTOR_N: usize = 8;

/// Vectorized in-place forward lazy NTT (Cooley–Tukey, bit-reversed
/// twiddles, final `[0,4q) → [0,q)` correction folded into the last
/// stage). Returns `false` when no vector backend is active — the caller
/// runs its scalar path instead.
///
/// `a.len()` must be a power of two and equal the twiddle table length.
pub fn ntt_forward_lazy(a: &mut [u64], psi_rev: &[u64], psi_rev_shoup: &[u64], q: u64) -> bool {
    if a.len() < MIN_VECTOR_N {
        return false;
    }
    match backend() {
        #[cfg(target_arch = "x86_64")]
        Backend::Avx512 if a.len() >= 16 => {
            // SAFETY: Backend::Avx512 is only returned after runtime
            // detection confirmed avx512f+avx512dq on this CPU.
            unsafe { avx512::ntt_forward(a, psi_rev, psi_rev_shoup, q) };
            true
        }
        #[cfg(target_arch = "x86_64")]
        Backend::Avx2 | Backend::Avx512 => {
            // SAFETY: both backends imply avx2 was detected at runtime
            // (avx512 is a superset; the length guard above routed only
            // sub-16 inputs here).
            unsafe { avx2::ntt_forward(a, psi_rev, psi_rev_shoup, q) };
            true
        }
        #[cfg(target_arch = "aarch64")]
        Backend::Neon => {
            // SAFETY: Backend::Neon is only returned after runtime
            // detection confirmed the neon feature on this CPU.
            unsafe { neon::ntt_forward(a, psi_rev, psi_rev_shoup, q) };
            true
        }
        _ => false,
    }
}

/// Vectorized in-place inverse lazy NTT (Gentleman–Sande, including the
/// final `1/n` Shoup scaling sweep). Returns `false` when no vector
/// backend is active.
pub fn ntt_inverse_lazy(
    a: &mut [u64],
    inv_psi_rev: &[u64],
    inv_psi_rev_shoup: &[u64],
    n_inv: u64,
    n_inv_shoup: u64,
    q: u64,
) -> bool {
    if a.len() < MIN_VECTOR_N {
        return false;
    }
    match backend() {
        #[cfg(target_arch = "x86_64")]
        Backend::Avx512 if a.len() >= 16 => {
            // SAFETY: Backend::Avx512 is only returned after runtime
            // detection confirmed avx512f+avx512dq on this CPU.
            unsafe {
                avx512::ntt_inverse(a, inv_psi_rev, inv_psi_rev_shoup, n_inv, n_inv_shoup, q)
            };
            true
        }
        #[cfg(target_arch = "x86_64")]
        Backend::Avx2 | Backend::Avx512 => {
            // SAFETY: both backends imply avx2 was detected at runtime.
            unsafe { avx2::ntt_inverse(a, inv_psi_rev, inv_psi_rev_shoup, n_inv, n_inv_shoup, q) };
            true
        }
        #[cfg(target_arch = "aarch64")]
        Backend::Neon => {
            // SAFETY: Backend::Neon is only returned after runtime
            // detection confirmed the neon feature on this CPU.
            unsafe { neon::ntt_inverse(a, inv_psi_rev, inv_psi_rev_shoup, n_inv, n_inv_shoup, q) };
            true
        }
        _ => false,
    }
}

/// `a[i] = add_mod(a[i], b[i], q)` over whole rows, vectorized when a
/// backend is active (scalar fallback built in — callers never dispatch).
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn add_mod_slices(a: &mut [u64], b: &[u64], q: u64) {
    assert_eq!(a.len(), b.len(), "row length mismatch");
    match backend() {
        #[cfg(target_arch = "x86_64")]
        Backend::Avx512 if a.len() >= 8 => {
            // SAFETY: backend detection guards the feature.
            unsafe { avx512::add_mod_slices(a, b, q) }
        }
        #[cfg(target_arch = "x86_64")]
        Backend::Avx2 | Backend::Avx512 if a.len() >= 4 => {
            // SAFETY: backend detection guards the feature (avx512
            // implies avx2).
            unsafe { avx2::add_mod_slices(a, b, q) }
        }
        #[cfg(target_arch = "aarch64")]
        Backend::Neon if a.len() >= 2 => {
            // SAFETY: backend detection guards the feature.
            unsafe { neon::add_mod_slices(a, b, q) }
        }
        _ => {
            for (x, &y) in a.iter_mut().zip(b) {
                *x = add_mod(*x, y, q);
            }
        }
    }
}

/// `a[i] = sub_mod(a[i], b[i], q)` over whole rows (see [`add_mod_slices`]).
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn sub_mod_slices(a: &mut [u64], b: &[u64], q: u64) {
    assert_eq!(a.len(), b.len(), "row length mismatch");
    match backend() {
        #[cfg(target_arch = "x86_64")]
        Backend::Avx512 if a.len() >= 8 => {
            // SAFETY: backend detection guards the feature.
            unsafe { avx512::sub_mod_slices(a, b, q) }
        }
        #[cfg(target_arch = "x86_64")]
        Backend::Avx2 | Backend::Avx512 if a.len() >= 4 => {
            // SAFETY: backend detection guards the feature (avx512
            // implies avx2).
            unsafe { avx2::sub_mod_slices(a, b, q) }
        }
        #[cfg(target_arch = "aarch64")]
        Backend::Neon if a.len() >= 2 => {
            // SAFETY: backend detection guards the feature.
            unsafe { neon::sub_mod_slices(a, b, q) }
        }
        _ => {
            for (x, &y) in a.iter_mut().zip(b) {
                *x = sub_mod(*x, y, q);
            }
        }
    }
}

/// `a[i] = mul_mod_shoup(a[i], s, s_shoup, q)` over a whole row: multiply
/// by one Shoup-precomputed constant (`s < q`). The workhorse of mod-down
/// (`P^{-1}` scaling) and plaintext scaling.
pub fn scalar_mul_shoup_slices(a: &mut [u64], s: u64, s_shoup: u64, q: u64) {
    match backend() {
        #[cfg(target_arch = "x86_64")]
        Backend::Avx512 if a.len() >= 8 => {
            // SAFETY: backend detection guards the feature.
            unsafe { avx512::scalar_mul_shoup_slices(a, s, s_shoup, q) }
        }
        #[cfg(target_arch = "x86_64")]
        Backend::Avx2 | Backend::Avx512 if a.len() >= 4 => {
            // SAFETY: backend detection guards the feature (avx512
            // implies avx2).
            unsafe { avx2::scalar_mul_shoup_slices(a, s, s_shoup, q) }
        }
        #[cfg(target_arch = "aarch64")]
        Backend::Neon if a.len() >= 2 => {
            // SAFETY: backend detection guards the feature.
            unsafe { neon::scalar_mul_shoup_slices(a, s, s_shoup, q) }
        }
        _ => {
            for x in a.iter_mut() {
                *x = mul_mod_shoup(*x, s, s_shoup, q);
            }
        }
    }
}

/// `a[i] = mul_mod_shoup(a[i], b[i], b_shoup[i], q)`: the dyadic
/// (element-wise) product against an operand with per-coefficient Shoup
/// precomputation — e.g. a cached NTT-domain plaintext.
///
/// # Panics
///
/// Panics if the slice lengths disagree.
pub fn dyadic_mul_shoup_slices(a: &mut [u64], b: &[u64], b_shoup: &[u64], q: u64) {
    assert_eq!(a.len(), b.len(), "row length mismatch");
    assert_eq!(a.len(), b_shoup.len(), "shoup row length mismatch");
    match backend() {
        #[cfg(target_arch = "x86_64")]
        Backend::Avx512 if a.len() >= 8 => {
            // SAFETY: backend detection guards the feature.
            unsafe { avx512::dyadic_mul_shoup_slices(a, b, b_shoup, q) }
        }
        #[cfg(target_arch = "x86_64")]
        Backend::Avx2 | Backend::Avx512 if a.len() >= 4 => {
            // SAFETY: backend detection guards the feature (avx512
            // implies avx2).
            unsafe { avx2::dyadic_mul_shoup_slices(a, b, b_shoup, q) }
        }
        #[cfg(target_arch = "aarch64")]
        Backend::Neon if a.len() >= 2 => {
            // SAFETY: backend detection guards the feature.
            unsafe { neon::dyadic_mul_shoup_slices(a, b, b_shoup, q) }
        }
        _ => {
            for ((x, &y), &ys) in a.iter_mut().zip(b).zip(b_shoup) {
                *x = mul_mod_shoup(*x, y, ys, q);
            }
        }
    }
}

#[cfg(target_arch = "x86_64")]
mod avx2 {
    //! AVX2 kernels: 4×u64 lanes. x86 has no 64×64 vector multiply below
    //! AVX-512DQ, so the 128-bit products are assembled from four
    //! `vpmuludq` 32×32→64 partials — still ~2.5 hardware multiplies per
    //! butterfly multiply versus 3 scalar `mul`s, with the branchy
    //! conditional subtractions turned into straight-line mask arithmetic.
    //!
    //! Signed comparisons (`vpcmpgtq`) stand in for the unsigned compares
    //! of the scalar code: every value here is below `4q < 2^63`, where
    //! the two orders agree.

    use super::{add_mod, mul_mod_shoup, sub_mod};
    use core::arch::x86_64::*;

    #[target_feature(enable = "avx2")]
    #[inline]
    fn load(src: &[u64]) -> __m256i {
        debug_assert!(src.len() >= 4);
        // SAFETY: the slice holds at least four elements (checked above in
        // debug builds, by construction in callers); unaligned load.
        unsafe { _mm256_loadu_si256(src.as_ptr().cast()) }
    }

    #[target_feature(enable = "avx2")]
    #[inline]
    fn store(dst: &mut [u64], v: __m256i) {
        debug_assert!(dst.len() >= 4);
        // SAFETY: the slice holds at least four elements; unaligned store.
        unsafe { _mm256_storeu_si256(dst.as_mut_ptr().cast(), v) }
    }

    /// High 64 bits of the unsigned 64×64 product, lane-wise.
    #[target_feature(enable = "avx2")]
    #[inline]
    fn mulhi_u64(a: __m256i, b: __m256i) -> __m256i {
        let lo32 = _mm256_set1_epi64x(0xFFFF_FFFF);
        let a_hi = _mm256_srli_epi64::<32>(a);
        let b_hi = _mm256_srli_epi64::<32>(b);
        let ll = _mm256_mul_epu32(a, b);
        let lh = _mm256_mul_epu32(a, b_hi);
        let hl = _mm256_mul_epu32(a_hi, b);
        let hh = _mm256_mul_epu32(a_hi, b_hi);
        // carry out of the middle 32-bit column: at most 3·(2^32−1), so the
        // column sum never overflows a u64 lane.
        let cross = _mm256_add_epi64(
            _mm256_add_epi64(_mm256_srli_epi64::<32>(ll), _mm256_and_si256(hl, lo32)),
            _mm256_and_si256(lh, lo32),
        );
        _mm256_add_epi64(
            _mm256_add_epi64(hh, _mm256_srli_epi64::<32>(cross)),
            _mm256_add_epi64(_mm256_srli_epi64::<32>(hl), _mm256_srli_epi64::<32>(lh)),
        )
    }

    /// Low 64 bits of the product (wrapping), lane-wise.
    #[target_feature(enable = "avx2")]
    #[inline]
    fn mullo_u64(a: __m256i, b: __m256i) -> __m256i {
        let a_hi = _mm256_srli_epi64::<32>(a);
        let b_hi = _mm256_srli_epi64::<32>(b);
        let ll = _mm256_mul_epu32(a, b);
        let cross = _mm256_add_epi64(_mm256_mul_epu32(a, b_hi), _mm256_mul_epu32(a_hi, b));
        _mm256_add_epi64(ll, _mm256_slli_epi64::<32>(cross))
    }

    /// [`crate::modops::mul_mod_shoup_lazy`] lane-wise: result in `[0, 2q)`.
    #[target_feature(enable = "avx2")]
    #[inline]
    fn shoup_lazy(a: __m256i, b: __m256i, b_shoup: __m256i, q: __m256i) -> __m256i {
        let hi = mulhi_u64(a, b_shoup);
        _mm256_sub_epi64(mullo_u64(a, b), mullo_u64(hi, q))
    }

    /// `if x >= bound { x - bound } else { x }` lane-wise. Valid while
    /// `x < 2^63` and `bound < 2^63` (signed compare).
    #[target_feature(enable = "avx2")]
    #[inline]
    fn csub(x: __m256i, bound: __m256i) -> __m256i {
        let lt = _mm256_cmpgt_epi64(bound, x);
        _mm256_sub_epi64(x, _mm256_andnot_si256(lt, bound))
    }

    /// [`crate::modops::reduce_4q`] lane-wise.
    #[target_feature(enable = "avx2")]
    #[inline]
    fn reduce_4q_v(x: __m256i, two_q: __m256i, q: __m256i) -> __m256i {
        csub(csub(x, two_q), q)
    }

    /// Two broadcast pairs: `[s0, s0, s1, s1]` from a 2-element slice.
    #[target_feature(enable = "avx2")]
    #[inline]
    fn spread2(s: &[u64]) -> __m256i {
        debug_assert!(s.len() >= 2);
        _mm256_set_epi64x(s[1] as i64, s[1] as i64, s[0] as i64, s[0] as i64)
    }

    /// Forward lazy NTT with the final correction folded into the last
    /// (span-1) stage. `a.len()` is a power of two ≥ 8.
    #[target_feature(enable = "avx2")]
    pub fn ntt_forward(a: &mut [u64], psi_rev: &[u64], psi_rev_shoup: &[u64], q: u64) {
        let n = a.len();
        debug_assert!(n >= 8 && n.is_power_of_two());
        let qv = _mm256_set1_epi64x(q as i64);
        let two_q = _mm256_set1_epi64x((2 * q) as i64);
        let mut m = 1usize;
        let mut t = n >> 1;
        // Stages with butterfly span >= 4: one broadcast twiddle per block,
        // contiguous 4-lane loads on both block halves.
        while t >= 4 {
            for i in 0..m {
                let j1 = 2 * i * t;
                let s = _mm256_set1_epi64x(psi_rev[m + i] as i64);
                let s_sh = _mm256_set1_epi64x(psi_rev_shoup[m + i] as i64);
                // Exact-chunk iteration over the two block halves: the
                // compiler proves every lane access in range, so the loop
                // body is branch-free. Two independent butterflies per
                // 8-chunk keep the long Shoup multiply chains overlapped.
                let (lo_half, hi_half) = a[j1..j1 + 2 * t].split_at_mut(t);
                let (l8, l_rem) = lo_half.as_chunks_mut::<8>();
                let (h8, h_rem) = hi_half.as_chunks_mut::<8>();
                for (lc, hc) in l8.iter_mut().zip(h8.iter_mut()) {
                    let u0 = csub(load(&lc[..4]), two_q);
                    let u1 = csub(load(&lc[4..]), two_q);
                    let v0 = shoup_lazy(load(&hc[..4]), s, s_sh, qv);
                    let v1 = shoup_lazy(load(&hc[4..]), s, s_sh, qv);
                    store(&mut lc[..4], _mm256_add_epi64(u0, v0));
                    store(&mut lc[4..], _mm256_add_epi64(u1, v1));
                    store(
                        &mut hc[..4],
                        _mm256_add_epi64(u0, _mm256_sub_epi64(two_q, v0)),
                    );
                    store(
                        &mut hc[4..],
                        _mm256_add_epi64(u1, _mm256_sub_epi64(two_q, v1)),
                    );
                }
                // The t == 4 stage leaves one 4-lane remainder per half.
                let (l4, _) = l_rem.as_chunks_mut::<4>();
                let (h4, _) = h_rem.as_chunks_mut::<4>();
                for (lc, hc) in l4.iter_mut().zip(h4.iter_mut()) {
                    let u = csub(load(lc), two_q);
                    let v = shoup_lazy(load(hc), s, s_sh, qv);
                    store(lc, _mm256_add_epi64(u, v));
                    store(hc, _mm256_add_epi64(u, _mm256_sub_epi64(two_q, v)));
                }
            }
            m <<= 1;
            t >>= 1;
        }
        // Span-2 stage: blocks are [u0 u1 v0 v1]; two blocks per iteration,
        // gathered into u/v vectors with 128-bit-lane permutes.
        debug_assert_eq!(t, 2);
        {
            let (blocks, _) = a.as_chunks_mut::<8>();
            let (tw, _) = psi_rev[m..2 * m].as_chunks::<2>();
            let (tw_sh, _) = psi_rev_shoup[m..2 * m].as_chunks::<2>();
            for ((block, s2), s2_sh) in blocks.iter_mut().zip(tw).zip(tw_sh) {
                let v0 = load(&block[..4]);
                let v1 = load(&block[4..]);
                let u = _mm256_permute2x128_si256::<0x20>(v0, v1);
                let v = _mm256_permute2x128_si256::<0x31>(v0, v1);
                let s = spread2(s2);
                let s_sh = spread2(s2_sh);
                let uu = csub(u, two_q);
                let vv = shoup_lazy(v, s, s_sh, qv);
                let lo = _mm256_add_epi64(uu, vv);
                let hi = _mm256_add_epi64(uu, _mm256_sub_epi64(two_q, vv));
                store(&mut block[..4], _mm256_permute2x128_si256::<0x20>(lo, hi));
                store(&mut block[4..], _mm256_permute2x128_si256::<0x31>(lo, hi));
            }
            m <<= 1;
        }
        // Span-1 stage, fused with the [0,4q) -> [0,q) correction: pairs are
        // deinterleaved with unpack/permute so the last pass over the array
        // both finishes the transform and canonicalizes.
        {
            let (blocks, _) = a.as_chunks_mut::<8>();
            let (tw, _) = psi_rev[m..2 * m].as_chunks::<4>();
            let (tw_sh, _) = psi_rev_shoup[m..2 * m].as_chunks::<4>();
            for ((block, s4), s4_sh) in blocks.iter_mut().zip(tw).zip(tw_sh) {
                let v0 = load(&block[..4]);
                let v1 = load(&block[4..]);
                let e = _mm256_unpacklo_epi64(v0, v1); // [x0 x4 x2 x6]
                let o = _mm256_unpackhi_epi64(v0, v1); // [x1 x5 x3 x7]
                let u_vec = _mm256_permute4x64_epi64::<0b1101_1000>(e); // evens
                let v_vec = _mm256_permute4x64_epi64::<0b1101_1000>(o); // odds
                let s = load(s4);
                let s_sh = load(s4_sh);
                let uu = csub(u_vec, two_q);
                let vv = shoup_lazy(v_vec, s, s_sh, qv);
                let lo = reduce_4q_v(_mm256_add_epi64(uu, vv), two_q, qv);
                let hi = reduce_4q_v(_mm256_add_epi64(uu, _mm256_sub_epi64(two_q, vv)), two_q, qv);
                let lp = _mm256_permute4x64_epi64::<0b1101_1000>(lo); // [y0 y4 y2 y6]
                let hp = _mm256_permute4x64_epi64::<0b1101_1000>(hi); // [y1 y5 y3 y7]
                store(&mut block[..4], _mm256_unpacklo_epi64(lp, hp));
                store(&mut block[4..], _mm256_unpackhi_epi64(lp, hp));
            }
        }
    }

    /// Inverse lazy NTT including the `1/n` scaling sweep.
    #[target_feature(enable = "avx2")]
    pub fn ntt_inverse(
        a: &mut [u64],
        inv_psi_rev: &[u64],
        inv_psi_rev_shoup: &[u64],
        n_inv: u64,
        n_inv_shoup: u64,
        q: u64,
    ) {
        let n = a.len();
        debug_assert!(n >= 8 && n.is_power_of_two());
        let qv = _mm256_set1_epi64x(q as i64);
        let two_q = _mm256_set1_epi64x((2 * q) as i64);
        // Span-1 stage (h = n/2): deinterleave pairs.
        {
            let h = n >> 1;
            let (blocks, _) = a.as_chunks_mut::<8>();
            let (tw, _) = inv_psi_rev[h..2 * h].as_chunks::<4>();
            let (tw_sh, _) = inv_psi_rev_shoup[h..2 * h].as_chunks::<4>();
            for ((block, s4), s4_sh) in blocks.iter_mut().zip(tw).zip(tw_sh) {
                let v0 = load(&block[..4]);
                let v1 = load(&block[4..]);
                let e = _mm256_unpacklo_epi64(v0, v1);
                let o = _mm256_unpackhi_epi64(v0, v1);
                let u_vec = _mm256_permute4x64_epi64::<0b1101_1000>(e);
                let v_vec = _mm256_permute4x64_epi64::<0b1101_1000>(o);
                let s = load(s4);
                let s_sh = load(s4_sh);
                let sum = csub(_mm256_add_epi64(u_vec, v_vec), two_q);
                let dif = shoup_lazy(
                    _mm256_sub_epi64(_mm256_add_epi64(u_vec, two_q), v_vec),
                    s,
                    s_sh,
                    qv,
                );
                let lp = _mm256_permute4x64_epi64::<0b1101_1000>(sum);
                let hp = _mm256_permute4x64_epi64::<0b1101_1000>(dif);
                store(&mut block[..4], _mm256_unpacklo_epi64(lp, hp));
                store(&mut block[4..], _mm256_unpackhi_epi64(lp, hp));
            }
        }
        // Span-2 stage (h = n/4): 128-bit-lane permute gathers.
        {
            let h = n >> 2;
            let (blocks, _) = a.as_chunks_mut::<8>();
            let (tw, _) = inv_psi_rev[h..2 * h].as_chunks::<2>();
            let (tw_sh, _) = inv_psi_rev_shoup[h..2 * h].as_chunks::<2>();
            for ((block, s2), s2_sh) in blocks.iter_mut().zip(tw).zip(tw_sh) {
                let v0 = load(&block[..4]);
                let v1 = load(&block[4..]);
                let u = _mm256_permute2x128_si256::<0x20>(v0, v1);
                let v = _mm256_permute2x128_si256::<0x31>(v0, v1);
                let s = spread2(s2);
                let s_sh = spread2(s2_sh);
                let sum = csub(_mm256_add_epi64(u, v), two_q);
                let dif = shoup_lazy(_mm256_sub_epi64(_mm256_add_epi64(u, two_q), v), s, s_sh, qv);
                store(&mut block[..4], _mm256_permute2x128_si256::<0x20>(sum, dif));
                store(&mut block[4..], _mm256_permute2x128_si256::<0x31>(sum, dif));
            }
        }
        // Stages with span >= 4, except the last (h == 1) stage.
        let mut t = 4usize;
        let mut h = n >> 3;
        while h >= 2 {
            let mut j1 = 0;
            for i in 0..h {
                let s = _mm256_set1_epi64x(inv_psi_rev[h + i] as i64);
                let s_sh = _mm256_set1_epi64x(inv_psi_rev_shoup[h + i] as i64);
                // Exact-chunk iteration (see the forward transform); two
                // butterflies per 8-chunk keep the multiplier busy.
                let (lo_half, hi_half) = a[j1..j1 + 2 * t].split_at_mut(t);
                let (l8, l_rem) = lo_half.as_chunks_mut::<8>();
                let (h8, h_rem) = hi_half.as_chunks_mut::<8>();
                for (lc, hc) in l8.iter_mut().zip(h8.iter_mut()) {
                    let u0 = load(&lc[..4]);
                    let u1 = load(&lc[4..]);
                    let v0 = load(&hc[..4]);
                    let v1 = load(&hc[4..]);
                    let sum0 = csub(_mm256_add_epi64(u0, v0), two_q);
                    let sum1 = csub(_mm256_add_epi64(u1, v1), two_q);
                    let dif0 = shoup_lazy(
                        _mm256_sub_epi64(_mm256_add_epi64(u0, two_q), v0),
                        s,
                        s_sh,
                        qv,
                    );
                    let dif1 = shoup_lazy(
                        _mm256_sub_epi64(_mm256_add_epi64(u1, two_q), v1),
                        s,
                        s_sh,
                        qv,
                    );
                    store(&mut lc[..4], sum0);
                    store(&mut lc[4..], sum1);
                    store(&mut hc[..4], dif0);
                    store(&mut hc[4..], dif1);
                }
                let (l4, _) = l_rem.as_chunks_mut::<4>();
                let (h4, _) = h_rem.as_chunks_mut::<4>();
                for (lc, hc) in l4.iter_mut().zip(h4.iter_mut()) {
                    let u = load(lc);
                    let v = load(hc);
                    let sum = csub(_mm256_add_epi64(u, v), two_q);
                    let dif =
                        shoup_lazy(_mm256_sub_epi64(_mm256_add_epi64(u, two_q), v), s, s_sh, qv);
                    store(lc, sum);
                    store(hc, dif);
                }
                j1 += 2 * t;
            }
            t <<= 1;
            h >>= 1;
        }
        // Last stage (h == 1) fused with the 1/n scaling: scale the sum
        // output by n_inv and the difference output by s·n_inv, both with
        // full Shoup reduction, which skips the separate scaling sweep and
        // its extra multiply on every difference lane. Bit-identical to the
        // two-pass form because canonical residues are unique.
        {
            debug_assert_eq!(t, n >> 1);
            let s = inv_psi_rev[1];
            let s_ninv = crate::modops::mul_mod(s, n_inv, q);
            let s_ninv_sh = crate::modops::shoup_precompute(s_ninv, q);
            let sv = _mm256_set1_epi64x(s_ninv as i64);
            let sv_sh = _mm256_set1_epi64x(s_ninv_sh as i64);
            let ni = _mm256_set1_epi64x(n_inv as i64);
            let ni_sh = _mm256_set1_epi64x(n_inv_shoup as i64);
            let (lo_half, hi_half) = a.split_at_mut(t);
            let (lcs, _) = lo_half.as_chunks_mut::<4>();
            let (hcs, _) = hi_half.as_chunks_mut::<4>();
            for (lc, hc) in lcs.iter_mut().zip(hcs.iter_mut()) {
                let u = load(lc);
                let v = load(hc);
                let sum = csub(_mm256_add_epi64(u, v), two_q);
                let lo = shoup_lazy(sum, ni, ni_sh, qv);
                let hi = shoup_lazy(
                    _mm256_sub_epi64(_mm256_add_epi64(u, two_q), v),
                    sv,
                    sv_sh,
                    qv,
                );
                store(lc, csub(lo, qv));
                store(hc, csub(hi, qv));
            }
        }
    }

    /// Vector body + scalar tail for `add_mod` over rows.
    #[target_feature(enable = "avx2")]
    pub fn add_mod_slices(a: &mut [u64], b: &[u64], q: u64) {
        let qv = _mm256_set1_epi64x(q as i64);
        let len4 = a.len() & !3;
        let mut j = 0;
        while j < len4 {
            let s = _mm256_add_epi64(load(&a[j..j + 4]), load(&b[j..j + 4]));
            store(&mut a[j..j + 4], csub(s, qv));
            j += 4;
        }
        for (x, &y) in a[len4..].iter_mut().zip(&b[len4..]) {
            *x = add_mod(*x, y, q);
        }
    }

    /// Vector body + scalar tail for `sub_mod` over rows.
    #[target_feature(enable = "avx2")]
    pub fn sub_mod_slices(a: &mut [u64], b: &[u64], q: u64) {
        let qv = _mm256_set1_epi64x(q as i64);
        let len4 = a.len() & !3;
        let mut j = 0;
        while j < len4 {
            let x = load(&a[j..j + 4]);
            let y = load(&b[j..j + 4]);
            // borrow mask: add q back where y > x.
            let borrow = _mm256_cmpgt_epi64(y, x);
            let d = _mm256_sub_epi64(x, y);
            store(
                &mut a[j..j + 4],
                _mm256_add_epi64(d, _mm256_and_si256(borrow, qv)),
            );
            j += 4;
        }
        for (x, &y) in a[len4..].iter_mut().zip(&b[len4..]) {
            *x = sub_mod(*x, y, q);
        }
    }

    /// Vector body + scalar tail for constant Shoup multiplication.
    #[target_feature(enable = "avx2")]
    pub fn scalar_mul_shoup_slices(a: &mut [u64], s: u64, s_shoup: u64, q: u64) {
        let qv = _mm256_set1_epi64x(q as i64);
        let sv = _mm256_set1_epi64x(s as i64);
        let sv_sh = _mm256_set1_epi64x(s_shoup as i64);
        let len4 = a.len() & !3;
        let mut j = 0;
        while j < len4 {
            let r = shoup_lazy(load(&a[j..j + 4]), sv, sv_sh, qv);
            store(&mut a[j..j + 4], csub(r, qv));
            j += 4;
        }
        for x in a[len4..].iter_mut() {
            *x = mul_mod_shoup(*x, s, s_shoup, q);
        }
    }

    /// Vector body + scalar tail for the per-lane-Shoup dyadic product.
    #[target_feature(enable = "avx2")]
    pub fn dyadic_mul_shoup_slices(a: &mut [u64], b: &[u64], b_shoup: &[u64], q: u64) {
        let qv = _mm256_set1_epi64x(q as i64);
        let len4 = a.len() & !3;
        let mut j = 0;
        while j < len4 {
            let r = shoup_lazy(
                load(&a[j..j + 4]),
                load(&b[j..j + 4]),
                load(&b_shoup[j..j + 4]),
                qv,
            );
            store(&mut a[j..j + 4], csub(r, qv));
            j += 4;
        }
        for ((x, &y), &ys) in a[len4..].iter_mut().zip(&b[len4..]).zip(&b_shoup[len4..]) {
            *x = mul_mod_shoup(*x, y, ys, q);
        }
    }
}

#[cfg(target_arch = "x86_64")]
mod avx512 {
    //! AVX-512 kernels: 8×u64 lanes. Unlike AVX2, the DQ extension gives a
    //! native 64-bit low multiply (`vpmullq`), mask registers turn the
    //! conditional subtractions into single masked ops, and
    //! `vpermt2q` gathers arbitrary lane pairs across two vectors — so the
    //! short-span butterfly stages need one shuffle per operand instead of
    //! an unpack/permute dance. Only the 128-bit-product high half still
    //! needs the four-partial `vpmuludq` assembly.

    use super::{add_mod, mul_mod_shoup, sub_mod};
    use core::arch::x86_64::*;

    #[target_feature(enable = "avx512f,avx512dq")]
    #[inline]
    fn load(src: &[u64]) -> __m512i {
        debug_assert!(src.len() >= 8);
        // SAFETY: the slice holds at least eight elements; unaligned load.
        unsafe { _mm512_loadu_si512(src.as_ptr().cast()) }
    }

    #[target_feature(enable = "avx512f,avx512dq")]
    #[inline]
    fn store(dst: &mut [u64], v: __m512i) {
        debug_assert!(dst.len() >= 8);
        // SAFETY: the slice holds at least eight elements; unaligned store.
        unsafe { _mm512_storeu_si512(dst.as_mut_ptr().cast(), v) }
    }

    /// Loads two twiddles into lanes 0–1 (upper lanes zero).
    #[target_feature(enable = "avx512f,avx512dq")]
    #[inline]
    fn load2(src: &[u64]) -> __m512i {
        debug_assert!(src.len() >= 2);
        // SAFETY: masked load touches only the two unmasked lanes.
        unsafe { _mm512_maskz_loadu_epi64(0b0000_0011, src.as_ptr().cast()) }
    }

    /// Loads four twiddles into lanes 0–3 (upper lanes zero).
    #[target_feature(enable = "avx512f,avx512dq")]
    #[inline]
    fn load4(src: &[u64]) -> __m512i {
        debug_assert!(src.len() >= 4);
        // SAFETY: masked load touches only the four unmasked lanes.
        unsafe { _mm512_maskz_loadu_epi64(0b0000_1111, src.as_ptr().cast()) }
    }

    /// Lane-index vector for `vpermt2q` gathers (lane 0 first).
    #[target_feature(enable = "avx512f,avx512dq")]
    #[inline]
    #[allow(clippy::too_many_arguments)]
    fn idx(a: i64, b: i64, c: i64, d: i64, e: i64, f: i64, g: i64, h: i64) -> __m512i {
        _mm512_setr_epi64(a, b, c, d, e, f, g, h)
    }

    /// High 64 bits of the unsigned 64×64 product, lane-wise.
    #[target_feature(enable = "avx512f,avx512dq")]
    #[inline]
    fn mulhi_u64(a: __m512i, b: __m512i) -> __m512i {
        let lo32 = _mm512_set1_epi64(0xFFFF_FFFF);
        let a_hi = _mm512_srli_epi64::<32>(a);
        let b_hi = _mm512_srli_epi64::<32>(b);
        let ll = _mm512_mul_epu32(a, b);
        let lh = _mm512_mul_epu32(a, b_hi);
        let hl = _mm512_mul_epu32(a_hi, b);
        let hh = _mm512_mul_epu32(a_hi, b_hi);
        let cross = _mm512_add_epi64(
            _mm512_add_epi64(_mm512_srli_epi64::<32>(ll), _mm512_and_si512(hl, lo32)),
            _mm512_and_si512(lh, lo32),
        );
        _mm512_add_epi64(
            _mm512_add_epi64(hh, _mm512_srli_epi64::<32>(cross)),
            _mm512_add_epi64(_mm512_srli_epi64::<32>(hl), _mm512_srli_epi64::<32>(lh)),
        )
    }

    /// `mul_mod_shoup_lazy` lane-wise: result in `[0, 2q)`. The low halves
    /// use the native `vpmullq`.
    #[target_feature(enable = "avx512f,avx512dq")]
    #[inline]
    fn shoup_lazy(a: __m512i, b: __m512i, b_shoup: __m512i, q: __m512i) -> __m512i {
        let hi = mulhi_u64(a, b_shoup);
        _mm512_sub_epi64(_mm512_mullo_epi64(a, b), _mm512_mullo_epi64(hi, q))
    }

    /// `if x >= bound { x - bound } else { x }` lane-wise via a mask
    /// (native unsigned compare — no signed-range trick needed).
    #[target_feature(enable = "avx512f,avx512dq")]
    #[inline]
    fn csub(x: __m512i, bound: __m512i) -> __m512i {
        let ge = _mm512_cmpge_epu64_mask(x, bound);
        _mm512_mask_sub_epi64(x, ge, x, bound)
    }

    /// `reduce_4q` lane-wise.
    #[target_feature(enable = "avx512f,avx512dq")]
    #[inline]
    fn reduce_4q_v(x: __m512i, two_q: __m512i, q: __m512i) -> __m512i {
        csub(csub(x, two_q), q)
    }

    /// Forward lazy NTT with the final correction folded into the last
    /// (span-1) stage. `a.len()` is a power of two ≥ 16.
    #[target_feature(enable = "avx512f,avx512dq")]
    pub fn ntt_forward(a: &mut [u64], psi_rev: &[u64], psi_rev_shoup: &[u64], q: u64) {
        let n = a.len();
        debug_assert!(n >= 16 && n.is_power_of_two());
        let qv = _mm512_set1_epi64(q as i64);
        let two_q = _mm512_set1_epi64((2 * q) as i64);
        let mut m = 1usize;
        let mut t = n >> 1;
        // Stages with span >= 8: contiguous 8-lane loads. Each block is
        // split once and walked with exact-chunk iterators so the inner
        // loop carries no per-iteration bounds checks.
        while t >= 8 {
            for i in 0..m {
                let j1 = 2 * i * t;
                let s = _mm512_set1_epi64(psi_rev[m + i] as i64);
                let s_sh = _mm512_set1_epi64(psi_rev_shoup[m + i] as i64);
                let (lo_half, hi_half) = a[j1..j1 + 2 * t].split_at_mut(t);
                let (lcs, _) = lo_half.as_chunks_mut::<8>();
                let (hcs, _) = hi_half.as_chunks_mut::<8>();
                for (lc, hc) in lcs.iter_mut().zip(hcs.iter_mut()) {
                    let u = csub(load(lc), two_q);
                    let v = shoup_lazy(load(hc), s, s_sh, qv);
                    store(lc, _mm512_add_epi64(u, v));
                    store(hc, _mm512_add_epi64(u, _mm512_sub_epi64(two_q, v)));
                }
            }
            m <<= 1;
            t >>= 1;
        }
        // Span-4 stage: two 8-element blocks [u(4) v(4)] per 16-chunk.
        debug_assert_eq!(t, 4);
        {
            let gather_u = idx(0, 1, 2, 3, 8, 9, 10, 11);
            let gather_v = idx(4, 5, 6, 7, 12, 13, 14, 15);
            let spread = idx(0, 0, 0, 0, 1, 1, 1, 1);
            let (blocks, _) = a.as_chunks_mut::<16>();
            let (tw, _) = psi_rev[m..2 * m].as_chunks::<2>();
            let (tw_sh, _) = psi_rev_shoup[m..2 * m].as_chunks::<2>();
            for ((block, s2), s2_sh) in blocks.iter_mut().zip(tw).zip(tw_sh) {
                let v0 = load(&block[..8]);
                let v1 = load(&block[8..]);
                let u = _mm512_permutex2var_epi64(v0, gather_u, v1);
                let v = _mm512_permutex2var_epi64(v0, gather_v, v1);
                let s = _mm512_permutexvar_epi64(spread, load2(s2));
                let s_sh = _mm512_permutexvar_epi64(spread, load2(s2_sh));
                let uu = csub(u, two_q);
                let vv = shoup_lazy(v, s, s_sh, qv);
                let lo = _mm512_add_epi64(uu, vv);
                let hi = _mm512_add_epi64(uu, _mm512_sub_epi64(two_q, vv));
                store(&mut block[..8], _mm512_permutex2var_epi64(lo, gather_u, hi));
                store(&mut block[8..], _mm512_permutex2var_epi64(lo, gather_v, hi));
            }
            m <<= 1;
        }
        // Span-2 stage: four 4-element blocks [u(2) v(2)] per 16-chunk.
        {
            let gather_u = idx(0, 1, 4, 5, 8, 9, 12, 13);
            let gather_v = idx(2, 3, 6, 7, 10, 11, 14, 15);
            let pack_lo = idx(0, 1, 8, 9, 2, 3, 10, 11);
            let pack_hi = idx(4, 5, 12, 13, 6, 7, 14, 15);
            let spread = idx(0, 0, 1, 1, 2, 2, 3, 3);
            let (blocks, _) = a.as_chunks_mut::<16>();
            let (tw, _) = psi_rev[m..2 * m].as_chunks::<4>();
            let (tw_sh, _) = psi_rev_shoup[m..2 * m].as_chunks::<4>();
            for ((block, s4), s4_sh) in blocks.iter_mut().zip(tw).zip(tw_sh) {
                let v0 = load(&block[..8]);
                let v1 = load(&block[8..]);
                let u = _mm512_permutex2var_epi64(v0, gather_u, v1);
                let v = _mm512_permutex2var_epi64(v0, gather_v, v1);
                let s = _mm512_permutexvar_epi64(spread, load4(s4));
                let s_sh = _mm512_permutexvar_epi64(spread, load4(s4_sh));
                let uu = csub(u, two_q);
                let vv = shoup_lazy(v, s, s_sh, qv);
                let lo = _mm512_add_epi64(uu, vv);
                let hi = _mm512_add_epi64(uu, _mm512_sub_epi64(two_q, vv));
                store(&mut block[..8], _mm512_permutex2var_epi64(lo, pack_lo, hi));
                store(&mut block[8..], _mm512_permutex2var_epi64(lo, pack_hi, hi));
            }
            m <<= 1;
        }
        // Span-1 stage, fused with the [0,4q) -> [0,q) correction.
        {
            let gather_u = idx(0, 2, 4, 6, 8, 10, 12, 14);
            let gather_v = idx(1, 3, 5, 7, 9, 11, 13, 15);
            let pack_lo = idx(0, 8, 1, 9, 2, 10, 3, 11);
            let pack_hi = idx(4, 12, 5, 13, 6, 14, 7, 15);
            let (blocks, _) = a.as_chunks_mut::<16>();
            let (tw, _) = psi_rev[m..2 * m].as_chunks::<8>();
            let (tw_sh, _) = psi_rev_shoup[m..2 * m].as_chunks::<8>();
            for ((block, s8), s8_sh) in blocks.iter_mut().zip(tw).zip(tw_sh) {
                let v0 = load(&block[..8]);
                let v1 = load(&block[8..]);
                let u = _mm512_permutex2var_epi64(v0, gather_u, v1);
                let v = _mm512_permutex2var_epi64(v0, gather_v, v1);
                let s = load(s8);
                let s_sh = load(s8_sh);
                let uu = csub(u, two_q);
                let vv = shoup_lazy(v, s, s_sh, qv);
                let lo = reduce_4q_v(_mm512_add_epi64(uu, vv), two_q, qv);
                let hi = reduce_4q_v(_mm512_add_epi64(uu, _mm512_sub_epi64(two_q, vv)), two_q, qv);
                store(&mut block[..8], _mm512_permutex2var_epi64(lo, pack_lo, hi));
                store(&mut block[8..], _mm512_permutex2var_epi64(lo, pack_hi, hi));
            }
        }
    }

    /// Inverse lazy NTT; the `1/n` scaling is fused into the last stage
    /// (sum lanes scaled by `n_inv`, difference lanes by `ψ⁻¹·n_inv`).
    #[target_feature(enable = "avx512f,avx512dq")]
    pub fn ntt_inverse(
        a: &mut [u64],
        inv_psi_rev: &[u64],
        inv_psi_rev_shoup: &[u64],
        n_inv: u64,
        n_inv_shoup: u64,
        q: u64,
    ) {
        let n = a.len();
        debug_assert!(n >= 16 && n.is_power_of_two());
        let qv = _mm512_set1_epi64(q as i64);
        let two_q = _mm512_set1_epi64((2 * q) as i64);
        // Span-1 stage (h = n/2).
        {
            let gather_u = idx(0, 2, 4, 6, 8, 10, 12, 14);
            let gather_v = idx(1, 3, 5, 7, 9, 11, 13, 15);
            let pack_lo = idx(0, 8, 1, 9, 2, 10, 3, 11);
            let pack_hi = idx(4, 12, 5, 13, 6, 14, 7, 15);
            let h = n >> 1;
            let (blocks, _) = a.as_chunks_mut::<16>();
            let (tw, _) = inv_psi_rev[h..2 * h].as_chunks::<8>();
            let (tw_sh, _) = inv_psi_rev_shoup[h..2 * h].as_chunks::<8>();
            for ((block, s8), s8_sh) in blocks.iter_mut().zip(tw).zip(tw_sh) {
                let v0 = load(&block[..8]);
                let v1 = load(&block[8..]);
                let u = _mm512_permutex2var_epi64(v0, gather_u, v1);
                let v = _mm512_permutex2var_epi64(v0, gather_v, v1);
                let s = load(s8);
                let s_sh = load(s8_sh);
                let sum = csub(_mm512_add_epi64(u, v), two_q);
                let dif = shoup_lazy(_mm512_sub_epi64(_mm512_add_epi64(u, two_q), v), s, s_sh, qv);
                store(
                    &mut block[..8],
                    _mm512_permutex2var_epi64(sum, pack_lo, dif),
                );
                store(
                    &mut block[8..],
                    _mm512_permutex2var_epi64(sum, pack_hi, dif),
                );
            }
        }
        // Span-2 stage (h = n/4).
        {
            let gather_u = idx(0, 1, 4, 5, 8, 9, 12, 13);
            let gather_v = idx(2, 3, 6, 7, 10, 11, 14, 15);
            let pack_lo = idx(0, 1, 8, 9, 2, 3, 10, 11);
            let pack_hi = idx(4, 5, 12, 13, 6, 7, 14, 15);
            let spread = idx(0, 0, 1, 1, 2, 2, 3, 3);
            let h = n >> 2;
            let (blocks, _) = a.as_chunks_mut::<16>();
            let (tw, _) = inv_psi_rev[h..2 * h].as_chunks::<4>();
            let (tw_sh, _) = inv_psi_rev_shoup[h..2 * h].as_chunks::<4>();
            for ((block, s4), s4_sh) in blocks.iter_mut().zip(tw).zip(tw_sh) {
                let v0 = load(&block[..8]);
                let v1 = load(&block[8..]);
                let u = _mm512_permutex2var_epi64(v0, gather_u, v1);
                let v = _mm512_permutex2var_epi64(v0, gather_v, v1);
                let s = _mm512_permutexvar_epi64(spread, load4(s4));
                let s_sh = _mm512_permutexvar_epi64(spread, load4(s4_sh));
                let sum = csub(_mm512_add_epi64(u, v), two_q);
                let dif = shoup_lazy(_mm512_sub_epi64(_mm512_add_epi64(u, two_q), v), s, s_sh, qv);
                store(
                    &mut block[..8],
                    _mm512_permutex2var_epi64(sum, pack_lo, dif),
                );
                store(
                    &mut block[8..],
                    _mm512_permutex2var_epi64(sum, pack_hi, dif),
                );
            }
        }
        // Span-4 stage (h = n/8).
        {
            let gather_u = idx(0, 1, 2, 3, 8, 9, 10, 11);
            let gather_v = idx(4, 5, 6, 7, 12, 13, 14, 15);
            let spread = idx(0, 0, 0, 0, 1, 1, 1, 1);
            let h = n >> 3;
            let (blocks, _) = a.as_chunks_mut::<16>();
            let (tw, _) = inv_psi_rev[h..2 * h].as_chunks::<2>();
            let (tw_sh, _) = inv_psi_rev_shoup[h..2 * h].as_chunks::<2>();
            for ((block, s2), s2_sh) in blocks.iter_mut().zip(tw).zip(tw_sh) {
                let v0 = load(&block[..8]);
                let v1 = load(&block[8..]);
                let u = _mm512_permutex2var_epi64(v0, gather_u, v1);
                let v = _mm512_permutex2var_epi64(v0, gather_v, v1);
                let s = _mm512_permutexvar_epi64(spread, load2(s2));
                let s_sh = _mm512_permutexvar_epi64(spread, load2(s2_sh));
                let sum = csub(_mm512_add_epi64(u, v), two_q);
                let dif = shoup_lazy(_mm512_sub_epi64(_mm512_add_epi64(u, two_q), v), s, s_sh, qv);
                store(
                    &mut block[..8],
                    _mm512_permutex2var_epi64(sum, gather_u, dif),
                );
                store(
                    &mut block[8..],
                    _mm512_permutex2var_epi64(sum, gather_v, dif),
                );
            }
        }
        // Stages with span >= 8, except the last (h == 1) stage.
        let mut t = 8usize;
        let mut h = n >> 4;
        while h >= 2 {
            let mut j1 = 0;
            for i in 0..h {
                let s = _mm512_set1_epi64(inv_psi_rev[h + i] as i64);
                let s_sh = _mm512_set1_epi64(inv_psi_rev_shoup[h + i] as i64);
                let (lo_half, hi_half) = a[j1..j1 + 2 * t].split_at_mut(t);
                let (lcs, _) = lo_half.as_chunks_mut::<8>();
                let (hcs, _) = hi_half.as_chunks_mut::<8>();
                for (lc, hc) in lcs.iter_mut().zip(hcs.iter_mut()) {
                    let u = load(lc);
                    let v = load(hc);
                    let sum = csub(_mm512_add_epi64(u, v), two_q);
                    let dif =
                        shoup_lazy(_mm512_sub_epi64(_mm512_add_epi64(u, two_q), v), s, s_sh, qv);
                    store(lc, sum);
                    store(hc, dif);
                }
                j1 += 2 * t;
            }
            t <<= 1;
            h >>= 1;
        }
        // Last stage (h == 1) fused with the 1/n scaling (see the AVX2
        // twin for the bit-identity argument).
        {
            debug_assert_eq!(t, n >> 1);
            let s = inv_psi_rev[1];
            let s_ninv = crate::modops::mul_mod(s, n_inv, q);
            let s_ninv_sh = crate::modops::shoup_precompute(s_ninv, q);
            let sv = _mm512_set1_epi64(s_ninv as i64);
            let sv_sh = _mm512_set1_epi64(s_ninv_sh as i64);
            let ni = _mm512_set1_epi64(n_inv as i64);
            let ni_sh = _mm512_set1_epi64(n_inv_shoup as i64);
            let (lo_half, hi_half) = a.split_at_mut(t);
            let (lcs, _) = lo_half.as_chunks_mut::<8>();
            let (hcs, _) = hi_half.as_chunks_mut::<8>();
            for (lc, hc) in lcs.iter_mut().zip(hcs.iter_mut()) {
                let u = load(lc);
                let v = load(hc);
                let sum = csub(_mm512_add_epi64(u, v), two_q);
                let lo = shoup_lazy(sum, ni, ni_sh, qv);
                let hi = shoup_lazy(
                    _mm512_sub_epi64(_mm512_add_epi64(u, two_q), v),
                    sv,
                    sv_sh,
                    qv,
                );
                store(lc, csub(lo, qv));
                store(hc, csub(hi, qv));
            }
        }
    }

    /// Vector body + scalar tail for `add_mod` over rows.
    #[target_feature(enable = "avx512f,avx512dq")]
    pub fn add_mod_slices(a: &mut [u64], b: &[u64], q: u64) {
        let qv = _mm512_set1_epi64(q as i64);
        let len8 = a.len() & !7;
        let mut j = 0;
        while j < len8 {
            let s = _mm512_add_epi64(load(&a[j..j + 8]), load(&b[j..j + 8]));
            store(&mut a[j..j + 8], csub(s, qv));
            j += 8;
        }
        for (x, &y) in a[len8..].iter_mut().zip(&b[len8..]) {
            *x = add_mod(*x, y, q);
        }
    }

    /// Vector body + scalar tail for `sub_mod` over rows.
    #[target_feature(enable = "avx512f,avx512dq")]
    pub fn sub_mod_slices(a: &mut [u64], b: &[u64], q: u64) {
        let qv = _mm512_set1_epi64(q as i64);
        let len8 = a.len() & !7;
        let mut j = 0;
        while j < len8 {
            let x = load(&a[j..j + 8]);
            let y = load(&b[j..j + 8]);
            let borrow = _mm512_cmplt_epu64_mask(x, y);
            let d = _mm512_sub_epi64(x, y);
            store(&mut a[j..j + 8], _mm512_mask_add_epi64(d, borrow, d, qv));
            j += 8;
        }
        for (x, &y) in a[len8..].iter_mut().zip(&b[len8..]) {
            *x = sub_mod(*x, y, q);
        }
    }

    /// Vector body + scalar tail for constant Shoup multiplication.
    #[target_feature(enable = "avx512f,avx512dq")]
    pub fn scalar_mul_shoup_slices(a: &mut [u64], s: u64, s_shoup: u64, q: u64) {
        let qv = _mm512_set1_epi64(q as i64);
        let sv = _mm512_set1_epi64(s as i64);
        let sv_sh = _mm512_set1_epi64(s_shoup as i64);
        let len8 = a.len() & !7;
        let mut j = 0;
        while j < len8 {
            let r = shoup_lazy(load(&a[j..j + 8]), sv, sv_sh, qv);
            store(&mut a[j..j + 8], csub(r, qv));
            j += 8;
        }
        for x in a[len8..].iter_mut() {
            *x = mul_mod_shoup(*x, s, s_shoup, q);
        }
    }

    /// Vector body + scalar tail for the per-lane-Shoup dyadic product.
    #[target_feature(enable = "avx512f,avx512dq")]
    pub fn dyadic_mul_shoup_slices(a: &mut [u64], b: &[u64], b_shoup: &[u64], q: u64) {
        let qv = _mm512_set1_epi64(q as i64);
        let len8 = a.len() & !7;
        let mut j = 0;
        while j < len8 {
            let r = shoup_lazy(
                load(&a[j..j + 8]),
                load(&b[j..j + 8]),
                load(&b_shoup[j..j + 8]),
                qv,
            );
            store(&mut a[j..j + 8], csub(r, qv));
            j += 8;
        }
        for ((x, &y), &ys) in a[len8..].iter_mut().zip(&b[len8..]).zip(&b_shoup[len8..]) {
            *x = mul_mod_shoup(*x, y, ys, q);
        }
    }
}

#[cfg(target_arch = "aarch64")]
mod neon {
    //! NEON kernels: 2×u64 lanes, mirroring the AVX2 structure. The
    //! 128-bit products come from four `vmull_u32` 32×32→64 partials; the
    //! unsigned compare (`vcgeq_u64`) is native, so no signed-range trick
    //! is needed. With only two lanes, the span-2 stage needs no shuffles
    //! (one vector holds exactly one block half); span-1 uses the
    //! interleaved `vld2q`/`vst2q` pair.

    use super::{add_mod, mul_mod_shoup, sub_mod};
    use core::arch::aarch64::*;

    #[target_feature(enable = "neon")]
    #[inline]
    fn load(src: &[u64]) -> uint64x2_t {
        debug_assert!(src.len() >= 2);
        // SAFETY: the slice holds at least two elements.
        unsafe { vld1q_u64(src.as_ptr()) }
    }

    #[target_feature(enable = "neon")]
    #[inline]
    fn store(dst: &mut [u64], v: uint64x2_t) {
        debug_assert!(dst.len() >= 2);
        // SAFETY: the slice holds at least two elements.
        unsafe { vst1q_u64(dst.as_mut_ptr(), v) }
    }

    /// Interleaved pair load: `.0` = even indices, `.1` = odd indices.
    #[target_feature(enable = "neon")]
    #[inline]
    fn load2(src: &[u64]) -> uint64x2x2_t {
        debug_assert!(src.len() >= 4);
        // SAFETY: the slice holds at least four elements.
        unsafe { vld2q_u64(src.as_ptr()) }
    }

    /// Interleaved pair store (inverse of [`load2`]).
    #[target_feature(enable = "neon")]
    #[inline]
    fn store2(dst: &mut [u64], v: uint64x2x2_t) {
        debug_assert!(dst.len() >= 4);
        // SAFETY: the slice holds at least four elements.
        unsafe { vst2q_u64(dst.as_mut_ptr(), v) }
    }

    /// High 64 bits of the unsigned 64×64 product, lane-wise.
    #[target_feature(enable = "neon")]
    #[inline]
    fn mulhi_u64(a: uint64x2_t, b: uint64x2_t) -> uint64x2_t {
        let lo32 = vdupq_n_u64(0xFFFF_FFFF);
        let a_lo = vmovn_u64(a);
        let a_hi = vshrn_n_u64::<32>(a);
        let b_lo = vmovn_u64(b);
        let b_hi = vshrn_n_u64::<32>(b);
        let ll = vmull_u32(a_lo, b_lo);
        let lh = vmull_u32(a_lo, b_hi);
        let hl = vmull_u32(a_hi, b_lo);
        let hh = vmull_u32(a_hi, b_hi);
        let cross = vaddq_u64(
            vaddq_u64(vshrq_n_u64::<32>(ll), vandq_u64(hl, lo32)),
            vandq_u64(lh, lo32),
        );
        vaddq_u64(
            vaddq_u64(hh, vshrq_n_u64::<32>(cross)),
            vaddq_u64(vshrq_n_u64::<32>(hl), vshrq_n_u64::<32>(lh)),
        )
    }

    /// Low 64 bits of the product (wrapping), lane-wise.
    #[target_feature(enable = "neon")]
    #[inline]
    fn mullo_u64(a: uint64x2_t, b: uint64x2_t) -> uint64x2_t {
        let a_lo = vmovn_u64(a);
        let a_hi = vshrn_n_u64::<32>(a);
        let b_lo = vmovn_u64(b);
        let b_hi = vshrn_n_u64::<32>(b);
        let ll = vmull_u32(a_lo, b_lo);
        let cross = vaddq_u64(vmull_u32(a_lo, b_hi), vmull_u32(a_hi, b_lo));
        vaddq_u64(ll, vshlq_n_u64::<32>(cross))
    }

    /// `mul_mod_shoup_lazy` lane-wise: result in `[0, 2q)`.
    #[target_feature(enable = "neon")]
    #[inline]
    fn shoup_lazy(a: uint64x2_t, b: uint64x2_t, b_shoup: uint64x2_t, q: uint64x2_t) -> uint64x2_t {
        let hi = mulhi_u64(a, b_shoup);
        vsubq_u64(mullo_u64(a, b), mullo_u64(hi, q))
    }

    /// `if x >= bound { x - bound } else { x }` lane-wise (native unsigned
    /// compare).
    #[target_feature(enable = "neon")]
    #[inline]
    fn csub(x: uint64x2_t, bound: uint64x2_t) -> uint64x2_t {
        let ge = vcgeq_u64(x, bound);
        vsubq_u64(x, vandq_u64(bound, ge))
    }

    /// `reduce_4q` lane-wise.
    #[target_feature(enable = "neon")]
    #[inline]
    fn reduce_4q_v(x: uint64x2_t, two_q: uint64x2_t, q: uint64x2_t) -> uint64x2_t {
        csub(csub(x, two_q), q)
    }

    /// Forward lazy NTT with the final correction folded into the last
    /// (span-1) stage. `a.len()` is a power of two ≥ 8.
    #[target_feature(enable = "neon")]
    pub fn ntt_forward(a: &mut [u64], psi_rev: &[u64], psi_rev_shoup: &[u64], q: u64) {
        let n = a.len();
        debug_assert!(n >= 8 && n.is_power_of_two());
        let qv = vdupq_n_u64(q);
        let two_q = vdupq_n_u64(2 * q);
        let mut m = 1usize;
        let mut t = n >> 1;
        // Stages with span >= 2: contiguous 2-lane loads on both halves.
        while t >= 2 {
            for i in 0..m {
                let j1 = 2 * i * t;
                let s = vdupq_n_u64(psi_rev[m + i]);
                let s_sh = vdupq_n_u64(psi_rev_shoup[m + i]);
                let mut j = j1;
                while j < j1 + t {
                    let u = csub(load(&a[j..j + 2]), two_q);
                    let v = shoup_lazy(load(&a[j + t..j + t + 2]), s, s_sh, qv);
                    store(&mut a[j..j + 2], vaddq_u64(u, v));
                    store(&mut a[j + t..j + t + 2], vaddq_u64(u, vsubq_u64(two_q, v)));
                    j += 2;
                }
            }
            m <<= 1;
            t >>= 1;
        }
        // Span-1 stage fused with the [0,4q) -> [0,q) correction.
        {
            let mut i = 0;
            while i < m {
                let j = 2 * i;
                let pair = load2(&a[j..j + 4]);
                let s = load(&psi_rev[m + i..m + i + 2]);
                let s_sh = load(&psi_rev_shoup[m + i..m + i + 2]);
                let uu = csub(pair.0, two_q);
                let vv = shoup_lazy(pair.1, s, s_sh, qv);
                let lo = reduce_4q_v(vaddq_u64(uu, vv), two_q, qv);
                let hi = reduce_4q_v(vaddq_u64(uu, vsubq_u64(two_q, vv)), two_q, qv);
                store2(&mut a[j..j + 4], uint64x2x2_t(lo, hi));
                i += 2;
            }
        }
    }

    /// Inverse lazy NTT including the `1/n` scaling sweep.
    #[target_feature(enable = "neon")]
    pub fn ntt_inverse(
        a: &mut [u64],
        inv_psi_rev: &[u64],
        inv_psi_rev_shoup: &[u64],
        n_inv: u64,
        n_inv_shoup: u64,
        q: u64,
    ) {
        let n = a.len();
        debug_assert!(n >= 8 && n.is_power_of_two());
        let qv = vdupq_n_u64(q);
        let two_q = vdupq_n_u64(2 * q);
        // Span-1 stage (h = n/2): interleaved pair loads.
        {
            let h = n >> 1;
            let mut i = 0;
            while i < h {
                let j = 2 * i;
                let pair = load2(&a[j..j + 4]);
                let s = load(&inv_psi_rev[h + i..h + i + 2]);
                let s_sh = load(&inv_psi_rev_shoup[h + i..h + i + 2]);
                let sum = csub(vaddq_u64(pair.0, pair.1), two_q);
                let dif = shoup_lazy(vsubq_u64(vaddq_u64(pair.0, two_q), pair.1), s, s_sh, qv);
                store2(&mut a[j..j + 4], uint64x2x2_t(sum, dif));
                i += 2;
            }
        }
        // Stages with span >= 2.
        let mut t = 2usize;
        let mut h = n >> 2;
        while h >= 1 {
            let mut j1 = 0;
            for i in 0..h {
                let s = vdupq_n_u64(inv_psi_rev[h + i]);
                let s_sh = vdupq_n_u64(inv_psi_rev_shoup[h + i]);
                let mut j = j1;
                while j < j1 + t {
                    let u = load(&a[j..j + 2]);
                    let v = load(&a[j + t..j + t + 2]);
                    let sum = csub(vaddq_u64(u, v), two_q);
                    let dif = shoup_lazy(vsubq_u64(vaddq_u64(u, two_q), v), s, s_sh, qv);
                    store(&mut a[j..j + 2], sum);
                    store(&mut a[j + t..j + t + 2], dif);
                    j += 2;
                }
                j1 += 2 * t;
            }
            t <<= 1;
            h >>= 1;
        }
        // Final 1/n Shoup scaling: full reduction, one pass.
        let ni = vdupq_n_u64(n_inv);
        let ni_sh = vdupq_n_u64(n_inv_shoup);
        let mut j = 0;
        while j < n {
            let x = shoup_lazy(load(&a[j..j + 2]), ni, ni_sh, qv);
            store(&mut a[j..j + 2], csub(x, qv));
            j += 2;
        }
    }

    /// Vector body + scalar tail for `add_mod` over rows.
    #[target_feature(enable = "neon")]
    pub fn add_mod_slices(a: &mut [u64], b: &[u64], q: u64) {
        let qv = vdupq_n_u64(q);
        let len2 = a.len() & !1;
        let mut j = 0;
        while j < len2 {
            let s = vaddq_u64(load(&a[j..j + 2]), load(&b[j..j + 2]));
            store(&mut a[j..j + 2], csub(s, qv));
            j += 2;
        }
        for (x, &y) in a[len2..].iter_mut().zip(&b[len2..]) {
            *x = add_mod(*x, y, q);
        }
    }

    /// Vector body + scalar tail for `sub_mod` over rows.
    #[target_feature(enable = "neon")]
    pub fn sub_mod_slices(a: &mut [u64], b: &[u64], q: u64) {
        let qv = vdupq_n_u64(q);
        let len2 = a.len() & !1;
        let mut j = 0;
        while j < len2 {
            let x = load(&a[j..j + 2]);
            let y = load(&b[j..j + 2]);
            let borrow = vcgtq_u64(y, x);
            let d = vsubq_u64(x, y);
            store(&mut a[j..j + 2], vaddq_u64(d, vandq_u64(borrow, qv)));
            j += 2;
        }
        for (x, &y) in a[len2..].iter_mut().zip(&b[len2..]) {
            *x = sub_mod(*x, y, q);
        }
    }

    /// Vector body + scalar tail for constant Shoup multiplication.
    #[target_feature(enable = "neon")]
    pub fn scalar_mul_shoup_slices(a: &mut [u64], s: u64, s_shoup: u64, q: u64) {
        let qv = vdupq_n_u64(q);
        let sv = vdupq_n_u64(s);
        let sv_sh = vdupq_n_u64(s_shoup);
        let len2 = a.len() & !1;
        let mut j = 0;
        while j < len2 {
            let r = shoup_lazy(load(&a[j..j + 2]), sv, sv_sh, qv);
            store(&mut a[j..j + 2], csub(r, qv));
            j += 2;
        }
        for x in a[len2..].iter_mut() {
            *x = mul_mod_shoup(*x, s, s_shoup, q);
        }
    }

    /// Vector body + scalar tail for the per-lane-Shoup dyadic product.
    #[target_feature(enable = "neon")]
    pub fn dyadic_mul_shoup_slices(a: &mut [u64], b: &[u64], b_shoup: &[u64], q: u64) {
        let qv = vdupq_n_u64(q);
        let len2 = a.len() & !1;
        let mut j = 0;
        while j < len2 {
            let r = shoup_lazy(
                load(&a[j..j + 2]),
                load(&b[j..j + 2]),
                load(&b_shoup[j..j + 2]),
                qv,
            );
            store(&mut a[j..j + 2], csub(r, qv));
            j += 2;
        }
        for ((x, &y), &ys) in a[len2..].iter_mut().zip(&b[len2..]).zip(&b_shoup[len2..]) {
            *x = mul_mod_shoup(*x, y, ys, q);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::modops::shoup_precompute;

    #[test]
    fn backend_reports_a_name() {
        let b = backend();
        assert!(!b.name().is_empty());
        // On any host the scalar fallback must at least be reachable.
        assert_eq!(Backend::Scalar.name(), "scalar");
        assert!(!Backend::Scalar.is_vector());
        assert!(Backend::Avx2.is_vector() && Backend::Neon.is_vector());
    }

    #[test]
    fn slice_ops_match_scalar_reference() {
        // Exercises whatever backend is active (including the tail path via
        // the odd length) against the modops reference.
        let q = (1u64 << 60) - 93; // any q < 2^61 works for add/sub
        let len = 1027;
        let a: Vec<u64> = (0..len as u64).map(|i| (i * 0x9E37_79B9) % q).collect();
        let b: Vec<u64> = (0..len as u64).map(|i| (i * 0x85EB_CA6B + 1) % q).collect();

        let mut add = a.clone();
        add_mod_slices(&mut add, &b, q);
        let mut sub = a.clone();
        sub_mod_slices(&mut sub, &b, q);
        for i in 0..len {
            assert_eq!(add[i], crate::modops::add_mod(a[i], b[i], q));
            assert_eq!(sub[i], crate::modops::sub_mod(a[i], b[i], q));
        }

        let s = 0x1234_5678_9ABC % q;
        let s_sh = shoup_precompute(s, q);
        let mut smul = a.clone();
        scalar_mul_shoup_slices(&mut smul, s, s_sh, q);
        let b_sh: Vec<u64> = b.iter().map(|&x| shoup_precompute(x, q)).collect();
        let mut dmul = a.clone();
        dyadic_mul_shoup_slices(&mut dmul, &b, &b_sh, q);
        for i in 0..len {
            assert_eq!(smul[i], mul_mod_shoup(a[i], s, s_sh, q));
            assert_eq!(dmul[i], mul_mod_shoup(a[i], b[i], b_sh[i], q));
        }
    }
}
