//! Negacyclic Number Theoretic Transform over `Z_q[x]/(x^N + 1)`.
//!
//! The transform follows the classic Longa–Naehrig formulation: a
//! Cooley–Tukey decimation-in-time forward pass and a Gentleman–Sande
//! decimation-in-frequency inverse pass, with powers of the primitive
//! `2N`-th root of unity `ψ` stored in bit-reversed order. With this layout
//! the negacyclic twist is folded into the butterflies, so
//! `INTT(NTT(a) ⊙ NTT(b))` is exactly the product of `a` and `b` in
//! `Z_q[x]/(x^N + 1)`.

use crate::modops::{
    add_mod, inv_mod, mul_mod, mul_mod_shoup, mul_mod_shoup_lazy, reduce_4q, shoup_precompute,
    sub_mod,
};
use crate::prime::{is_prime, primitive_nth_root};

/// Upper bound (exclusive) on NTT moduli: `q < 2^61`.
///
/// The lazy-reduction (Harvey) butterflies hold intermediate values in
/// `[0, 4q)`, which must fit a `u64` — that alone needs `q < 2^62`. We
/// enforce the stricter `q < 2^61` so every lazy intermediate also has a
/// spare headroom bit (and `2q` sums stay far from wraparound), matching
/// SEAL's "up to 60/61-bit primes" convention.
pub const MAX_NTT_MODULUS_BITS: u32 = 61;

/// Precomputed tables for a negacyclic NTT of size `n` over prime `q`.
///
/// Construction is `O(n)` after root finding; individual transforms are
/// `O(n log n)`.
#[derive(Debug, Clone)]
pub struct NttTable {
    n: usize,
    q: u64,
    /// ψ^bitrev(i), ψ a primitive 2n-th root of unity.
    psi_rev: Vec<u64>,
    psi_rev_shoup: Vec<u64>,
    /// ψ^{-bitrev(i)}.
    inv_psi_rev: Vec<u64>,
    inv_psi_rev_shoup: Vec<u64>,
    n_inv: u64,
    n_inv_shoup: u64,
    psi: u64,
}

/// Errors produced when constructing an [`NttTable`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NttError {
    /// The transform size was not a power of two (or was < 2).
    InvalidSize(usize),
    /// The modulus is not prime or does not satisfy `q ≡ 1 (mod 2n)`.
    UnsupportedModulus(u64),
}

impl std::fmt::Display for NttError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NttError::InvalidSize(n) => write!(f, "ntt size {n} is not a power of two >= 2"),
            NttError::UnsupportedModulus(q) => {
                write!(f, "modulus {q} is not an ntt-friendly prime")
            }
        }
    }
}

impl std::error::Error for NttError {}

fn bit_reverse(x: usize, bits: u32) -> usize {
    x.reverse_bits() >> (usize::BITS - bits)
}

impl NttTable {
    /// Builds NTT tables for size `n` (a power of two) and prime modulus `q`
    /// with `q ≡ 1 (mod 2n)`.
    ///
    /// # Errors
    ///
    /// Returns [`NttError::InvalidSize`] or [`NttError::UnsupportedModulus`]
    /// when the preconditions fail.
    pub fn new(n: usize, q: u64) -> Result<Self, NttError> {
        if !n.is_power_of_two() || n < 2 {
            return Err(NttError::InvalidSize(n));
        }
        if q >= 1 << MAX_NTT_MODULUS_BITS {
            return Err(NttError::UnsupportedModulus(q));
        }
        if !is_prime(q) || !(q - 1).is_multiple_of(2 * n as u64) {
            return Err(NttError::UnsupportedModulus(q));
        }
        let log_n = n.trailing_zeros();
        let psi = primitive_nth_root(2 * n as u64, q);
        let psi_inv = inv_mod(psi, q);

        let mut psi_pow = vec![0u64; n];
        let mut inv_psi_pow = vec![0u64; n];
        let (mut p, mut ip) = (1u64, 1u64);
        for i in 0..n {
            psi_pow[i] = p;
            inv_psi_pow[i] = ip;
            p = mul_mod(p, psi, q);
            ip = mul_mod(ip, psi_inv, q);
        }
        let mut psi_rev = vec![0u64; n];
        let mut inv_psi_rev = vec![0u64; n];
        for i in 0..n {
            let r = bit_reverse(i, log_n);
            psi_rev[i] = psi_pow[r];
            inv_psi_rev[i] = inv_psi_pow[r];
        }
        let psi_rev_shoup = psi_rev.iter().map(|&x| shoup_precompute(x, q)).collect();
        let inv_psi_rev_shoup = inv_psi_rev
            .iter()
            .map(|&x| shoup_precompute(x, q))
            .collect();
        let n_inv = inv_mod(n as u64, q);
        Ok(NttTable {
            n,
            q,
            psi_rev,
            psi_rev_shoup,
            inv_psi_rev,
            inv_psi_rev_shoup,
            n_inv,
            n_inv_shoup: shoup_precompute(n_inv, q),
            psi,
        })
    }

    /// The primitive `2n`-th root of unity `ψ` the tables were built from.
    pub fn psi(&self) -> u64 {
        self.psi
    }

    /// Transform size.
    pub fn size(&self) -> usize {
        self.n
    }

    /// Modulus.
    pub fn modulus(&self) -> u64 {
        self.q
    }

    /// In-place forward negacyclic NTT.
    ///
    /// Uses lazy (Harvey) reduction: butterflies keep values in `[0, 4q)`
    /// and the final `[0, q)` correction is folded into the last butterfly
    /// stage, so the output is bit-identical to [`Self::forward_strict`].
    /// Dispatches to the vectorized [`crate::simd`] kernel when a backend
    /// is active; the scalar and vector paths are bit-identical.
    ///
    /// # Panics
    ///
    /// Panics if `a.len() != self.size()`.
    pub fn forward(&self, a: &mut [u64]) {
        assert_eq!(a.len(), self.n, "ntt input length mismatch");
        if crate::simd::ntt_forward_lazy(a, &self.psi_rev, &self.psi_rev_shoup, self.q) {
            return;
        }
        self.forward_scalar_body(a);
    }

    /// The scalar lazy forward transform, bypassing SIMD dispatch. Public
    /// so benches and equivalence tests can time/compare the two paths
    /// explicitly.
    ///
    /// # Panics
    ///
    /// Panics if `a.len() != self.size()`.
    pub fn forward_scalar(&self, a: &mut [u64]) {
        assert_eq!(a.len(), self.n, "ntt input length mismatch");
        self.forward_scalar_body(a);
    }

    fn forward_scalar_body(&self, a: &mut [u64]) {
        let q = self.q;
        // choco-lint: lazy-domain
        let two_q = 2 * q;
        let n = self.n;
        let mut t = n;
        let mut m = 1;
        while 2 * m < n {
            t >>= 1;
            for i in 0..m {
                let j1 = 2 * i * t;
                let s = self.psi_rev[m + i];
                let s_sh = self.psi_rev_shoup[m + i];
                for j in j1..j1 + t {
                    // Harvey butterfly: u in [0, 2q) after the conditional
                    // subtraction, v in [0, 2q) from the lazy Shoup multiply;
                    // both outputs land in [0, 4q).
                    let mut u = a[j];
                    if u >= two_q {
                        u -= two_q;
                    }
                    let v = mul_mod_shoup_lazy(a[j + t], s, s_sh, q);
                    a[j] = u + v;
                    a[j + t] = u + two_q - v;
                }
            }
            m <<= 1;
        }
        // Last stage (span 1) with the [0,4q) -> [0,q) correction fused in,
        // saving a full extra sweep over the coefficient array.
        for i in 0..m {
            let j = 2 * i;
            let s = self.psi_rev[m + i];
            let s_sh = self.psi_rev_shoup[m + i];
            let mut u = a[j];
            if u >= two_q {
                u -= two_q;
            }
            let v = mul_mod_shoup_lazy(a[j + 1], s, s_sh, q);
            a[j] = reduce_4q(u + v, q);
            a[j + 1] = reduce_4q(u + two_q - v, q);
        }
        // choco-lint: end-lazy-domain
    }

    /// In-place inverse negacyclic NTT (includes the `1/n` scaling).
    ///
    /// Uses lazy (Harvey) reduction: values stay in `[0, 2q)` between
    /// stages and the final `1/n` scaling multiply fully reduces, so the
    /// output is bit-identical to [`Self::inverse_strict`]. Dispatches to
    /// the vectorized [`crate::simd`] kernel when a backend is active.
    ///
    /// # Panics
    ///
    /// Panics if `a.len() != self.size()`.
    pub fn inverse(&self, a: &mut [u64]) {
        assert_eq!(a.len(), self.n, "intt input length mismatch");
        if crate::simd::ntt_inverse_lazy(
            a,
            &self.inv_psi_rev,
            &self.inv_psi_rev_shoup,
            self.n_inv,
            self.n_inv_shoup,
            self.q,
        ) {
            return;
        }
        self.inverse_scalar_body(a);
    }

    /// The scalar lazy inverse transform, bypassing SIMD dispatch (see
    /// [`Self::forward_scalar`]).
    ///
    /// # Panics
    ///
    /// Panics if `a.len() != self.size()`.
    pub fn inverse_scalar(&self, a: &mut [u64]) {
        assert_eq!(a.len(), self.n, "intt input length mismatch");
        self.inverse_scalar_body(a);
    }

    fn inverse_scalar_body(&self, a: &mut [u64]) {
        let q = self.q;
        // choco-lint: lazy-domain
        let two_q = 2 * q;
        let n = self.n;
        let mut t = 1;
        let mut m = n;
        while m > 1 {
            let h = m >> 1;
            let mut j1 = 0;
            for i in 0..h {
                let s = self.inv_psi_rev[h + i];
                let s_sh = self.inv_psi_rev_shoup[h + i];
                for j in j1..j1 + t {
                    // Gentleman–Sande butterfly on values in [0, 2q):
                    // the sum is conditionally reduced back below 2q, the
                    // difference (offset by 2q to stay non-negative) feeds
                    // the lazy multiply which re-enters [0, 2q).
                    let u = a[j];
                    let v = a[j + t];
                    let mut sum = u + v;
                    if sum >= two_q {
                        sum -= two_q;
                    }
                    a[j] = sum;
                    a[j + t] = mul_mod_shoup_lazy(u + two_q - v, s, s_sh, q);
                }
                j1 += 2 * t;
            }
            t <<= 1;
            m = h;
        }
        for x in a.iter_mut() {
            // Full Shoup reduction folds the [0, 2q) slack away.
            *x = mul_mod_shoup(*x, self.n_inv, self.n_inv_shoup, q);
        }
        // choco-lint: end-lazy-domain
    }

    /// Strict-reduction forward NTT: every butterfly fully reduces.
    ///
    /// Kept as the reference implementation the lazy [`Self::forward`] is
    /// property-tested against.
    ///
    /// # Panics
    ///
    /// Panics if `a.len() != self.size()`.
    pub fn forward_strict(&self, a: &mut [u64]) {
        assert_eq!(a.len(), self.n, "ntt input length mismatch");
        let q = self.q;
        let n = self.n;
        let mut t = n;
        let mut m = 1;
        while m < n {
            t >>= 1;
            for i in 0..m {
                let j1 = 2 * i * t;
                let s = self.psi_rev[m + i];
                let s_sh = self.psi_rev_shoup[m + i];
                for j in j1..j1 + t {
                    let u = a[j];
                    let v = mul_mod_shoup(a[j + t], s, s_sh, q);
                    a[j] = add_mod(u, v, q);
                    a[j + t] = sub_mod(u, v, q);
                }
            }
            m <<= 1;
        }
    }

    /// Strict-reduction inverse NTT (includes the `1/n` scaling).
    ///
    /// Reference implementation for [`Self::inverse`].
    ///
    /// # Panics
    ///
    /// Panics if `a.len() != self.size()`.
    pub fn inverse_strict(&self, a: &mut [u64]) {
        assert_eq!(a.len(), self.n, "intt input length mismatch");
        let q = self.q;
        let n = self.n;
        let mut t = 1;
        let mut m = n;
        while m > 1 {
            let h = m >> 1;
            let mut j1 = 0;
            for i in 0..h {
                let s = self.inv_psi_rev[h + i];
                let s_sh = self.inv_psi_rev_shoup[h + i];
                for j in j1..j1 + t {
                    let u = a[j];
                    let v = a[j + t];
                    a[j] = add_mod(u, v, q);
                    a[j + t] = mul_mod_shoup(sub_mod(u, v, q), s, s_sh, q);
                }
                j1 += 2 * t;
            }
            t <<= 1;
            m = h;
        }
        for x in a.iter_mut() {
            *x = mul_mod_shoup(*x, self.n_inv, self.n_inv_shoup, q);
        }
    }

    /// Negacyclic polynomial product `a * b mod (x^N + 1, q)` out of place.
    ///
    /// Scratch comes from [`crate::pool::PolyPool`]; the returned buffer is
    /// an ordinary `Vec` the caller owns.
    pub fn negacyclic_mul(&self, a: &[u64], b: &[u64]) -> Vec<u64> {
        let mut fa = crate::pool::PolyPool::take_copy(a);
        let mut fb = crate::pool::PolyPool::take_copy(b);
        self.forward(&mut fa);
        self.forward(&mut fb);
        for (x, y) in fa.iter_mut().zip(&fb) {
            *x = mul_mod(*x, *y, self.q);
        }
        crate::pool::PolyPool::recycle(fb);
        self.inverse(&mut fa);
        fa
    }
}

/// Precomputes the index permutation realising the Galois automorphism
/// `x → x^e` directly on NTT-domain (evaluation-form) data.
///
/// With the Longa–Naehrig layout, slot `j` of a forward transform holds the
/// evaluation at `ψ^{2·br(j)+1}` (`br` = bit reversal over `log2 n` bits).
/// The automorphism permutes those evaluation points — there are **no sign
/// flips** in the NTT domain — so `out[j] = in[perm[j]]` with
/// `perm[j] = br((((2·br(j)+1)·e mod 2n) − 1) / 2)`.
///
/// This is what makes rotation hoisting cheap: applying a Galois element to
/// already-transformed key-switch digits is a pure gather.
///
/// # Panics
///
/// Panics if `n` is not a power of two `>= 2` or `e` is even.
pub fn galois_ntt_permutation(n: usize, e: u64) -> Vec<usize> {
    assert!(n.is_power_of_two() && n >= 2, "invalid ntt size {n}");
    assert!(e & 1 == 1, "galois element must be odd");
    let log_n = n.trailing_zeros();
    let m = 2 * n as u64;
    (0..n)
        .map(|j| {
            let odd_exp = 2 * bit_reverse(j, log_n) as u64 + 1;
            let exp = mul_mod(odd_exp, e, m);
            bit_reverse(((exp - 1) / 2) as usize, log_n)
        })
        .collect()
}

/// Applies a permutation from [`galois_ntt_permutation`] to NTT-domain
/// values: `out[j] = values[perm[j]]`.
///
/// # Panics
///
/// Panics if the slice lengths disagree.
#[inline]
pub fn apply_galois_ntt(values: &[u64], perm: &[usize], out: &mut [u64]) {
    assert_eq!(
        values.len(),
        perm.len(),
        "galois permutation length mismatch"
    );
    assert_eq!(values.len(), out.len(), "galois output length mismatch");
    for (o, &p) in out.iter_mut().zip(perm) {
        *o = values[p];
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prime::generate_ntt_primes;

    fn table(n: usize) -> NttTable {
        let q = generate_ntt_primes(40, n, 1)[0];
        NttTable::new(n, q).unwrap()
    }

    /// Schoolbook negacyclic multiply for cross-checking.
    fn naive_negacyclic(a: &[u64], b: &[u64], q: u64) -> Vec<u64> {
        let n = a.len();
        let mut out = vec![0u64; n];
        for i in 0..n {
            for j in 0..n {
                let p = mul_mod(a[i], b[j], q);
                let k = i + j;
                if k < n {
                    out[k] = add_mod(out[k], p, q);
                } else {
                    out[k - n] = sub_mod(out[k - n], p, q);
                }
            }
        }
        out
    }

    #[test]
    fn roundtrip_identity() {
        for n in [4usize, 64, 1024] {
            let t = table(n);
            let q = t.modulus();
            let orig: Vec<u64> = (0..n as u64).map(|i| (i * i + 7) % q).collect();
            let mut a = orig.clone();
            t.forward(&mut a);
            assert_ne!(a, orig, "forward transform must change the data");
            t.inverse(&mut a);
            assert_eq!(a, orig);
        }
    }

    #[test]
    fn transform_is_linear() {
        let n = 256;
        let t = table(n);
        let q = t.modulus();
        let a: Vec<u64> = (0..n as u64).map(|i| (i * 31 + 5) % q).collect();
        let b: Vec<u64> = (0..n as u64).map(|i| (i * 17 + 3) % q).collect();
        let sum: Vec<u64> = a.iter().zip(&b).map(|(&x, &y)| add_mod(x, y, q)).collect();
        let mut fa = a.clone();
        let mut fb = b.clone();
        let mut fs = sum.clone();
        t.forward(&mut fa);
        t.forward(&mut fb);
        t.forward(&mut fs);
        let expect: Vec<u64> = fa
            .iter()
            .zip(&fb)
            .map(|(&x, &y)| add_mod(x, y, q))
            .collect();
        assert_eq!(fs, expect);
    }

    #[test]
    fn convolution_theorem_matches_schoolbook() {
        for n in [8usize, 32, 128] {
            let t = table(n);
            let q = t.modulus();
            let a: Vec<u64> = (0..n as u64).map(|i| (i * 1234567 + 89) % q).collect();
            let b: Vec<u64> = (0..n as u64).map(|i| (i * 7654321 + 11) % q).collect();
            assert_eq!(t.negacyclic_mul(&a, &b), naive_negacyclic(&a, &b, q));
        }
    }

    #[test]
    fn multiplying_by_x_rotates_with_sign() {
        // x * (c0..c_{n-1}) = -c_{n-1} + c0 x + ...
        let n = 16;
        let t = table(n);
        let q = t.modulus();
        let mut x = vec![0u64; n];
        x[1] = 1;
        let a: Vec<u64> = (1..=n as u64).collect();
        let out = t.negacyclic_mul(&a, &x);
        assert_eq!(out[0], q - a[n - 1]);
        assert_eq!(&out[1..], &a[..n - 1]);
    }

    #[test]
    fn rejects_bad_size_and_modulus() {
        assert_eq!(NttTable::new(3, 97).unwrap_err(), NttError::InvalidSize(3));
        assert_eq!(
            NttTable::new(8, 15).unwrap_err(),
            NttError::UnsupportedModulus(15)
        );
        // 97 is prime but 97-1=96 is not divisible by 2*64.
        assert_eq!(
            NttTable::new(64, 97).unwrap_err(),
            NttError::UnsupportedModulus(97)
        );
    }

    #[test]
    fn lazy_transforms_match_strict_bitwise() {
        for n in [8usize, 64, 512] {
            for bits in [30u32, 45, 58] {
                let q = generate_ntt_primes(bits, n, 1)[0];
                let t = NttTable::new(n, q).unwrap();
                let orig: Vec<u64> = (0..n as u64).map(|i| (i * i * 37 + 11) % q).collect();
                let mut lazy = orig.clone();
                let mut strict = orig.clone();
                t.forward(&mut lazy);
                t.forward_strict(&mut strict);
                assert_eq!(lazy, strict, "forward n={n} bits={bits}");
                t.inverse(&mut lazy);
                t.inverse_strict(&mut strict);
                assert_eq!(lazy, strict, "inverse n={n} bits={bits}");
                assert_eq!(lazy, orig, "roundtrip n={n} bits={bits}");
            }
        }
    }

    #[test]
    fn rejects_oversized_modulus() {
        // 2^62 + small is well above the q < 2^61 lazy-reduction bound; the
        // size/bound checks fire before primality is even consulted.
        let q = (1u64 << 62) + 1;
        assert_eq!(
            NttTable::new(8, q).unwrap_err(),
            NttError::UnsupportedModulus(q)
        );
    }

    #[test]
    fn galois_ntt_permutation_matches_coefficient_galois() {
        use crate::poly::apply_galois;
        let n = 64;
        let t = table(n);
        let q = t.modulus();
        let a: Vec<u64> = (0..n as u64).map(|i| (i * 91 + 3) % q).collect();
        for e in [1u64, 3, 5, 2 * n as u64 - 1, 9, 127] {
            // Path 1: automorphism in coefficient domain, then NTT.
            let mut coeff = vec![0u64; n];
            apply_galois(&a, e, q, &mut coeff);
            t.forward(&mut coeff);
            // Path 2: NTT, then pure permutation.
            let mut eval = a.clone();
            t.forward(&mut eval);
            let perm = galois_ntt_permutation(n, e);
            let mut permuted = vec![0u64; n];
            apply_galois_ntt(&eval, &perm, &mut permuted);
            assert_eq!(permuted, coeff, "galois element {e}");
        }
    }

    #[test]
    fn galois_ntt_permutation_identity() {
        let perm = galois_ntt_permutation(16, 1);
        assert_eq!(perm, (0..16).collect::<Vec<_>>());
    }

    #[test]
    fn works_at_he_scale() {
        let n = 8192;
        let q = generate_ntt_primes(58, n, 1)[0];
        let t = NttTable::new(n, q).unwrap();
        let orig: Vec<u64> = (0..n as u64).map(|i| (i * 987_654_321) % q).collect();
        let mut a = orig.clone();
        t.forward(&mut a);
        t.inverse(&mut a);
        assert_eq!(a, orig);
    }
}
