//! `PolyPool`: a size-classed buffer pool for the kernel hot path.
//!
//! Steady-state HE evaluation (key switching, hoisted rotations, matvec
//! kernels) churns through polynomial-sized `Vec<u64>` scratch and result
//! rows at a furious rate. This module recycles them: every buffer handed
//! out comes from a free list keyed by exact length when one is available,
//! and `recycle` returns buffers to that list instead of the allocator, so
//! after a warmup pass the evaluator performs **zero fresh heap
//! allocations** for polynomial data (proven by the counter-based test in
//! `crates/he/tests/zero_alloc.rs`).
//!
//! Design points:
//!
//! * **Thread-aware sharding.** The [`crate::par`] runtime spawns fresh
//!   scoped workers per call, so a `thread_local!` cache would never stay
//!   warm. Instead the pool is a process-global set of mutex-guarded
//!   shards; each thread is assigned a shard round-robin on first use, so
//!   concurrent workers rarely contend on the same lock and buffers
//!   recycled by one worker generation are reused by the next.
//! * **Exact size classes.** HE rows come in a handful of lengths (the
//!   ring degree per parameter set, occasionally a digit count), so classes
//!   are keyed by exact element count — no rounding waste, no
//!   wrong-length reuse.
//! * **Debug poisoning.** In debug builds recycled buffers are filled with
//!   `0xDEAD_DEAD_DEAD_DEAD` so any consumer of [`PolyPool::take_scratch`]
//!   that reads before writing fails loudly in tests.
//! * **Bounded caching.** Each (shard, class) free list is capped; beyond
//!   the cap buffers fall back to the allocator, so a transient burst
//!   cannot pin memory forever.
//!
//! The `u128` classes serve the lazy MAC accumulators of the key-switch
//! inner loop, which are the largest per-call scratch in the system.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Mutex, MutexGuard, OnceLock};

/// Number of independent free-list shards (threads map round-robin).
const SHARD_COUNT: usize = 8;

/// Maximum buffers cached per (shard, size-class) before falling back to
/// the allocator on recycle.
const MAX_CACHED_PER_CLASS: usize = 256;

/// Debug-build poison pattern written into recycled `u64` buffers.
#[cfg(debug_assertions)]
const POISON_U64: u64 = 0xDEAD_DEAD_DEAD_DEAD;
/// Debug-build poison pattern for `u128` accumulator buffers.
#[cfg(debug_assertions)]
const POISON_U128: u128 = 0xDEAD_DEAD_DEAD_DEAD_DEAD_DEAD_DEAD_DEADu128;

#[derive(Default)]
struct Shard {
    u64s: Mutex<HashMap<usize, Vec<Vec<u64>>>>,
    u128s: Mutex<HashMap<usize, Vec<Vec<u128>>>>,
}

struct Pool {
    shards: [Shard; SHARD_COUNT],
    fresh: AtomicU64,
    reused: AtomicU64,
    recycled: AtomicU64,
}

fn pool() -> &'static Pool {
    static POOL: OnceLock<Pool> = OnceLock::new();
    POOL.get_or_init(|| Pool {
        shards: Default::default(),
        fresh: AtomicU64::new(0),
        reused: AtomicU64::new(0),
        recycled: AtomicU64::new(0),
    })
}

/// The shard this thread checks first (assigned round-robin on first use).
fn home_shard() -> usize {
    static NEXT: AtomicUsize = AtomicUsize::new(0);
    thread_local! {
        static HOME: usize = NEXT.fetch_add(1, Ordering::Relaxed) % SHARD_COUNT;
    }
    HOME.with(|h| *h)
}

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    // The pool holds plain buffers; a panic elsewhere cannot leave them in
    // an invalid state, so poisoned locks are safe to re-enter.
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Counters describing pool traffic since process start.
///
/// `fresh` counts buffers the pool had to obtain from the allocator,
/// `reused` counts free-list hits, and `recycled` counts buffers returned.
/// The zero-alloc steady-state property is `Δfresh == 0` over a warm
/// evaluation loop while `Δreused > 0`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PoolStats {
    pub fresh: u64,
    pub reused: u64,
    pub recycled: u64,
}

/// Facade for the process-global polynomial buffer pool.
pub struct PolyPool;

impl PolyPool {
    /// A `len`-element buffer with **unspecified contents** (debug builds
    /// poison recycled memory): the caller must overwrite every element
    /// before reading. Use for rows that are fully written by construction.
    // choco-lint: ct-safe
    pub fn take_scratch(len: usize) -> Vec<u64> {
        if len == 0 {
            return Vec::new();
        }
        let p = pool();
        // Probe the home shard first, then steal from siblings: workers
        // spawned by `par` are short-lived, so a buffer recycled under one
        // shard must stay reachable from the next worker generation.
        for probe in 0..SHARD_COUNT {
            let shard = &p.shards[(home_shard() + probe) % SHARD_COUNT];
            let mut classes = lock(&shard.u64s);
            if let Some(v) = classes.get_mut(&len).and_then(|l| l.pop()) {
                p.reused.fetch_add(1, Ordering::Relaxed);
                return v;
            }
        }
        p.fresh.fetch_add(1, Ordering::Relaxed);
        vec![0u64; len]
    }

    /// A zero-filled `len`-element buffer.
    // choco-lint: ct-safe
    pub fn take_zeroed(len: usize) -> Vec<u64> {
        let mut v = Self::take_scratch(len);
        v.fill(0);
        v
    }

    /// A buffer holding a copy of `src`.
    // choco-lint: ct-safe
    pub fn take_copy(src: &[u64]) -> Vec<u64> {
        let mut v = Self::take_scratch(src.len());
        v.copy_from_slice(src);
        v
    }

    /// A zero-filled `u128` accumulator buffer.
    // choco-lint: ct-safe
    pub fn take_zeroed_u128(len: usize) -> Vec<u128> {
        if len == 0 {
            return Vec::new();
        }
        let p = pool();
        for probe in 0..SHARD_COUNT {
            let shard = &p.shards[(home_shard() + probe) % SHARD_COUNT];
            let mut classes = lock(&shard.u128s);
            if let Some(mut v) = classes.get_mut(&len).and_then(|l| l.pop()) {
                p.reused.fetch_add(1, Ordering::Relaxed);
                v.fill(0);
                return v;
            }
        }
        p.fresh.fetch_add(1, Ordering::Relaxed);
        vec![0u128; len]
    }

    /// Returns a buffer to the pool (or the allocator once the class cap
    /// is reached). Zero-length buffers are dropped outright.
    // choco-lint: ct-safe
    pub fn recycle(v: Vec<u64>) {
        let len = v.len();
        if len == 0 {
            return;
        }
        #[cfg(debug_assertions)]
        let v = {
            let mut v = v;
            v.fill(POISON_U64);
            v
        };
        let p = pool();
        let shard = &p.shards[home_shard()];
        let mut classes = lock(&shard.u64s);
        let list = classes.entry(len).or_default();
        if list.len() < MAX_CACHED_PER_CLASS {
            list.push(v);
            p.recycled.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Returns a `u128` accumulator buffer to the pool.
    // choco-lint: ct-safe
    pub fn recycle_u128(v: Vec<u128>) {
        let len = v.len();
        if len == 0 {
            return;
        }
        #[cfg(debug_assertions)]
        let v = {
            let mut v = v;
            v.fill(POISON_U128);
            v
        };
        let p = pool();
        let shard = &p.shards[home_shard()];
        let mut classes = lock(&shard.u128s);
        let list = classes.entry(len).or_default();
        if list.len() < MAX_CACHED_PER_CLASS {
            list.push(v);
            p.recycled.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Traffic counters (monotone since process start).
    pub fn stats() -> PoolStats {
        let p = pool();
        PoolStats {
            fresh: p.fresh.load(Ordering::Relaxed),
            reused: p.reused.load(Ordering::Relaxed),
            recycled: p.recycled.load(Ordering::Relaxed),
        }
    }

    /// Drops every cached buffer (counters are preserved). Mainly for
    /// tests that want a cold pool.
    pub fn clear() {
        let p = pool();
        for shard in &p.shards {
            lock(&shard.u64s).clear();
            lock(&shard.u128s).clear();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recycled_buffers_are_reused() {
        let before = PolyPool::stats();
        let v = PolyPool::take_zeroed(4093); // length no other test uses
        PolyPool::recycle(v);
        let v2 = PolyPool::take_zeroed(4093);
        assert_eq!(v2.len(), 4093);
        assert!(v2.iter().all(|&x| x == 0), "take_zeroed must clear poison");
        let after = PolyPool::stats();
        assert!(
            after.reused > before.reused,
            "second take must hit the pool"
        );
        PolyPool::recycle(v2);
    }

    #[test]
    fn take_copy_round_trips() {
        let src: Vec<u64> = (0..533).collect();
        let v = PolyPool::take_copy(&src);
        assert_eq!(v, src);
        PolyPool::recycle(v);
        let v2 = PolyPool::take_copy(&src);
        assert_eq!(v2, src);
        PolyPool::recycle(v2);
    }

    #[test]
    fn u128_accumulators_come_back_zeroed() {
        let mut v = PolyPool::take_zeroed_u128(777);
        v.iter_mut().for_each(|x| *x = u128::MAX);
        PolyPool::recycle_u128(v);
        let v2 = PolyPool::take_zeroed_u128(777);
        assert!(v2.iter().all(|&x| x == 0));
        PolyPool::recycle_u128(v2);
    }

    #[test]
    fn zero_length_requests_are_cheap_noops() {
        let before = PolyPool::stats();
        let v = PolyPool::take_scratch(0);
        assert!(v.is_empty());
        PolyPool::recycle(v);
        let after = PolyPool::stats();
        assert_eq!(before, after, "empty buffers never touch the pool");
    }

    #[test]
    fn steady_state_take_recycle_is_allocation_free() {
        // Warm one class, then hammer it: fresh must not move.
        let v = PolyPool::take_zeroed(911);
        PolyPool::recycle(v);
        let warm = PolyPool::stats();
        for _ in 0..100 {
            let v = PolyPool::take_scratch(911);
            PolyPool::recycle(v);
        }
        let end = PolyPool::stats();
        assert_eq!(end.fresh, warm.fresh, "steady state must not allocate");
        assert!(end.reused >= warm.reused + 100);
    }
}
