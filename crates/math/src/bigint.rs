//! Arbitrary-precision unsigned integers on 64-bit limbs.
//!
//! The HE stack needs exact integers a few hundred bits wide: CRT
//! composition of RNS residues (`k ≤ 16` primes of ≤ 60 bits), the `t/q`
//! scale-and-round in BFV decryption and multiplication, and centered-norm
//! noise measurement. [`UBig`] provides exactly those operations — schoolbook
//! multiplication and Knuth Algorithm D division — with no dependencies.

use std::cmp::Ordering;

/// An unsigned big integer stored as little-endian 64-bit limbs with no
/// trailing zero limbs (the canonical form of zero is an empty limb vector).
#[derive(Debug, Clone, PartialEq, Eq, Default, Hash)]
pub struct UBig {
    limbs: Vec<u64>,
}

impl UBig {
    /// The value 0.
    pub fn zero() -> Self {
        UBig { limbs: Vec::new() }
    }

    /// The value 1.
    pub fn one() -> Self {
        UBig { limbs: vec![1] }
    }

    /// Constructs from a `u64`.
    pub fn from_u64(v: u64) -> Self {
        if v == 0 {
            Self::zero()
        } else {
            UBig { limbs: vec![v] }
        }
    }

    /// Constructs from a `u128`.
    pub fn from_u128(v: u128) -> Self {
        let lo = v as u64;
        let hi = (v >> 64) as u64;
        let mut x = UBig {
            limbs: vec![lo, hi],
        };
        x.normalize();
        x
    }

    /// Constructs from little-endian limbs (trailing zeros allowed).
    pub fn from_limbs(limbs: &[u64]) -> Self {
        let mut x = UBig {
            limbs: limbs.to_vec(),
        };
        x.normalize();
        x
    }

    /// Borrows the little-endian limbs.
    pub fn limbs(&self) -> &[u64] {
        &self.limbs
    }

    /// Returns `true` iff the value is 0.
    pub fn is_zero(&self) -> bool {
        self.limbs.is_empty()
    }

    /// Number of significant bits (0 for the value 0).
    pub fn bit_len(&self) -> u32 {
        match self.limbs.last() {
            None => 0,
            Some(&top) => self.limbs.len() as u32 * 64 - top.leading_zeros(),
        }
    }

    /// Approximate base-2 logarithm (`-inf` is represented as `f64::NEG_INFINITY`
    /// for the value 0).
    pub fn log2(&self) -> f64 {
        match self.limbs.len() {
            0 => f64::NEG_INFINITY,
            1 => (self.limbs[0] as f64).log2(),
            len => {
                // Use the top 128 bits for the mantissa.
                let hi = self.limbs[len - 1];
                let lo = self.limbs[len - 2];
                let v = ((hi as u128) << 64) | lo as u128;
                let exp = (len as i64 - 2) * 64;
                (v as f64).log2() + exp as f64
            }
        }
    }

    /// Approximate conversion to `f64` (exact for values below 2^53).
    pub fn to_f64(&self) -> f64 {
        let mut acc = 0.0f64;
        for &l in self.limbs.iter().rev() {
            acc = acc * 18446744073709551616.0 + l as f64;
        }
        acc
    }

    fn normalize(&mut self) {
        while self.limbs.last() == Some(&0) {
            self.limbs.pop();
        }
    }

    /// Converts to `u64`, panicking on overflow.
    ///
    /// # Panics
    ///
    /// Panics if the value does not fit in 64 bits.
    pub fn to_u64(&self) -> u64 {
        match self.limbs.len() {
            0 => 0,
            1 => self.limbs[0],
            _ => panic!("UBig does not fit in u64"),
        }
    }

    /// Sum of two big integers.
    pub fn add(&self, other: &UBig) -> UBig {
        let (a, b) = if self.limbs.len() >= other.limbs.len() {
            (&self.limbs, &other.limbs)
        } else {
            (&other.limbs, &self.limbs)
        };
        let mut out = Vec::with_capacity(a.len() + 1);
        let mut carry = 0u64;
        for i in 0..a.len() {
            let bi = b.get(i).copied().unwrap_or(0);
            let (s1, c1) = a[i].overflowing_add(bi);
            let (s2, c2) = s1.overflowing_add(carry);
            out.push(s2);
            carry = (c1 as u64) + (c2 as u64);
        }
        if carry > 0 {
            out.push(carry);
        }
        let mut r = UBig { limbs: out };
        r.normalize();
        r
    }

    /// Adds a `u64`.
    pub fn add_u64(&self, v: u64) -> UBig {
        self.add(&UBig::from_u64(v))
    }

    /// Difference `self - other`.
    ///
    /// # Panics
    ///
    /// Panics if `other > self` (results are unsigned).
    pub fn sub(&self, other: &UBig) -> UBig {
        assert!(self >= other, "UBig subtraction underflow");
        let mut out = Vec::with_capacity(self.limbs.len());
        let mut borrow = 0u64;
        for i in 0..self.limbs.len() {
            let bi = other.limbs.get(i).copied().unwrap_or(0);
            let (d1, b1) = self.limbs[i].overflowing_sub(bi);
            let (d2, b2) = d1.overflowing_sub(borrow);
            out.push(d2);
            borrow = (b1 as u64) + (b2 as u64);
        }
        debug_assert_eq!(borrow, 0);
        let mut r = UBig { limbs: out };
        r.normalize();
        r
    }

    /// Product of two big integers (schoolbook; operands here are ≤ ~8 limbs).
    pub fn mul(&self, other: &UBig) -> UBig {
        if self.is_zero() || other.is_zero() {
            return UBig::zero();
        }
        let mut out = vec![0u64; self.limbs.len() + other.limbs.len()];
        for (i, &a) in self.limbs.iter().enumerate() {
            let mut carry = 0u128;
            for (j, &b) in other.limbs.iter().enumerate() {
                let cur = out[i + j] as u128 + a as u128 * b as u128 + carry;
                out[i + j] = cur as u64;
                carry = cur >> 64;
            }
            let mut k = i + other.limbs.len();
            while carry > 0 {
                let cur = out[k] as u128 + carry;
                out[k] = cur as u64;
                carry = cur >> 64;
                k += 1;
            }
        }
        let mut r = UBig { limbs: out };
        r.normalize();
        r
    }

    /// Product with a `u64`.
    pub fn mul_u64(&self, v: u64) -> UBig {
        self.mul(&UBig::from_u64(v))
    }

    /// Left shift by `bits`.
    pub fn shl(&self, bits: u32) -> UBig {
        if self.is_zero() {
            return UBig::zero();
        }
        let limb_shift = (bits / 64) as usize;
        let bit_shift = bits % 64;
        let mut out = vec![0u64; limb_shift];
        if bit_shift == 0 {
            out.extend_from_slice(&self.limbs);
        } else {
            let mut carry = 0u64;
            for &l in &self.limbs {
                out.push((l << bit_shift) | carry);
                carry = l >> (64 - bit_shift);
            }
            if carry > 0 {
                out.push(carry);
            }
        }
        let mut r = UBig { limbs: out };
        r.normalize();
        r
    }

    /// Right shift by `bits`.
    pub fn shr(&self, bits: u32) -> UBig {
        let limb_shift = (bits / 64) as usize;
        if limb_shift >= self.limbs.len() {
            return UBig::zero();
        }
        let bit_shift = bits % 64;
        let src = &self.limbs[limb_shift..];
        let mut out = Vec::with_capacity(src.len());
        if bit_shift == 0 {
            out.extend_from_slice(src);
        } else {
            for i in 0..src.len() {
                let hi = src.get(i + 1).copied().unwrap_or(0);
                out.push((src[i] >> bit_shift) | (hi << (64 - bit_shift)));
            }
        }
        let mut r = UBig { limbs: out };
        r.normalize();
        r
    }

    /// Remainder modulo a `u64` divisor.
    ///
    /// # Panics
    ///
    /// Panics if `d == 0`.
    pub fn rem_u64(&self, d: u64) -> u64 {
        assert!(d != 0, "division by zero");
        let mut rem: u128 = 0;
        for &l in self.limbs.iter().rev() {
            rem = ((rem << 64) | l as u128) % d as u128;
        }
        rem as u64
    }

    /// Quotient and remainder dividing by a `u64`.
    pub fn divrem_u64(&self, d: u64) -> (UBig, u64) {
        assert!(d != 0, "division by zero");
        let mut q = vec![0u64; self.limbs.len()];
        let mut rem: u128 = 0;
        for i in (0..self.limbs.len()).rev() {
            let cur = (rem << 64) | self.limbs[i] as u128;
            q[i] = (cur / d as u128) as u64;
            rem = cur % d as u128;
        }
        let mut quo = UBig { limbs: q };
        quo.normalize();
        (quo, rem as u64)
    }

    /// Quotient and remainder `(self / d, self % d)` via Knuth Algorithm D.
    ///
    /// # Panics
    ///
    /// Panics if `d` is zero.
    pub fn divrem(&self, d: &UBig) -> (UBig, UBig) {
        assert!(!d.is_zero(), "division by zero");
        if self < d {
            return (UBig::zero(), self.clone());
        }
        if d.limbs.len() == 1 {
            let (q, r) = self.divrem_u64(d.limbs[0]);
            return (q, UBig::from_u64(r));
        }
        // D1: normalize so the divisor's top limb has its high bit set.
        let shift = d.limbs.last().unwrap().leading_zeros();
        let u = self.shl(shift);
        let v = d.shl(shift);
        let n = v.limbs.len();
        let mut u_limbs = u.limbs.clone();
        u_limbs.push(0); // room for the virtual high limb
        let m = u_limbs.len() - n - 1;
        let vn1 = v.limbs[n - 1];
        let vn2 = v.limbs[n - 2];
        let mut q_limbs = vec![0u64; m + 1];

        for j in (0..=m).rev() {
            // D3: estimate qhat from the top two limbs.
            let num = ((u_limbs[j + n] as u128) << 64) | u_limbs[j + n - 1] as u128;
            let mut qhat = num / vn1 as u128;
            let mut rhat = num % vn1 as u128;
            while qhat >> 64 != 0
                || qhat * vn2 as u128 > ((rhat << 64) | u_limbs[j + n - 2] as u128)
            {
                qhat -= 1;
                rhat += vn1 as u128;
                if rhat >> 64 != 0 {
                    break;
                }
            }
            // D4: multiply and subtract.
            let mut borrow = 0i128;
            let mut carry = 0u128;
            for i in 0..n {
                let p = qhat * v.limbs[i] as u128 + carry;
                carry = p >> 64;
                let sub = u_limbs[j + i] as i128 - (p as u64) as i128 - borrow;
                u_limbs[j + i] = sub as u64;
                borrow = if sub < 0 { 1 } else { 0 };
            }
            let sub = u_limbs[j + n] as i128 - carry as i128 - borrow;
            u_limbs[j + n] = sub as u64;

            if sub < 0 {
                // D6: qhat was one too large; add the divisor back.
                qhat -= 1;
                let mut carry = 0u128;
                for i in 0..n {
                    let s = u_limbs[j + i] as u128 + v.limbs[i] as u128 + carry;
                    u_limbs[j + i] = s as u64;
                    carry = s >> 64;
                }
                u_limbs[j + n] = (u_limbs[j + n] as u128 + carry) as u64;
            }
            q_limbs[j] = qhat as u64;
        }

        let mut quo = UBig { limbs: q_limbs };
        quo.normalize();
        let mut rem = UBig {
            limbs: u_limbs[..n].to_vec(),
        };
        rem.normalize();
        (quo, rem.shr(shift))
    }

    /// Rounded division `round(self / d)` (round-half-up).
    pub fn div_round(&self, d: &UBig) -> UBig {
        let (q, r) = self.divrem(d);
        // round up when 2r >= d
        if r.mul_u64(2) >= *d {
            q.add_u64(1)
        } else {
            q
        }
    }
}

impl PartialOrd for UBig {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for UBig {
    fn cmp(&self, other: &Self) -> Ordering {
        if self.limbs.len() != other.limbs.len() {
            return self.limbs.len().cmp(&other.limbs.len());
        }
        for i in (0..self.limbs.len()).rev() {
            match self.limbs[i].cmp(&other.limbs[i]) {
                Ordering::Equal => continue,
                ord => return ord,
            }
        }
        Ordering::Equal
    }
}

impl From<u64> for UBig {
    fn from(v: u64) -> Self {
        UBig::from_u64(v)
    }
}

impl std::fmt::Display for UBig {
    /// Decimal rendering (slow path, used only in debugging output).
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.is_zero() {
            return write!(f, "0");
        }
        let mut digits = Vec::new();
        let mut cur = self.clone();
        while !cur.is_zero() {
            let (q, r) = cur.divrem_u64(10);
            digits.push(b'0' + r as u8);
            cur = q;
        }
        digits.reverse();
        write!(f, "{}", std::str::from_utf8(&digits).unwrap())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_and_one_normalize() {
        assert!(UBig::zero().is_zero());
        assert_eq!(UBig::from_limbs(&[0, 0, 0]), UBig::zero());
        assert_eq!(UBig::one().to_u64(), 1);
        assert_eq!(UBig::zero().bit_len(), 0);
        assert_eq!(UBig::one().bit_len(), 1);
    }

    #[test]
    fn add_with_carries() {
        let a = UBig::from_limbs(&[u64::MAX, u64::MAX]);
        let b = UBig::one();
        assert_eq!(a.add(&b), UBig::from_limbs(&[0, 0, 1]));
    }

    #[test]
    fn sub_with_borrows() {
        let a = UBig::from_limbs(&[0, 0, 1]);
        let b = UBig::one();
        assert_eq!(a.sub(&b), UBig::from_limbs(&[u64::MAX, u64::MAX]));
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn sub_underflow_panics() {
        UBig::one().sub(&UBig::from_u64(2));
    }

    #[test]
    fn mul_matches_u128() {
        let a = 0xFFFF_FFFF_FFFF_FFFFu64;
        let b = 0x1234_5678_9ABC_DEF0u64;
        let prod = UBig::from_u64(a).mul(&UBig::from_u64(b));
        assert_eq!(prod, UBig::from_u128(a as u128 * b as u128));
    }

    #[test]
    fn shifts_roundtrip() {
        let a = UBig::from_limbs(&[0x0123_4567_89AB_CDEF, 0xFEDC_BA98_7654_3210]);
        for s in [1u32, 13, 64, 65, 100] {
            assert_eq!(a.shl(s).shr(s), a);
        }
    }

    #[test]
    fn divrem_reconstructs_dividend() {
        let a = UBig::from_limbs(&[0xDEAD_BEEF, 0xCAFE_BABE, 0x1234_5678, 0x9]);
        let d = UBig::from_limbs(&[0xFFFF_FFFF_0000_0001, 0x3]);
        let (q, r) = a.divrem(&d);
        assert!(r < d);
        assert_eq!(q.mul(&d).add(&r), a);
    }

    #[test]
    fn divrem_u64_agrees_with_divrem() {
        let a = UBig::from_limbs(&[123, 456, 789]);
        let d = 1_000_003u64;
        let (q1, r1) = a.divrem_u64(d);
        let (q2, r2) = a.divrem(&UBig::from_u64(d));
        assert_eq!(q1, q2);
        assert_eq!(UBig::from_u64(r1), r2);
        assert_eq!(a.rem_u64(d), r1);
    }

    #[test]
    fn division_add_back_branch() {
        // Crafted so the Knuth D "add back" (step D6) path executes:
        // dividend top limbs make qhat overestimate.
        let u = UBig::from_limbs(&[0, 0, 0x8000_0000_0000_0000, 0x7fff_ffff_ffff_ffff]);
        let v = UBig::from_limbs(&[1, 0, 0x8000_0000_0000_0000]);
        let (q, r) = u.divrem(&v);
        assert!(r < v);
        assert_eq!(q.mul(&v).add(&r), u);
    }

    #[test]
    fn div_round_half_up() {
        let ten = UBig::from_u64(10);
        assert_eq!(UBig::from_u64(24).div_round(&ten).to_u64(), 2);
        assert_eq!(UBig::from_u64(25).div_round(&ten).to_u64(), 3);
        assert_eq!(UBig::from_u64(26).div_round(&ten).to_u64(), 3);
    }

    #[test]
    fn ordering_is_numeric() {
        let a = UBig::from_limbs(&[0, 1]); // 2^64
        let b = UBig::from_u64(u64::MAX);
        assert!(a > b);
        assert!(b < a);
        assert_eq!(a.cmp(&a), Ordering::Equal);
    }

    #[test]
    fn display_decimal() {
        let a = UBig::from_u128(123_456_789_012_345_678_901_234_567_890u128);
        assert_eq!(a.to_string(), "123456789012345678901234567890");
        assert_eq!(UBig::zero().to_string(), "0");
    }

    #[test]
    fn log2_tracks_bit_len() {
        let a = UBig::from_u64(1 << 40);
        assert!((a.log2() - 40.0).abs() < 1e-9);
        let b = UBig::one().shl(200);
        assert!((b.log2() - 200.0).abs() < 1e-6);
    }
}
