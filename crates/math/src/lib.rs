//! Number-theoretic and polynomial substrate for the CHOCO reproduction.
//!
//! This crate provides everything the HE layer (`choco-he`) needs and that
//! the paper obtained from Microsoft SEAL's internals:
//!
//! * 64-bit modular arithmetic ([`modops`])
//! * deterministic Miller–Rabin primality and NTT-friendly prime generation
//!   ([`prime`])
//! * negacyclic Number Theoretic Transforms over `Z_q[x]/(x^N + 1)`
//!   ([`ntt`])
//! * an unsigned big-integer type with exact division ([`bigint`])
//! * Residue Number System bases with CRT composition ([`rns`])
//! * a complex FFT for the CKKS canonical embedding ([`fft`])
//! * polynomial helpers over a single modulus ([`poly`])
//! * a dependency-free scoped-thread worker pool for slice-parallel kernels
//!   ([`par`])
//! * runtime-dispatched SIMD butterflies and dyadic ops ([`simd`])
//! * a size-classed buffer pool for zero-allocation steady state ([`pool`])
//!
//! Everything is implemented from scratch; no external arithmetic crates are
//! used so that the whole cryptographic stack is auditable in-repo.
//!
//! # Example
//!
//! ```
//! use choco_math::{ntt::NttTable, prime::generate_ntt_primes};
//!
//! let q = generate_ntt_primes(30, 1024, 1)[0];
//! let table = NttTable::new(1024, q).unwrap();
//! let mut a: Vec<u64> = (0..1024u64).collect();
//! let orig = a.clone();
//! table.forward(&mut a);
//! table.inverse(&mut a);
//! assert_eq!(a, orig);
//! ```

// Deny (not forbid) so that exactly one audited module — `simd`, which
// confines `core::arch` intrinsics behind runtime feature detection — can
// opt back in with a module-local allow. Every unsafe token is pinned by
// count in lint.toml (UNSAFE001/UNSAFE002); all other modules remain
// unsafe-free.
#![deny(unsafe_code)]
// Reference-style loops index multiple arrays in lockstep; the index
// form is clearer than zipped iterators for these numeric kernels.
#![allow(clippy::needless_range_loop)]

pub mod bigint;
pub mod fft;
pub mod modops;
pub mod ntt;
pub mod par;
pub mod poly;
pub mod pool;
pub mod prime;
pub mod rns;
pub mod simd;

pub use bigint::UBig;
pub use ntt::NttTable;
pub use rns::RnsBasis;
