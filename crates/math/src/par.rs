//! A dependency-free scoped-thread worker pool for the HE hot paths.
//!
//! The repo's offline-build constraint rules out rayon, so this module
//! provides the minimal slice-parallel primitives the kernel layers need,
//! built on `std::thread::scope`. Work is split into one contiguous chunk
//! per worker, each chunk owning a disjoint sub-slice, so the result is
//! **bit-identical** to the sequential order regardless of thread count:
//! every item is computed by exactly the same pure function and written to
//! exactly the same slot.
//!
//! The worker count comes from, in priority order:
//!
//! 1. [`set_num_threads`] (programmatic override, used by benches/tests),
//! 2. the `CHOCO_THREADS` environment variable,
//! 3. [`std::thread::available_parallelism`].
//!
//! With one worker every primitive degrades to a plain sequential loop (no
//! threads are spawned). Nested parallelism is suppressed: a task already
//! running on a pool worker executes further `par_*` calls sequentially, so
//! batching at the ciphertext level composes with per-residue parallelism
//! without spawning `threads²` workers.

use std::cell::Cell;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

/// Hard cap on the worker count (sanity bound for `CHOCO_THREADS`).
pub const MAX_THREADS: usize = 256;

/// Programmatic override; 0 means "not set".
static OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Environment/hardware default, resolved once.
static DEFAULT: OnceLock<usize> = OnceLock::new();

thread_local! {
    /// True while the current thread is a pool worker (suppresses nesting).
    static IN_WORKER: Cell<bool> = const { Cell::new(false) };
}

fn default_threads() -> usize {
    *DEFAULT.get_or_init(|| {
        std::env::var("CHOCO_THREADS")
            .ok()
            .and_then(|s| s.trim().parse::<usize>().ok())
            .filter(|&n| n >= 1)
            .unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map(|n| n.get())
                    .unwrap_or(1)
            })
            .min(MAX_THREADS)
    })
}

/// The worker count `par_*` primitives will use on this thread right now.
///
/// Returns 1 inside a pool worker (nested parallelism is sequential).
pub fn num_threads() -> usize {
    if IN_WORKER.with(Cell::get) {
        return 1;
    }
    match OVERRIDE.load(Ordering::Relaxed) {
        0 => default_threads(),
        n => n,
    }
}

/// Overrides the worker count process-wide; `0` restores the
/// `CHOCO_THREADS`/hardware default. Values are clamped to
/// `[1, MAX_THREADS]` (except the reset value 0).
pub fn set_num_threads(n: usize) {
    let v = if n == 0 { 0 } else { n.min(MAX_THREADS) };
    OVERRIDE.store(v, Ordering::Relaxed);
}

/// Applies `f(index, item)` to every item, splitting the slice across the
/// pool. Each worker owns a disjoint contiguous chunk, so the output is
/// bit-identical to the sequential loop for any thread count.
pub fn par_for_each_mut<T, F>(items: &mut [T], f: F)
where
    T: Send,
    F: Fn(usize, &mut T) + Sync,
{
    let threads = num_threads().min(items.len());
    if threads <= 1 {
        for (i, item) in items.iter_mut().enumerate() {
            f(i, item);
        }
        return;
    }
    let chunk = items.len().div_ceil(threads);
    std::thread::scope(|s| {
        for (c, slice) in items.chunks_mut(chunk).enumerate() {
            let f = &f;
            s.spawn(move || {
                IN_WORKER.with(|w| w.set(true));
                for (i, item) in slice.iter_mut().enumerate() {
                    f(c * chunk + i, item);
                }
            });
        }
    });
}

/// Maps `f(index, item)` over the slice in parallel, preserving order.
pub fn par_map<I, O, F>(items: &[I], f: F) -> Vec<O>
where
    I: Sync,
    O: Send,
    F: Fn(usize, &I) -> O + Sync,
{
    let threads = num_threads().min(items.len());
    if threads <= 1 {
        return items.iter().enumerate().map(|(i, x)| f(i, x)).collect();
    }
    let chunk = items.len().div_ceil(threads);
    let mut out: Vec<Option<O>> = (0..items.len()).map(|_| None).collect();
    std::thread::scope(|s| {
        for (c, (in_chunk, out_chunk)) in items.chunks(chunk).zip(out.chunks_mut(chunk)).enumerate()
        {
            let f = &f;
            s.spawn(move || {
                IN_WORKER.with(|w| w.set(true));
                for (i, (x, slot)) in in_chunk.iter().zip(out_chunk.iter_mut()).enumerate() {
                    *slot = Some(f(c * chunk + i, x));
                }
            });
        }
    });
    out.into_iter()
        .map(|o| o.expect("par_map: every slot is written by exactly one worker"))
        .collect()
}

/// Maps `f(i)` over `0..count` in parallel, preserving order. Convenience
/// for loops indexed by residue/row number rather than by a slice.
pub fn par_map_range<O, F>(count: usize, f: F) -> Vec<O>
where
    O: Send,
    F: Fn(usize) -> O + Sync,
{
    let threads = num_threads().min(count);
    if threads <= 1 {
        return (0..count).map(f).collect();
    }
    let chunk = count.div_ceil(threads);
    let mut out: Vec<Option<O>> = (0..count).map(|_| None).collect();
    std::thread::scope(|s| {
        for (c, out_chunk) in out.chunks_mut(chunk).enumerate() {
            let f = &f;
            s.spawn(move || {
                IN_WORKER.with(|w| w.set(true));
                for (i, slot) in out_chunk.iter_mut().enumerate() {
                    *slot = Some(f(c * chunk + i));
                }
            });
        }
    });
    out.into_iter()
        .map(|o| o.expect("par_map_range: every slot is written by exactly one worker"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_and_parallel_agree() {
        let base: Vec<u64> = (0..1000).collect();
        for threads in [1usize, 2, 4, 7] {
            set_num_threads(threads);
            let mut a = base.clone();
            par_for_each_mut(&mut a, |i, x| {
                *x = x.wrapping_mul(31).wrapping_add(i as u64)
            });
            let mapped = par_map(&base, |i, &x| x.wrapping_mul(31).wrapping_add(i as u64));
            let ranged = par_map_range(base.len(), |i| {
                base[i].wrapping_mul(31).wrapping_add(i as u64)
            });
            set_num_threads(1);
            let expect: Vec<u64> = base
                .iter()
                .enumerate()
                .map(|(i, &x)| x.wrapping_mul(31).wrapping_add(i as u64))
                .collect();
            assert_eq!(a, expect, "for_each_mut with {threads} threads");
            assert_eq!(mapped, expect, "map with {threads} threads");
            assert_eq!(ranged, expect, "map_range with {threads} threads");
        }
        set_num_threads(0);
    }

    #[test]
    fn empty_and_single_item_inputs() {
        set_num_threads(4);
        let mut empty: Vec<u64> = vec![];
        par_for_each_mut(&mut empty, |_, _| unreachable!());
        assert!(par_map(&empty, |_, &x: &u64| x).is_empty());
        assert!(par_map_range(0, |i| i).is_empty());
        let mut one = vec![5u64];
        par_for_each_mut(&mut one, |_, x| *x += 1);
        assert_eq!(one, vec![6]);
        set_num_threads(0);
    }

    #[test]
    fn nested_calls_run_sequentially() {
        set_num_threads(4);
        let outer: Vec<usize> = (0..8).collect();
        // The inner par_map must not deadlock or explode: inside a worker it
        // degrades to a sequential loop.
        let result = par_map(&outer, |_, &x| {
            let inner: Vec<usize> = (0..4).collect();
            par_map(&inner, |_, &y| x * 10 + y).iter().sum::<usize>()
        });
        let expect: Vec<usize> = outer.iter().map(|&x| 4 * (x * 10) + 6).collect();
        assert_eq!(result, expect);
        set_num_threads(0);
    }

    #[test]
    fn override_clamps_and_resets() {
        set_num_threads(100_000);
        assert_eq!(num_threads(), MAX_THREADS);
        set_num_threads(0);
        assert!(num_threads() >= 1);
    }
}
