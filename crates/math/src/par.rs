//! A dependency-free scoped-thread worker pool for the HE hot paths.
//!
//! The repo's offline-build constraint rules out rayon, so this module
//! provides the minimal slice-parallel primitives the kernel layers need,
//! built on `std::thread::scope`. Work is split into one contiguous chunk
//! per worker, each chunk owning a disjoint sub-slice, so the result is
//! **bit-identical** to the sequential order regardless of thread count:
//! every item is computed by exactly the same pure function and written to
//! exactly the same slot.
//!
//! The worker count comes from, in priority order:
//!
//! 1. [`set_num_threads`] (programmatic override, used by benches/tests),
//! 2. the `CHOCO_THREADS` environment variable,
//! 3. [`std::thread::available_parallelism`].
//!
//! With one worker every primitive degrades to a plain sequential loop (no
//! threads are spawned). Nested parallelism is suppressed: a task already
//! running on a pool worker executes further `par_*` calls sequentially, so
//! batching at the ciphertext level composes with per-residue parallelism
//! without spawning `threads²` workers.

use std::cell::Cell;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

/// Hard cap on the worker count (sanity bound for `CHOCO_THREADS`).
pub const MAX_THREADS: usize = 256;

/// Programmatic override; 0 means "not set".
static OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Seed for deterministic schedule perturbation; 0 means "off".
static PERTURB: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);

/// Environment/hardware default, resolved once.
static DEFAULT: OnceLock<usize> = OnceLock::new();

thread_local! {
    /// True while the current thread is a pool worker (suppresses nesting).
    static IN_WORKER: Cell<bool> = const { Cell::new(false) };
}

fn default_threads() -> usize {
    *DEFAULT.get_or_init(|| {
        std::env::var("CHOCO_THREADS")
            .ok()
            .and_then(|s| s.trim().parse::<usize>().ok())
            .filter(|&n| n >= 1)
            .unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map(|n| n.get())
                    .unwrap_or(1)
            })
            .min(MAX_THREADS)
    })
}

/// The worker count `par_*` primitives will use on this thread right now.
///
/// Returns 1 inside a pool worker (nested parallelism is sequential).
pub fn num_threads() -> usize {
    if IN_WORKER.with(Cell::get) {
        return 1;
    }
    match OVERRIDE.load(Ordering::Relaxed) {
        0 => default_threads(),
        n => n,
    }
}

/// Overrides the worker count process-wide; `0` restores the
/// `CHOCO_THREADS`/hardware default. Values are clamped to
/// `[1, MAX_THREADS]` (except the reset value 0).
pub fn set_num_threads(n: usize) {
    let v = if n == 0 { 0 } else { n.min(MAX_THREADS) };
    OVERRIDE.store(v, Ordering::Relaxed);
}

/// Perturbs the work schedule deterministically from `seed` (0 disables).
///
/// With a non-zero seed the chunk boundaries are jittered and the spawn
/// order of workers is permuted — both derived purely from the seed, so a
/// given seed always produces the same schedule. The *results* of every
/// `par_*` primitive must remain bit-identical to the sequential loop no
/// matter the seed; the race tests sweep seeds to prove that the disjoint
/// index→slot ownership really is schedule-independent.
pub fn set_schedule_perturbation(seed: u64) {
    PERTURB.store(seed, Ordering::Relaxed);
}

fn xorshift64(mut s: u64) -> u64 {
    s ^= s << 13;
    s ^= s >> 7;
    s ^= s << 17;
    s
}

/// Splits `0..len` into up to `threads` non-empty contiguous ranges.
///
/// Without perturbation the split is the plain equal-chunk plan. With a
/// non-zero perturbation seed, each interior boundary moves by a
/// seed-derived offset of up to a quarter chunk (kept strictly increasing),
/// and the returned order of ranges is a seed-derived permutation — which
/// is also the spawn order, so workers start on different parts of the
/// slice from run configuration to run configuration.
fn chunk_plan(len: usize, threads: usize) -> Vec<(usize, usize)> {
    let chunk = len.div_ceil(threads);
    let mut bounds: Vec<usize> = (0..=threads).map(|c| (c * chunk).min(len)).collect();
    let seed = PERTURB.load(Ordering::Relaxed);
    if seed != 0 {
        let mut s = seed;
        let jitter = (chunk / 4).max(1);
        // Only interior boundaries move; the 0 and `len` endpoints are fixed.
        for b in &mut bounds[1..threads] {
            s = xorshift64(s);
            let delta = (s % (2 * jitter as u64 + 1)) as isize - jitter as isize;
            *b = b
                .saturating_add_signed(delta)
                .clamp(1, len.saturating_sub(1).max(1));
        }
        bounds.sort_unstable();
    }
    bounds.dedup();
    let mut ranges: Vec<(usize, usize)> = bounds
        .windows(2)
        .filter(|w| w[0] < w[1])
        .map(|w| (w[0], w[1]))
        .collect();
    if seed != 0 {
        // Fisher–Yates from the same stream: permute the spawn order.
        let mut s = xorshift64(seed ^ 0x9e37_79b9_7f4a_7c15);
        for i in (1..ranges.len()).rev() {
            s = xorshift64(s);
            ranges.swap(i, (s % (i as u64 + 1)) as usize);
        }
    }
    ranges
}

/// Splits `items` into the planned ranges, preserving the plan's order.
fn split_by_plan<'a, T>(
    mut items: &'a mut [T],
    plan: &[(usize, usize)],
) -> Vec<(usize, &'a mut [T])> {
    // Slices must be carved in ascending start order; reorder afterwards.
    let mut order: Vec<usize> = (0..plan.len()).collect();
    order.sort_unstable_by_key(|&i| plan[i].0);
    let mut carved: Vec<Option<(usize, &mut [T])>> = (0..plan.len()).map(|_| None).collect();
    let mut consumed = 0usize;
    for &i in &order {
        let (start, end) = plan[i];
        let (piece, rest) = items.split_at_mut(end - consumed);
        let (_, piece) = piece.split_at_mut(start - consumed);
        carved[i] = Some((start, piece));
        items = rest;
        consumed = end;
    }
    carved.into_iter().flatten().collect()
}

/// Applies `f(index, item)` to every item, splitting the slice across the
/// pool. Each worker owns a disjoint contiguous chunk, so the output is
/// bit-identical to the sequential loop for any thread count.
pub fn par_for_each_mut<T, F>(items: &mut [T], f: F)
where
    T: Send,
    F: Fn(usize, &mut T) + Sync,
{
    let threads = num_threads().min(items.len());
    if threads <= 1 {
        for (i, item) in items.iter_mut().enumerate() {
            f(i, item);
        }
        return;
    }
    let plan = chunk_plan(items.len(), threads);
    let pieces = split_by_plan(items, &plan);
    std::thread::scope(|s| {
        for (start, slice) in pieces {
            let f = &f;
            s.spawn(move || {
                IN_WORKER.with(|w| w.set(true));
                for (i, item) in slice.iter_mut().enumerate() {
                    f(start + i, item);
                }
            });
        }
    });
}

/// Maps `f(index, item)` over the slice in parallel, preserving order.
pub fn par_map<I, O, F>(items: &[I], f: F) -> Vec<O>
where
    I: Sync,
    O: Send,
    F: Fn(usize, &I) -> O + Sync,
{
    let threads = num_threads().min(items.len());
    if threads <= 1 {
        return items.iter().enumerate().map(|(i, x)| f(i, x)).collect();
    }
    let plan = chunk_plan(items.len(), threads);
    let mut out: Vec<Option<O>> = (0..items.len()).map(|_| None).collect();
    let pieces = split_by_plan(&mut out, &plan);
    std::thread::scope(|s| {
        for (start, out_chunk) in pieces {
            let f = &f;
            s.spawn(move || {
                IN_WORKER.with(|w| w.set(true));
                for (i, slot) in out_chunk.iter_mut().enumerate() {
                    *slot = Some(f(start + i, &items[start + i]));
                }
            });
        }
    });
    out.into_iter()
        .map(|o| o.expect("par_map: every slot is written by exactly one worker"))
        .collect()
}

/// Maps `f(i)` over `0..count` in parallel, preserving order. Convenience
/// for loops indexed by residue/row number rather than by a slice.
pub fn par_map_range<O, F>(count: usize, f: F) -> Vec<O>
where
    O: Send,
    F: Fn(usize) -> O + Sync,
{
    let threads = num_threads().min(count);
    if threads <= 1 {
        return (0..count).map(f).collect();
    }
    let plan = chunk_plan(count, threads);
    let mut out: Vec<Option<O>> = (0..count).map(|_| None).collect();
    let pieces = split_by_plan(&mut out, &plan);
    std::thread::scope(|s| {
        for (start, out_chunk) in pieces {
            let f = &f;
            s.spawn(move || {
                IN_WORKER.with(|w| w.set(true));
                for (i, slot) in out_chunk.iter_mut().enumerate() {
                    *slot = Some(f(start + i));
                }
            });
        }
    });
    out.into_iter()
        .map(|o| o.expect("par_map_range: every slot is written by exactly one worker"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_and_parallel_agree() {
        let base: Vec<u64> = (0..1000).collect();
        for threads in [1usize, 2, 4, 7] {
            set_num_threads(threads);
            let mut a = base.clone();
            par_for_each_mut(&mut a, |i, x| {
                *x = x.wrapping_mul(31).wrapping_add(i as u64)
            });
            let mapped = par_map(&base, |i, &x| x.wrapping_mul(31).wrapping_add(i as u64));
            let ranged = par_map_range(base.len(), |i| {
                base[i].wrapping_mul(31).wrapping_add(i as u64)
            });
            set_num_threads(1);
            let expect: Vec<u64> = base
                .iter()
                .enumerate()
                .map(|(i, &x)| x.wrapping_mul(31).wrapping_add(i as u64))
                .collect();
            assert_eq!(a, expect, "for_each_mut with {threads} threads");
            assert_eq!(mapped, expect, "map with {threads} threads");
            assert_eq!(ranged, expect, "map_range with {threads} threads");
        }
        set_num_threads(0);
    }

    #[test]
    fn empty_and_single_item_inputs() {
        set_num_threads(4);
        let mut empty: Vec<u64> = vec![];
        par_for_each_mut(&mut empty, |_, _| unreachable!());
        assert!(par_map(&empty, |_, &x: &u64| x).is_empty());
        assert!(par_map_range(0, |i| i).is_empty());
        let mut one = vec![5u64];
        par_for_each_mut(&mut one, |_, x| *x += 1);
        assert_eq!(one, vec![6]);
        set_num_threads(0);
    }

    #[test]
    fn nested_calls_run_sequentially() {
        set_num_threads(4);
        let outer: Vec<usize> = (0..8).collect();
        // The inner par_map must not deadlock or explode: inside a worker it
        // degrades to a sequential loop.
        let result = par_map(&outer, |_, &x| {
            let inner: Vec<usize> = (0..4).collect();
            par_map(&inner, |_, &y| x * 10 + y).iter().sum::<usize>()
        });
        let expect: Vec<usize> = outer.iter().map(|&x| 4 * (x * 10) + 6).collect();
        assert_eq!(result, expect);
        set_num_threads(0);
    }

    #[test]
    fn override_clamps_and_resets() {
        set_num_threads(100_000);
        assert_eq!(num_threads(), MAX_THREADS);
        set_num_threads(0);
        assert!(num_threads() >= 1);
    }

    #[test]
    fn chunk_plan_covers_exactly_under_any_seed() {
        for seed in [0u64, 1, 42, 0xdead_beef, u64::MAX] {
            set_schedule_perturbation(seed);
            for len in [1usize, 2, 7, 64, 1000, 1001] {
                for threads in [2usize, 3, 4, 8, 17] {
                    let mut plan = chunk_plan(len, threads);
                    plan.sort_unstable();
                    assert!(plan[0].0 == 0, "seed {seed}, len {len}, t {threads}");
                    assert_eq!(plan.last().unwrap().1, len);
                    for w in plan.windows(2) {
                        assert_eq!(w[0].1, w[1].0, "gap/overlap at seed {seed}");
                    }
                    assert!(plan.iter().all(|&(a, b)| a < b), "empty range");
                }
            }
        }
        set_schedule_perturbation(0);
    }

    #[test]
    fn perturbed_schedules_stay_bit_identical() {
        let base: Vec<u64> = (0..4096).collect();
        set_num_threads(1);
        let expect: Vec<u64> = base
            .iter()
            .enumerate()
            .map(|(i, &x)| x.wrapping_mul(0x9e37_79b9).wrapping_add(i as u64))
            .collect();
        for seed in [1u64, 7, 0x5eed, 0xfeed_face_cafe] {
            set_schedule_perturbation(seed);
            for threads in [2usize, 4, 8] {
                set_num_threads(threads);
                let mut a = base.clone();
                par_for_each_mut(&mut a, |i, x| {
                    *x = x.wrapping_mul(0x9e37_79b9).wrapping_add(i as u64)
                });
                let mapped = par_map(&base, |i, &x| {
                    x.wrapping_mul(0x9e37_79b9).wrapping_add(i as u64)
                });
                let ranged = par_map_range(base.len(), |i| {
                    base[i].wrapping_mul(0x9e37_79b9).wrapping_add(i as u64)
                });
                assert_eq!(a, expect, "for_each_mut seed {seed}, {threads} threads");
                assert_eq!(mapped, expect, "map seed {seed}, {threads} threads");
                assert_eq!(ranged, expect, "map_range seed {seed}, {threads} threads");
            }
        }
        set_schedule_perturbation(0);
        set_num_threads(0);
    }
}
