//! Mutation fuzzing of the transport framing (deterministic quickprop
//! harness).
//!
//! Two properties define the transport's integrity contract:
//!
//! 1. **No panic, ever**: any byte string fed to [`decode_frame`] returns a
//!    typed [`TransportError`] or a verified frame — mangled lengths,
//!    unknown kinds, and truncated tags all fail cleanly.
//! 2. **Every mutation is caught**: a frame whose kind, sequence number, or
//!    payload differs in *any bit* from what the sender tagged must be
//!    rejected. The keyed-BLAKE3 tag makes accidental collisions
//!    cryptographically negligible, so "decode succeeded" implies "payload
//!    is exactly what was sent".

use choco::transport::frame::{decode_frame, encode_frame};
use choco::transport::{FrameKind, TagKey, TransportError};
use choco_quickprop::{run_cases, Gen};

fn random_kind(g: &mut Gen) -> FrameKind {
    match g.u64_below(5) {
        0 => FrameKind::BfvCiphertext,
        1 => FrameKind::CkksCiphertext,
        2 => FrameKind::Plaintext,
        3 => FrameKind::KeyMaterial,
        _ => FrameKind::Control,
    }
}

#[test]
fn any_single_bit_flip_is_rejected() {
    run_cases("transport bit flip", 64, |g| {
        let key = TagKey::from_session_seed(&g.array_u8::<16>());
        let payload = g.bytes(96);
        let kind = random_kind(g);
        let seq = g.u64();
        let wire = encode_frame(kind, seq, &payload, &key);

        // Flip one random bit anywhere past the length prefix (length-field
        // damage is covered by the truncation property below).
        let mut mangled = wire.clone();
        let i = g.usize_in(4, mangled.len());
        let bit = 1u8 << g.u64_below(8);
        mangled[i] ^= bit;
        let err = decode_frame(&mangled, &key).unwrap_err();
        assert!(
            matches!(
                err,
                TransportError::TagMismatch { .. }
                    | TransportError::Malformed(_)
                    | TransportError::Truncated { .. }
            ),
            "unexpected error for flipped bit: {err}"
        );

        // The pristine frame still verifies.
        let frame = decode_frame(&wire, &key).unwrap();
        assert_eq!(frame.kind, kind);
        assert_eq!(frame.seq, seq);
        assert_eq!(frame.payload, payload);
    });
}

#[test]
fn truncations_and_noise_never_panic() {
    run_cases("transport truncate/noise", 128, |g| {
        let key = TagKey::from_session_seed(&g.array_u8::<16>());
        let payload = g.bytes(64);
        let wire = encode_frame(FrameKind::Control, g.u64(), &payload, &key);
        // Every strict prefix fails with a typed error.
        let len = g.usize_in(0, wire.len());
        assert!(decode_frame(&wire[..len], &key).is_err());
        // Pure noise fails too (or, with negligible probability, never:
        // a forged 32-byte keyed-BLAKE3 tag).
        let noise = g.bytes(256);
        assert!(decode_frame(&noise, &key).is_err());
    });
}

#[test]
fn frames_do_not_verify_under_another_sessions_key() {
    run_cases("transport cross-session key", 64, |g| {
        let key_a = TagKey::from_session_seed(b"session A");
        let key_b = TagKey::from_session_seed(b"session B");
        let wire = encode_frame(FrameKind::Plaintext, g.u64(), &g.bytes(48), &key_a);
        assert!(matches!(
            decode_frame(&wire, &key_b),
            Err(TransportError::TagMismatch { .. })
        ));
    });
}

#[test]
fn payload_swaps_between_valid_frames_are_rejected() {
    // Splicing the tagged payload of one frame into the header of another
    // (a cut-and-paste attack) must fail: the tag binds kind and seq.
    run_cases("transport splice", 64, |g| {
        let key = TagKey::from_session_seed(&g.array_u8::<16>());
        let payload = g.bytes(32);
        let a = encode_frame(FrameKind::BfvCiphertext, 1, &payload, &key);
        let b = encode_frame(FrameKind::BfvCiphertext, 2, &payload, &key);
        // Graft b's seq field (bytes 5..13) onto a.
        let mut spliced = a.clone();
        spliced[5..13].copy_from_slice(&b[5..13]);
        assert!(matches!(
            decode_frame(&spliced, &key),
            Err(TransportError::TagMismatch { .. })
        ));
    });
}

// ---------------------------------------------------------------------------
// Session checkpoint blobs
// ---------------------------------------------------------------------------
//
// The durable-checkpoint contract mirrors the frame contract one level up:
// resuming from a pristine blob reproduces the session exactly, and *any*
// damaged blob — truncated, bit-flipped, or pure noise — fails with a typed
// [`TransportError::BadCheckpoint`], never a panic and never a session
// silently built from garbage.

use choco::transport::{Channel, DirectChannel, Session};
use choco_he::params::HeParams;
use choco_he::Bfv;

fn direct() -> Box<dyn Channel> {
    Box::new(DirectChannel::new())
}

fn sealed_checkpoint() -> Vec<u8> {
    let params = HeParams::bfv_insecure(256, &[40, 40, 41], 14).unwrap();
    let mut session = Session::<Bfv>::direct(&params, b"ckpt fuzz", &[1, -1]).unwrap();
    // Exchange one ciphertext so the checkpoint carries a non-trivial
    // ledger, sequence counter, and RNG position.
    let ct = session.client_mut().encrypt_slots(&[1, 2, 3]).unwrap();
    let at_server = session.upload(&ct).unwrap();
    let _ = session.download(&at_server).unwrap();
    session.ledger_mut().end_round();
    session.checkpoint(b"fuzz progress")
}

#[test]
fn checkpoint_roundtrip_is_exact_and_mutations_are_typed_errors() {
    let blob = sealed_checkpoint();

    // Pristine blob resumes, returning the exact progress bytes.
    let (mut resumed, progress) = Session::<Bfv>::resume(&blob, direct(), direct()).unwrap();
    assert_eq!(progress, b"fuzz progress");
    // The resumed session is live: a fresh exchange succeeds.
    let ct = resumed.client_mut().encrypt_slots(&[4, 5, 6]).unwrap();
    assert!(resumed.upload(&ct).is_ok());

    run_cases("checkpoint mutation", 96, |g| {
        let mut mangled = blob.clone();
        match g.u64_below(3) {
            0 => {
                // Single bit flip anywhere: the seal catches it.
                let i = g.usize_in(0, mangled.len());
                mangled[i] ^= 1u8 << g.u64_below(8);
            }
            1 => {
                // Truncation at a random point.
                let len = g.usize_in(0, mangled.len());
                mangled.truncate(len);
            }
            _ => {
                // Pure noise of random length.
                mangled = g.bytes(256);
            }
        }
        if mangled == blob {
            return; // noise arm can land on the original by construction
        }
        match Session::<Bfv>::resume(&mangled, direct(), direct()) {
            Err(TransportError::BadCheckpoint(_)) => {}
            Err(e) => panic!("damaged checkpoint produced {e} instead of BadCheckpoint"),
            Ok(_) => panic!("damaged checkpoint resumed successfully"),
        }
    });
}

#[test]
fn checkpoint_rejects_cross_scheme_resume() {
    use choco_he::Ckks;
    let blob = sealed_checkpoint();
    match Session::<Ckks>::resume(&blob, direct(), direct()) {
        Err(TransportError::BadCheckpoint(_)) => {}
        Err(e) => panic!("cross-scheme resume produced {e} instead of BadCheckpoint"),
        Ok(_) => panic!("BFV checkpoint resumed as a CKKS session"),
    }
}
