//! Mutation fuzzing of the remote-evaluation wire formats (deterministic
//! quickprop harness).
//!
//! The remote protocol is the first place hostile bytes can reach real key
//! material and compiled-program caches, so its decoders carry the same
//! contract as the frame layer below them: **typed errors, never panics**,
//! for truncation at every offset, arbitrary bit flips, hostile length
//! fields, and semantically wrong-but-well-formed inputs (cross-scheme key
//! uploads, reference/body hash mismatches).

use choco::compiler::{CompilerOptions, Program};
use choco::remote::{
    params_from_wire, params_hash, params_to_wire, program_from_wire, program_ref_of,
    program_to_wire, Absorbed, BatchCollector, EvalRequest, EvalResponse, PreparedProgram,
    SessionSetup,
};
use choco::transport::TransportError;
use choco_he::params::HeParams;
use choco_he::{Bfv, Ckks, HeScheme};
use choco_prng::Blake3Rng;
use choco_quickprop::{run_cases, Gen};

fn sample_program(g: &mut Gen) -> Program {
    let mut p = Program::new();
    let x = p.input("x");
    let r = p.rotate(x, 1 + g.u64_below(4) as i64);
    let s = p.add(x, r);
    let w = p.constant(&[0.25, 0.5, 0.75]);
    let m = p.mul_plain(s, w);
    let y = p.add_plain(m, w);
    p.output(y);
    p
}

fn options() -> CompilerOptions {
    CompilerOptions {
        scale_bits: 30,
        prime_bits: 45,
        max_levels: 3,
    }
}

/// A structurally valid setup message with real (tiny, insecure-parameter)
/// BFV evaluation keys — generated once, reused across fuzz cases.
fn bfv_setup() -> SessionSetup {
    let params = HeParams::bfv_insecure(256, &[40, 40, 41], 14).unwrap();
    let ctx = Bfv::context(&params).unwrap();
    let mut rng = Blake3Rng::from_seed(b"remote fuzz bfv");
    let keys = Bfv::keygen(&ctx, &mut rng);
    let relin = Bfv::relin_key(&ctx, &keys, &mut rng).unwrap();
    let galois = Bfv::galois_keys(&ctx, &keys, &[1], &mut rng).unwrap();
    SessionSetup {
        params,
        relin_wire: Bfv::relin_to_wire(&relin),
        galois_wire: Bfv::galois_to_wire(&galois),
    }
}

fn ckks_setup() -> SessionSetup {
    let params = HeParams::ckks_insecure(256, &[40, 40, 41], 30).unwrap();
    let ctx = Ckks::context(&params).unwrap();
    let mut rng = Blake3Rng::from_seed(b"remote fuzz ckks");
    let keys = Ckks::keygen(&ctx, &mut rng);
    let relin = Ckks::relin_key(&ctx, &keys, &mut rng).unwrap();
    let galois = Ckks::galois_keys(&ctx, &keys, &[1], &mut rng).unwrap();
    SessionSetup {
        params,
        relin_wire: Ckks::relin_to_wire(&relin),
        galois_wire: Ckks::galois_to_wire(&galois),
    }
}

#[test]
fn setup_roundtrips_and_every_truncation_is_typed() {
    for setup in [bfv_setup(), ckks_setup()] {
        let wire = setup.to_wire();
        let back = SessionSetup::from_wire(&wire).unwrap();
        assert_eq!(params_hash(&back.params), params_hash(&setup.params));
        assert_eq!(back.relin_wire, setup.relin_wire);
        assert_eq!(back.galois_wire, setup.galois_wire);
        // Every strict prefix fails with a typed error, never a panic.
        for cut in 0..wire.len() {
            match SessionSetup::from_wire(&wire[..cut]) {
                Err(TransportError::Truncated { .. } | TransportError::Malformed(_)) => {}
                Err(e) => panic!("truncation at {cut} produced unexpected error {e}"),
                Ok(_) => panic!("truncation at {cut} decoded successfully"),
            }
        }
    }
}

#[test]
fn cross_scheme_key_upload_is_a_typed_error() {
    let bfv = bfv_setup();
    let ckks = ckks_setup();

    // BFV parameter recipe + CKKS key blobs (and vice versa): the magic
    // check must refuse before any key deserialization happens.
    let franken_a = SessionSetup {
        params: bfv.params.clone(),
        relin_wire: ckks.relin_wire.clone(),
        galois_wire: ckks.galois_wire.clone(),
    };
    let franken_b = SessionSetup {
        params: ckks.params.clone(),
        relin_wire: bfv.relin_wire.clone(),
        galois_wire: bfv.galois_wire.clone(),
    };
    for franken in [franken_a, franken_b] {
        match SessionSetup::from_wire(&franken.to_wire()) {
            Err(TransportError::Malformed(msg)) => {
                assert!(
                    msg.contains("scheme"),
                    "error should name the scheme mismatch, got: {msg}"
                );
            }
            Err(e) => panic!("cross-scheme upload produced {e} instead of Malformed"),
            Ok(_) => panic!("cross-scheme key upload decoded successfully"),
        }
    }

    // Mixed blobs within one setup (relin from the right scheme, galois
    // from the wrong one) are refused too.
    let mixed = SessionSetup {
        params: bfv.params.clone(),
        relin_wire: bfv.relin_wire.clone(),
        galois_wire: ckks.galois_wire.clone(),
    };
    assert!(matches!(
        SessionSetup::from_wire(&mixed.to_wire()),
        Err(TransportError::Malformed(_))
    ));
}

#[test]
fn setup_bit_flips_never_panic() {
    let pristine = bfv_setup().to_wire();
    run_cases("remote setup bit flip", 96, |g| {
        let mut mangled = pristine.clone();
        let i = g.usize_in(0, mangled.len());
        mangled[i] ^= 1u8 << g.u64_below(8);
        // A flip may land in the opaque key-blob bytes (which this layer
        // does not interpret beyond the magic) — decoding may succeed.
        // What it must never do is panic or misattribute lengths.
        let _ = SessionSetup::from_wire(&mangled);
    });
}

#[test]
fn program_wire_truncations_bitflips_and_noise_never_panic() {
    run_cases("remote program mutation", 128, |g| {
        let wire = program_to_wire(&sample_program(g)).unwrap();
        match g.u64_below(3) {
            0 => {
                let cut = g.usize_in(0, wire.len());
                if cut < wire.len() {
                    assert!(program_from_wire(&wire[..cut]).is_err());
                }
            }
            1 => {
                let mut mangled = wire.clone();
                let i = g.usize_in(0, mangled.len());
                mangled[i] ^= 1u8 << g.u64_below(8);
                // Flips inside constant f64 payloads still parse (the
                // values are opaque); structural flips must error, and
                // nothing may panic.
                let _ = program_from_wire(&mangled);
            }
            _ => {
                let noise = g.bytes(128);
                let _ = program_from_wire(&noise);
            }
        }
    });
}

#[test]
fn hostile_length_fields_do_not_overallocate() {
    // A program claiming 2^32-1 nodes, a constant claiming u32::MAX
    // values, oversized input counts: all refused before allocation.
    let mut giant_nodes = Vec::new();
    giant_nodes.extend_from_slice(&u32::MAX.to_le_bytes());
    assert!(matches!(
        program_from_wire(&giant_nodes),
        Err(TransportError::Malformed(_))
    ));

    let mut giant_constant = Vec::new();
    giant_constant.extend_from_slice(&1u32.to_le_bytes());
    giant_constant.push(1); // Constant tag
    giant_constant.extend_from_slice(&u32::MAX.to_le_bytes());
    assert!(program_from_wire(&giant_constant).is_err());

    // An EvalRequest whose input blob length overruns the buffer.
    let prep = PreparedProgram::new(
        &{
            let mut p = Program::new();
            let x = p.input("x");
            p.output(x);
            p
        },
        &options(),
    )
    .unwrap();
    let req = EvalRequest {
        request_id: 1,
        program_ref: prep.program_ref,
        program: None,
        deadline_ms: None,
        inputs: vec![("x".into(), vec![0u8; 64])],
    };
    let mut wire = req.to_wire();
    // The input ciphertext length prefix sits 4+2+"x" from the end of the
    // fixed head; easier: find the last u32 length (64) and inflate it.
    let pos = wire.len() - 64 - 4;
    wire[pos..pos + 4].copy_from_slice(&u32::MAX.to_le_bytes());
    assert!(matches!(
        EvalRequest::from_wire(&wire),
        Err(TransportError::Truncated { .. })
    ));
}

#[test]
fn request_and_response_mutations_never_panic() {
    run_cases("remote request/response mutation", 128, |g| {
        let prog = sample_program(g);
        let prep = PreparedProgram::new(&prog, &options()).unwrap();
        let req = EvalRequest {
            request_id: g.u64(),
            program_ref: prep.program_ref,
            program: Some((prep.wire.clone(), prep.options)),
            deadline_ms: (g.u64() % 2 == 0).then(|| g.u64() % 10_000),
            inputs: vec![("x".into(), g.bytes(48))],
        };
        let req_wire = req.to_wire();
        let resp = EvalResponse::Outputs {
            request_id: g.u64(),
            outputs: vec![g.bytes(32), g.bytes(17)],
        };
        let resp_wire = resp.to_wire();

        for wire in [&req_wire, &resp_wire] {
            let mut mangled = wire.clone();
            match g.u64_below(3) {
                0 => {
                    let cut = g.usize_in(0, mangled.len());
                    mangled.truncate(cut);
                }
                1 => {
                    let i = g.usize_in(0, mangled.len());
                    mangled[i] ^= 1u8 << g.u64_below(8);
                }
                _ => mangled = g.bytes(96),
            }
            // Typed error or (for benign flips in opaque payload bytes) a
            // clean decode; never a panic.
            let _ = EvalRequest::from_wire(&mangled);
            let _ = EvalResponse::from_wire(&mangled);
        }
    });
}

#[test]
fn program_body_must_hash_to_its_reference() {
    run_cases("remote program ref binding", 32, |g| {
        let prog = sample_program(g);
        let prep = PreparedProgram::new(&prog, &options()).unwrap();

        // Same program, different compiler options → different reference;
        // a request pairing the body with the stale reference is refused.
        let other_options = CompilerOptions {
            scale_bits: 31,
            ..options()
        };
        assert_ne!(
            program_ref_of(&prep.wire, &options()),
            program_ref_of(&prep.wire, &other_options)
        );
        let req = EvalRequest {
            request_id: 9,
            program_ref: program_ref_of(&prep.wire, &other_options),
            program: Some((prep.wire.clone(), prep.options)),
            deadline_ms: None,
            inputs: vec![],
        };
        assert!(matches!(
            EvalRequest::from_wire(&req.to_wire()),
            Err(TransportError::Malformed(_))
        ));
    });
}

#[test]
fn batch_collector_accepts_out_of_order_and_types_id_games() {
    // Pipelined responses may land in any order; what the collector must
    // refuse — with typed errors, never a panic or silent acceptance — is
    // every id game a hostile or confused server can play.
    let mut coll = BatchCollector::new(vec![10, 11, 12]);
    let out = |id: u64| EvalResponse::Outputs {
        request_id: id,
        outputs: vec![vec![id as u8]],
    };
    assert_eq!(
        coll.absorb(out(12)).unwrap(),
        Absorbed::Done {
            slot: 2,
            outputs: vec![vec![12]]
        }
    );
    // Duplicate id for an answered slot: typed error.
    assert!(matches!(
        coll.absorb(out(12)),
        Err(TransportError::Malformed(msg)) if msg.contains("duplicate")
    ));
    // Unknown id: typed error.
    assert!(matches!(
        coll.absorb(out(99)),
        Err(TransportError::Malformed(msg)) if msg.contains("unexpected")
    ));
    // Mid-batch setup acks and journal answers are protocol violations.
    assert!(matches!(
        coll.absorb(EvalResponse::SetupOk),
        Err(TransportError::Malformed(_))
    ));
    assert!(matches!(
        coll.absorb(EvalResponse::DeadRequests {
            request_ids: vec![10]
        }),
        Err(TransportError::Malformed(_))
    ));
    // Retryable refusals surface as typed outcomes bound to their slot.
    assert_eq!(
        coll.absorb(EvalResponse::DeadlineExceeded { request_id: 10 })
            .unwrap(),
        Absorbed::Shed { slot: 0 }
    );
    assert_eq!(
        coll.absorb(EvalResponse::Unavailable {
            request_id: 11,
            retry_after_ms: 40
        })
        .unwrap(),
        Absorbed::RetryAfter {
            slot: 1,
            retry_after_ms: 40
        }
    );
    // Terminal refusals are typed errors, and a rebound slot answers under
    // its fresh id only.
    assert!(matches!(
        coll.absorb(EvalResponse::Quarantined {
            request_id: 10,
            reason: "poison".into()
        }),
        Err(TransportError::Quarantined(_))
    ));
    coll.rebind(0, 20);
    assert!(coll.absorb(out(10)).is_err(), "stale id after rebind");
    assert!(coll.absorb(out(20)).is_ok());
    assert_eq!(
        coll.absorb(out(11)).unwrap(),
        Absorbed::Done {
            slot: 1,
            outputs: vec![vec![11]]
        }
    );
    assert_eq!(coll.pending(), 0);
}

#[test]
fn mutated_pipelined_response_streams_never_panic_the_collector() {
    run_cases("remote batch response mutation", 96, |g| {
        let ids: Vec<u64> = (0..3).map(|i| 100 + i).collect();
        let mut coll = BatchCollector::new(ids.clone());
        for _ in 0..6 {
            let id = ids[g.usize_in(0, ids.len())];
            let resp = match g.u64_below(6) {
                0 => EvalResponse::Outputs {
                    request_id: id,
                    outputs: vec![g.bytes(24)],
                },
                1 => EvalResponse::NeedProgram { request_id: id },
                2 => EvalResponse::DeadlineExceeded { request_id: id },
                3 => EvalResponse::Unavailable {
                    request_id: id,
                    retry_after_ms: g.u64() % 5_000,
                },
                4 => EvalResponse::Quarantined {
                    request_id: id,
                    reason: "fuzzed".into(),
                },
                _ => EvalResponse::DeadRequests {
                    request_ids: ids.clone(),
                },
            };
            let mut wire = resp.to_wire();
            match g.u64_below(3) {
                0 => {
                    let cut = g.usize_in(0, wire.len());
                    wire.truncate(cut);
                }
                1 => {
                    let i = g.usize_in(0, wire.len());
                    wire[i] ^= 1u8 << g.u64_below(8);
                }
                _ => {} // deliver intact
            }
            // Decode then absorb: each step either succeeds or fails with
            // a typed error; the collector state stays coherent throughout.
            if let Ok(decoded) = EvalResponse::from_wire(&wire) {
                let _ = coll.absorb(decoded);
            }
        }
        assert!(coll.pending() <= 3);
    });
}

#[test]
fn fault_response_codes_roundtrip_and_truncations_are_typed() {
    // The robustness-era response codes (4..=7): exact roundtrip, id
    // peeking for the journal, typed errors at every truncation offset,
    // and no panic under bit flips.
    let responses = [
        EvalResponse::DeadlineExceeded { request_id: 7 },
        EvalResponse::Unavailable {
            request_id: 8,
            retry_after_ms: 250,
        },
        EvalResponse::Quarantined {
            request_id: 9,
            reason: "rotation key missing".into(),
        },
        EvalResponse::DeadRequests {
            request_ids: vec![3, 5, 8],
        },
    ];
    for resp in &responses {
        let wire = resp.to_wire();
        assert_eq!(&EvalResponse::from_wire(&wire).unwrap(), resp);
        let peeked = EvalResponse::peek_request_id(&wire);
        match resp {
            EvalResponse::DeadlineExceeded { request_id }
            | EvalResponse::Unavailable { request_id, .. }
            | EvalResponse::Quarantined { request_id, .. } => {
                assert_eq!(peeked, Some(*request_id));
            }
            _ => assert_eq!(peeked, None, "DeadRequests carries no single id"),
        }
        for cut in 0..wire.len() {
            match EvalResponse::from_wire(&wire[..cut]) {
                Err(TransportError::Truncated { .. } | TransportError::Malformed(_)) => {}
                Err(e) => panic!("truncation at {cut} produced unexpected error {e}"),
                Ok(got) => panic!("truncation at {cut} decoded as {got:?}"),
            }
        }
    }
    run_cases("remote fault response bit flip", 64, |g| {
        let resp = &responses[g.usize_in(0, responses.len())];
        let mut wire = resp.to_wire();
        let i = g.usize_in(0, wire.len());
        wire[i] ^= 1u8 << g.u64_below(8);
        let _ = EvalResponse::from_wire(&wire);
    });
}

#[test]
fn params_recipe_rejects_mutations_that_change_the_recipe() {
    let params = HeParams::bfv_insecure(1024, &[45, 45, 46], 17).unwrap();
    let wire = params_to_wire(&params);
    // Scheme byte 0 or 3+ is refused.
    for bad in [0u8, 3, 200] {
        let mut mangled = wire.clone();
        mangled[0] = bad;
        let mut rest = mangled.as_slice();
        assert!(params_from_wire(&mut rest).is_err());
    }
    // Hostile prime count.
    let mut mangled = wire.clone();
    let count_off = 1 + 1 + 4 + 8 + 4;
    mangled[count_off..count_off + 2].copy_from_slice(&u16::MAX.to_le_bytes());
    let mut rest = mangled.as_slice();
    assert!(params_from_wire(&mut rest).is_err());
}
