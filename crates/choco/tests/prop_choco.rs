//! Property-based tests for CHOCO's packing and protocol invariants.

use choco::protocol::CommLedger;
use choco::rotation::RedundantLayout;
use choco::stacking::StackedLayout;
use proptest::prelude::*;

proptest! {
    #[test]
    fn pack_extract_roundtrip(window in 1usize..64, red_frac in 0usize..100) {
        let redundancy = red_frac * window / 100;
        let layout = RedundantLayout::new(window, redundancy);
        let values: Vec<u64> = (0..window as u64).map(|i| i * 3 + 1).collect();
        let packed = layout.pack(&values);
        prop_assert_eq!(packed.len(), window + 2 * redundancy);
        prop_assert_eq!(layout.extract(&packed), values);
    }

    #[test]
    fn packed_rotation_equals_windowed_rotation(
        window in 2usize..48,
        red in 1usize..16,
        rot_seed in any::<i64>(),
    ) {
        let redundancy = red.min(window);
        let layout = RedundantLayout::new(window, redundancy);
        let r = rot_seed.rem_euclid(2 * redundancy as i64 + 1) - redundancy as i64;
        let values: Vec<u64> = (0..window as u64).map(|i| i + 10).collect();
        // Simulate the ciphertext-level cyclic shift on the packed slots.
        let mut packed = layout.pack(&values);
        if r >= 0 {
            packed.rotate_left(r as usize);
        } else {
            packed.rotate_right((-r) as usize);
        }
        prop_assert_eq!(layout.extract(&packed), layout.reference_rotate(&values, r));
    }

    #[test]
    fn reference_rotation_composes(window in 2usize..32, r1 in -8i64..8, r2 in -8i64..8) {
        let layout = RedundantLayout::new(window, window);
        let values: Vec<u64> = (0..window as u64).collect();
        let once = layout.reference_rotate(&layout.reference_rotate(&values, r1), r2);
        let both = layout.reference_rotate(&values, r1 + r2);
        prop_assert_eq!(once, both);
    }

    #[test]
    fn stacked_pack_extract_roundtrip(
        channels in 1usize..8,
        window in 1usize..16,
        red in 0usize..4,
    ) {
        let redundancy = red.min(window);
        let layout = StackedLayout::new(channels, RedundantLayout::new(window, redundancy));
        let data: Vec<Vec<u64>> = (0..channels)
            .map(|c| (0..window as u64).map(|i| c as u64 * 100 + i).collect())
            .collect();
        let slots = layout.pack(&data);
        prop_assert_eq!(slots.len(), channels * layout.stride());
        prop_assert!(layout.stride().is_power_of_two());
        prop_assert_eq!(layout.extract(&slots), data);
    }

    #[test]
    fn utilization_decreases_with_redundancy(window in 4usize..64) {
        let low = RedundantLayout::new(window, 1);
        let high = RedundantLayout::new(window, window.clamp(2, 8));
        prop_assert!(low.utilization() >= high.utilization());
        prop_assert!(low.utilization() <= 1.0);
    }

    #[test]
    fn ledger_merge_is_commutative(
        up1 in 0usize..1_000_000, dn1 in 0usize..1_000_000,
        up2 in 0usize..1_000_000, dn2 in 0usize..1_000_000,
    ) {
        let mut a = CommLedger::new();
        a.record_upload(up1);
        a.record_download(dn1);
        let mut b = CommLedger::new();
        b.record_upload(up2);
        b.record_download(dn2);
        let mut ab = a;
        ab.merge(&b);
        let mut ba = b;
        ba.merge(&a);
        prop_assert_eq!(ab, ba);
        prop_assert_eq!(ab.total_bytes(), (up1 + dn1 + up2 + dn2) as u64);
    }
}
