//! Property-based tests for CHOCO's packing and protocol invariants
//! (deterministic quickprop harness).

use choco::protocol::CommLedger;
use choco::rotation::RedundantLayout;
use choco::stacking::StackedLayout;
use choco_quickprop::run_cases;

#[test]
fn pack_extract_roundtrip() {
    run_cases("pack/extract roundtrip", 128, |g| {
        let window = g.usize_in(1, 64);
        let red_frac = g.usize_in(0, 100);
        let redundancy = red_frac * window / 100;
        let layout = RedundantLayout::new(window, redundancy);
        let values: Vec<u64> = (0..window as u64).map(|i| i * 3 + 1).collect();
        let packed = layout.pack(&values);
        assert_eq!(packed.len(), window + 2 * redundancy);
        assert_eq!(layout.extract(&packed), values);
    });
}

#[test]
fn packed_rotation_equals_windowed_rotation() {
    run_cases("packed rotation windowed", 128, |g| {
        let window = g.usize_in(2, 48);
        let red = g.usize_in(1, 16);
        let rot_seed = g.i64();
        let redundancy = red.min(window);
        let layout = RedundantLayout::new(window, redundancy);
        let r = rot_seed.rem_euclid(2 * redundancy as i64 + 1) - redundancy as i64;
        let values: Vec<u64> = (0..window as u64).map(|i| i + 10).collect();
        // Simulate the ciphertext-level cyclic shift on the packed slots.
        let mut packed = layout.pack(&values);
        if r >= 0 {
            packed.rotate_left(r as usize);
        } else {
            packed.rotate_right((-r) as usize);
        }
        assert_eq!(layout.extract(&packed), layout.reference_rotate(&values, r));
    });
}

#[test]
fn reference_rotation_composes() {
    run_cases("reference rotation composes", 128, |g| {
        let window = g.usize_in(2, 32);
        let r1 = g.i64_in(-8, 8);
        let r2 = g.i64_in(-8, 8);
        let layout = RedundantLayout::new(window, window);
        let values: Vec<u64> = (0..window as u64).collect();
        let once = layout.reference_rotate(&layout.reference_rotate(&values, r1), r2);
        let both = layout.reference_rotate(&values, r1 + r2);
        assert_eq!(once, both);
    });
}

#[test]
fn stacked_pack_extract_roundtrip() {
    run_cases("stacked pack/extract", 128, |g| {
        let channels = g.usize_in(1, 8);
        let window = g.usize_in(1, 16);
        let red = g.usize_in(0, 4);
        let redundancy = red.min(window);
        let layout = StackedLayout::new(channels, RedundantLayout::new(window, redundancy));
        let data: Vec<Vec<u64>> = (0..channels)
            .map(|c| (0..window as u64).map(|i| c as u64 * 100 + i).collect())
            .collect();
        let slots = layout.pack(&data);
        assert_eq!(slots.len(), channels * layout.stride());
        assert!(layout.stride().is_power_of_two());
        assert_eq!(layout.extract(&slots), data);
    });
}

#[test]
fn utilization_decreases_with_redundancy() {
    run_cases("utilization monotone", 64, |g| {
        let window = g.usize_in(4, 64);
        let low = RedundantLayout::new(window, 1);
        let high = RedundantLayout::new(window, window.clamp(2, 8));
        assert!(low.utilization() >= high.utilization());
        assert!(low.utilization() <= 1.0);
    });
}

#[test]
fn ledger_merge_is_commutative() {
    run_cases("ledger merge commutes", 128, |g| {
        let up1 = g.usize_in(0, 1_000_000);
        let dn1 = g.usize_in(0, 1_000_000);
        let up2 = g.usize_in(0, 1_000_000);
        let dn2 = g.usize_in(0, 1_000_000);
        let mut a = CommLedger::new();
        a.record_upload(up1);
        a.record_download(dn1);
        let mut b = CommLedger::new();
        b.record_upload(up2);
        b.record_download(dn2);
        let mut ab = a;
        ab.merge(&b);
        let mut ba = b;
        ba.merge(&a);
        assert_eq!(ab, ba);
        assert_eq!(ab.total_bytes(), (up1 + dn1 + up2 + dn2) as u64);
    });
}
