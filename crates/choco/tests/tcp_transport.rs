//! `TcpChannel` over real loopback sockets: framing, partial reads, typed
//! failures, duplicate dedup, and checkpoint/resume across a connection
//! loss — everything the in-memory channels guarantee, now with a kernel
//! in the loop.

use choco::transport::tcp::{BlobIo, TcpChannel, TcpOptions};
use choco::transport::{frame, Channel, FrameKind, Session, TagKey, TransportError};
use choco_he::params::HeParams;
use choco_he::Bfv;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::time::{Duration, Instant};

fn params() -> HeParams {
    HeParams::bfv_insecure(256, &[40, 40, 41], 14).unwrap()
}

/// Spawns a verified-relay peer: accepts connections forever, echoes every
/// frame that verifies under `key` back `echoes` times, drops the rest.
/// `frames_per_conn` caps how many frames a connection relays before the
/// peer hangs up (`usize::MAX` = never).
fn echo_peer(key: TagKey, echoes: usize, frames_per_conn: usize) -> SocketAddr {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    std::thread::spawn(move || {
        for stream in listener.incoming() {
            let Ok(stream) = stream else { break };
            let key = key.clone();
            std::thread::spawn(move || {
                let mut io = BlobIo::new(stream, 1 << 26);
                let mut served = 0usize;
                while served < frames_per_conn {
                    match io.read_blob(100) {
                        Ok(Some(blob)) => {
                            if frame::decode_frame(&blob, &key).is_ok() {
                                for _ in 0..echoes {
                                    if io.write_all(&blob).is_err() {
                                        return;
                                    }
                                }
                            }
                            served += 1;
                        }
                        Ok(None) => continue,
                        Err(_) => return,
                    }
                }
            });
        }
    });
    addr
}

fn channel_pair(addr: SocketAddr, opts: &TcpOptions) -> (TcpChannel, TcpChannel) {
    let stream = TcpStream::connect(addr).unwrap();
    TcpChannel::pair(stream, opts)
}

#[test]
fn frames_roundtrip_over_loopback() {
    let key = TagKey::from_session_seed(b"tcp roundtrip");
    let addr = echo_peer(key.clone(), 1, usize::MAX);
    let (mut up, _down) = channel_pair(addr, &TcpOptions::default());
    for seq in 0..5u64 {
        let wire = frame::encode_frame(FrameKind::Plaintext, seq, &vec![seq as u8; 2048], &key);
        up.send(wire.clone());
        let d = up.recv().expect("echo never arrived");
        assert_eq!(d.wire, wire, "frame {seq} corrupted over loopback");
    }
    assert!(up.is_connected());
}

#[test]
fn partial_writes_are_reassembled() {
    // The peer dribbles the echo a few bytes at a time; the channel's read
    // buffer must reassemble the frame across many short reads.
    let key = TagKey::from_session_seed(b"tcp dribble");
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let server_key = key.clone();
    std::thread::spawn(move || {
        let (stream, _) = listener.accept().unwrap();
        let mut io = BlobIo::new(stream.try_clone().unwrap(), 1 << 26);
        let blob = loop {
            if let Ok(Some(b)) = io.read_blob(100) {
                break b;
            }
        };
        assert!(frame::decode_frame(&blob, &server_key).is_ok());
        use std::io::Write;
        let mut out = stream;
        for piece in blob.chunks(7) {
            out.write_all(piece).unwrap();
            out.flush().unwrap();
            std::thread::sleep(Duration::from_millis(1));
        }
    });
    let (mut up, _down) = channel_pair(addr, &TcpOptions::default());
    let wire = frame::encode_frame(FrameKind::Control, 3, &[9; 200], &key);
    up.send(wire.clone());
    let d = up.recv().expect("dribbled echo never reassembled");
    assert_eq!(d.wire, wire);
}

#[test]
fn oversized_prefix_is_rejected_before_allocating() {
    // A rogue peer answers with an absurd length prefix; the channel must
    // refuse it with a typed error instead of reserving 4 GiB.
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    std::thread::spawn(move || {
        let (stream, _) = listener.accept().unwrap();
        use std::io::Write;
        let mut s = stream;
        s.write_all(&[0xFF, 0xFF, 0xFF, 0xFF]).unwrap();
        s.write_all(&[0u8; 64]).unwrap();
        std::thread::sleep(Duration::from_millis(500));
    });
    let opts = TcpOptions {
        recv_deadline_ms: 500,
        ..TcpOptions::default()
    };
    let (mut up, _down) = channel_pair(addr, &opts);
    up.send(vec![1, 0, 0, 0, 7]); // anything; triggers the awaited read
    assert!(up.recv().is_none());
    match up.last_error() {
        Some(TransportError::Oversized { declared, max }) => {
            assert_eq!(declared, 0xFFFF_FFFF);
            assert_eq!(max, 1 << 26);
        }
        other => panic!("expected Oversized, got {other:?}"),
    }
    assert!(!up.is_connected());
}

#[test]
fn peer_disconnect_is_typed() {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    std::thread::spawn(move || {
        let (stream, _) = listener.accept().unwrap();
        drop(stream); // immediate hangup
    });
    let (mut up, _down) = channel_pair(addr, &TcpOptions::default());
    up.send(vec![5, 0, 0, 0, 1, 2, 3, 4, 5]);
    // Depending on timing the write may succeed (buffered) — the read side
    // must then surface the hangup.
    let _ = up.recv();
    match up.last_error() {
        Some(TransportError::Disconnected(_)) => {}
        other => panic!("expected Disconnected, got {other:?}"),
    }
    assert!(!up.is_connected());
}

#[test]
fn recv_deadline_reports_dry_not_dead() {
    // A silent peer: recv must give up after the deadline and report the
    // pipe dry, leaving the connection alive for a retry.
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    std::thread::spawn(move || {
        let (stream, _) = listener.accept().unwrap();
        std::thread::sleep(Duration::from_secs(5));
        drop(stream);
    });
    let opts = TcpOptions {
        recv_deadline_ms: 150,
        ..TcpOptions::default()
    };
    let (mut up, _down) = channel_pair(addr, &opts);
    up.send(vec![1, 0, 0, 0, 9]);
    let start = Instant::now();
    assert!(up.recv().is_none());
    let waited = start.elapsed();
    assert!(waited >= Duration::from_millis(140), "gave up too early");
    assert!(waited < Duration::from_secs(3), "deadline not enforced");
    assert!(up.is_connected(), "a dry pipe is not a dead pipe");
    // Without a pending echo the next recv is a fast poll, not a full wait.
    let start = Instant::now();
    assert!(up.recv().is_none());
    assert!(start.elapsed() < Duration::from_millis(100));
}

#[test]
fn kill_makes_both_handles_report_disconnected() {
    let key = TagKey::from_session_seed(b"tcp kill");
    let addr = echo_peer(key, 1, usize::MAX);
    let (mut up, mut down) = channel_pair(addr, &TcpOptions::default());
    up.kill();
    up.send(vec![1, 0, 0, 0, 1]);
    assert!(up.recv().is_none());
    assert!(down.recv().is_none());
    assert!(matches!(
        up.last_error(),
        Some(TransportError::Disconnected(_))
    ));
    assert!(!down.is_connected());
}

#[test]
fn channel_state_exports_and_imports() {
    let key = TagKey::from_session_seed(b"tcp state");
    let addr = echo_peer(key.clone(), 1, usize::MAX);
    let (mut up, _down) = channel_pair(addr, &TcpOptions::default());
    // Build a non-empty local queue state and roundtrip it through a fresh
    // channel, as Session::resume does.
    let frame_a = frame::encode_frame(FrameKind::Control, 10, b"a", &key);
    let frame_b = frame::encode_frame(FrameKind::Control, 11, b"bb", &key);
    let mut state = Vec::new();
    state.extend_from_slice(&2u32.to_le_bytes());
    for (lat, w) in [(4u64, &frame_a), (7u64, &frame_b)] {
        state.extend_from_slice(&lat.to_le_bytes());
        state.extend_from_slice(&(w.len() as u32).to_le_bytes());
        state.extend_from_slice(w);
    }
    up.import_state(&state).unwrap();
    assert_eq!(up.pending(), 2);
    assert_eq!(up.export_state(), state);
    let d = up.recv().unwrap();
    assert_eq!(d.wire, frame_a);
    assert_eq!(d.latency_ms, 4);
    assert_eq!(up.recv().unwrap().wire, frame_b);
    // Empty and garbage states behave like the other channels'.
    up.import_state(&[]).unwrap();
    assert_eq!(up.pending(), 0);
    assert!(matches!(
        up.import_state(&[1, 2, 3]),
        Err(TransportError::BadCheckpoint(_))
    ));
}

#[test]
fn session_over_tcp_matches_direct_billing_and_wire() {
    let seed = b"tcp session parity";
    let key = TagKey::from_session_seed(seed);
    let addr = echo_peer(key, 1, usize::MAX);
    let (up, down) = channel_pair(addr, &TcpOptions::default());
    let mut tcp =
        Session::<Bfv, TcpChannel>::over(&params(), seed, &[], up, down, Default::default())
            .unwrap();
    let mut direct = Session::<Bfv>::direct(&params(), seed, &[]).unwrap();

    let values: Vec<u64> = (0..256).map(|i| i * 5 % 89).collect();
    let ct_t = tcp.client_mut().encrypt_slots(&values).unwrap();
    let ct_d = direct.client_mut().encrypt_slots(&values).unwrap();
    let at_server_t = tcp.upload(&ct_t).unwrap();
    let at_server_d = direct.upload(&ct_d).unwrap();
    let back_t = tcp.download(&at_server_t).unwrap();
    let back_d = direct.download(&at_server_d).unwrap();
    assert_eq!(tcp.client_mut().decrypt_slots(&back_t).unwrap(), values);
    // Bit-identical ciphertext wire: the channel type must not perturb the
    // client's deterministic encryption stream.
    assert_eq!(
        choco_he::serialize::ciphertext_to_bytes(&back_t),
        choco_he::serialize::ciphertext_to_bytes(&back_d)
    );
    // Identical primary billing.
    assert_eq!(tcp.ledger().upload_bytes, direct.ledger().upload_bytes);
    assert_eq!(tcp.ledger().download_bytes, direct.ledger().download_bytes);
    assert_eq!(tcp.ledger().uploads, direct.ledger().uploads);
    assert_eq!(tcp.ledger().downloads, direct.ledger().downloads);
    assert_eq!(tcp.ledger().retransmit_bytes, 0);
}

#[test]
fn duplicate_echoes_are_deduped_and_bill_once() {
    // The peer echoes everything twice: the extra copy must be discarded as
    // a stale duplicate by seq, never delivered twice, never re-billed.
    let seed = b"tcp duplicate echo";
    let key = TagKey::from_session_seed(seed);
    let addr = echo_peer(key, 2, usize::MAX);
    let (up, down) = channel_pair(addr, &TcpOptions::default());
    let mut s =
        Session::<Bfv, TcpChannel>::over(&params(), seed, &[], up, down, Default::default())
            .unwrap();
    let values: Vec<u64> = (0..256).map(|i| i % 23).collect();
    for _ in 0..3 {
        let ct = s.client_mut().encrypt_slots(&values).unwrap();
        let at_server = s.upload(&ct).unwrap();
        let back = s.download(&at_server).unwrap();
        assert_eq!(s.client_mut().decrypt_slots(&back).unwrap(), values);
    }
    assert_eq!(s.ledger().uploads, 3);
    assert_eq!(s.ledger().downloads, 3);
    assert_eq!(s.ledger().retransmit_bytes, 0);
}

#[test]
fn checkpoint_resume_survives_connection_loss() {
    // The peer hangs up after 3 frames; the client checkpoints beforehand,
    // hits the disconnect, redials, resumes — and its RNG stream continues
    // bit-identically.
    let seed = b"tcp resume";
    let key = TagKey::from_session_seed(seed);
    let addr = echo_peer(key, 1, 3);
    let opts = TcpOptions {
        recv_deadline_ms: 200,
        ..TcpOptions::default()
    };
    let (up, down) = channel_pair(addr, &opts);
    let mut s =
        Session::<Bfv, TcpChannel>::over(&params(), seed, &[], up, down, Default::default())
            .unwrap();
    let values: Vec<u64> = (0..256).map(|i| i % 31).collect();
    let ct = s.client_mut().encrypt_slots(&values).unwrap();
    let at_server = s.upload(&ct).unwrap(); // frame 1
    let _back = s.download(&at_server).unwrap(); // frame 2
    let blob = s.checkpoint(b"before the cliff");
    let mut twin = Session::<Bfv>::direct(&params(), seed, &[]).unwrap();
    let ct_twin = twin.client_mut().encrypt_slots(&values).unwrap();
    let _ = twin.upload(&ct_twin).unwrap();
    let _ = twin.download(&ct_twin).unwrap();

    // Frame 3 is relayed, then the peer hangs up: some exchange soon fails.
    let mut died = false;
    for _ in 0..4 {
        if s.upload(&at_server).is_err() {
            died = true;
            break;
        }
    }
    assert!(died, "peer hangup never surfaced");

    let (up2, down2) = channel_pair(addr, &opts);
    let (mut r, progress) = Session::<Bfv, TcpChannel>::resume(&blob, up2, down2).unwrap();
    assert_eq!(progress, b"before the cliff");
    assert!(r.ledger().recovery_bytes > 0, "handshake not billed");
    // The resumed RNG continues the uninterrupted stream.
    let next_resumed = r.client_mut().encrypt_slots(&values).unwrap();
    let next_twin = twin.client_mut().encrypt_slots(&values).unwrap();
    assert_eq!(
        choco_he::serialize::ciphertext_to_bytes(&next_resumed),
        choco_he::serialize::ciphertext_to_bytes(&next_twin)
    );
    // And the link still works end to end.
    let at_server2 = r.upload(&next_resumed).unwrap();
    let back = r.download(&at_server2).unwrap();
    let out = r.client_mut().decrypt_slots(&back).unwrap();
    assert_eq!(out.len(), 256);
}
