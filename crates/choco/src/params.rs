//! Client-driven HE parameter minimization (§3.2).
//!
//! Parameter selection determines ciphertext size, and ciphertext size *is*
//! the client's communication and enc/decryption cost. CHOCO therefore
//! selects the smallest `(N, k, t)` that (a) meets 128-bit security and
//! (b) leaves enough noise budget for one client-aided round of the
//! workload. Rotational redundancy enters here: eliminating masking
//! multiplies shrinks the noise demand by `≈ #masks · (t_bits + log2 √2N)`
//! bits, which is what lets set A (2 data residues) replace SEAL's default
//! 4-residue chain — a 50% ciphertext reduction (§3.3).

use choco_he::params::{max_coeff_bits_128, HeParams};
use choco_he::HeError;

/// Per-round operation profile of a client-aided workload (what the server
/// executes between two client noise refreshes).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorkloadProfile {
    /// Bits of the quantized plaintext values (CHOCO uses 4-bit DNN inputs).
    pub quant_bits: u32,
    /// Sequential plaintext multiplications (weights, masks).
    pub plain_mults: u32,
    /// Sequential ciphertext rotations.
    pub rotations: u32,
    /// Fan-in of homomorphic accumulation (values summed into one slot).
    pub accumulations: u32,
    /// Whether the packing requires masked arbitrary permutations
    /// (the non-CHOCO baseline); each costs an extra plaintext multiply.
    pub masked_permutes: u32,
}

impl WorkloadProfile {
    /// A convolution-layer profile under rotational redundancy: one weight
    /// multiply, a handful of rotations, `fan_in` accumulations, no masks.
    pub fn choco_conv(fan_in: u32) -> Self {
        WorkloadProfile {
            quant_bits: 4,
            plain_mults: 1,
            rotations: 8,
            accumulations: fan_in,
            masked_permutes: 0,
        }
    }

    /// The same layer with Gazelle-style masked permutations.
    pub fn masked_conv(fan_in: u32) -> Self {
        WorkloadProfile {
            masked_permutes: 2,
            ..Self::choco_conv(fan_in)
        }
    }
}

/// Minimum plaintext-modulus bits needed so accumulated quantized products
/// do not overflow `t`: `2·quant_bits + log2(accumulations)` plus a sign bit.
pub fn required_plain_bits(profile: &WorkloadProfile) -> u32 {
    let acc_bits = 32 - (profile.accumulations.max(1) - 1).leading_zeros();
    (2 * profile.quant_bits + acc_bits + 1).max(13)
}

/// Estimates the noise-budget bits one round of the profile consumes on a
/// degree-`n` ring with plaintext modulus of `t_bits` bits.
///
/// Model (matching the measured behaviour of `choco-he`):
/// * fresh invariant noise ≈ `log2(6σ·√(2N))` bits,
/// * each plaintext multiply (weights or masks) adds `t_bits + log2(√2N)`,
/// * each rotation adds ~2 bits, each doubling of fan-in 1 bit.
pub fn round_noise_bits(profile: &WorkloadProfile, n: usize, t_bits: u32) -> f64 {
    let half_log_2n = 0.5 * (2.0 * n as f64).log2();
    let fresh = (6.0 * 3.2f64).log2() + half_log_2n;
    let per_mult = t_bits as f64 + half_log_2n;
    let mults = (profile.plain_mults + profile.masked_permutes) as f64;
    let rot = 2.0 * profile.rotations as f64;
    let acc = (profile.accumulations.max(1) as f64).log2();
    fresh + mults * per_mult + rot + acc
}

/// Candidate coefficient-modulus chains per degree, smallest ciphertext
/// first. These mirror the menu SEAL ships (`BFVDefault`) plus the paper's
/// minimized chains of Table 3.
fn candidate_chains(n: usize) -> Vec<Vec<u32>> {
    match n {
        2048 => vec![vec![54]],
        4096 => vec![vec![36, 36, 37], vec![54, 55]],
        8192 => vec![
            vec![58, 58, 59],
            vec![43, 43, 44, 44, 44],
            vec![55, 55, 54, 54],
        ],
        16384 => vec![vec![58, 58, 59], vec![48, 48, 48, 48, 48, 48, 48, 48, 48]],
        _ => vec![],
    }
}

/// Selects the smallest secure BFV parameter set whose data modulus leaves a
/// positive noise budget for `rounds_between_refresh` rounds of `profile`.
///
/// # Errors
///
/// Returns [`HeError::InvalidParameters`] when no standardized set fits.
pub fn select_bfv_params(
    profile: &WorkloadProfile,
    rounds_between_refresh: u32,
) -> Result<HeParams, HeError> {
    let required_t = required_plain_bits(profile);
    let mut best: Option<HeParams> = None;
    for n in [2048usize, 4096, 8192, 16384] {
        let max_bits = match max_coeff_bits_128(n) {
            Some(b) => b,
            None => continue,
        };
        // Batching needs a prime t ≡ 1 (mod 2N): take the smallest bit size
        // at or above the workload requirement for which one exists.
        let floor = required_t.max((2 * n).ilog2() + 1);
        let t_bits = match (floor..floor + 6)
            .find(|&b| choco_math::prime::try_generate_plain_modulus(b, n).is_some())
        {
            Some(b) => b,
            None => continue,
        };
        for chain in candidate_chains(n) {
            let total: u32 = chain.iter().sum();
            if total > max_bits {
                continue;
            }
            // Data modulus excludes the special prime.
            let data_bits: u32 = if chain.len() > 1 {
                chain[..chain.len() - 1].iter().sum()
            } else {
                chain[0]
            };
            let demand = rounds_between_refresh as f64 * round_noise_bits(profile, n, t_bits);
            let budget = data_bits as f64 - t_bits as f64 - 1.0;
            if budget <= demand {
                continue;
            }
            let params = HeParams::bfv(n, &chain, t_bits)?;
            let better = match &best {
                None => true,
                Some(b) => params.ciphertext_bytes() < b.ciphertext_bytes(),
            };
            if better {
                best = Some(params);
            }
        }
    }
    best.ok_or_else(|| {
        HeError::InvalidParameters(
            "no standardized parameter set satisfies the noise demand".into(),
        )
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plain_bits_cover_accumulated_products() {
        let p = WorkloadProfile::choco_conv(256);
        // 2·4 + log2(256) + 1 = 17
        assert_eq!(required_plain_bits(&p), 17);
        let tiny = WorkloadProfile {
            quant_bits: 2,
            plain_mults: 1,
            rotations: 0,
            accumulations: 1,
            masked_permutes: 0,
        };
        assert_eq!(required_plain_bits(&tiny), 13); // floor
    }

    #[test]
    fn masked_permutes_increase_noise_demand() {
        let choco = WorkloadProfile::choco_conv(64);
        let masked = WorkloadProfile::masked_conv(64);
        let t = required_plain_bits(&choco);
        let a = round_noise_bits(&choco, 8192, t);
        let b = round_noise_bits(&masked, 8192, t);
        // Two extra plaintext multiplies ≈ 2·(t_bits + 7) more bits.
        assert!(b - a > 2.0 * t as f64, "masked {b} vs choco {a}");
    }

    #[test]
    fn choco_profile_selects_paper_sized_ciphertexts() {
        // With rotational redundancy a conv layer fits the small sets.
        let params = select_bfv_params(&WorkloadProfile::choco_conv(64), 1).unwrap();
        assert!(
            params.ciphertext_bytes() <= 262_144,
            "CHOCO profile should use ≤256 KiB ciphertexts, got {}",
            params.ciphertext_bytes()
        );
    }

    #[test]
    fn masked_profile_needs_larger_ciphertexts() {
        let choco = select_bfv_params(&WorkloadProfile::choco_conv(64), 1).unwrap();
        let masked = select_bfv_params(&WorkloadProfile::masked_conv(64), 1).unwrap();
        assert!(
            masked.ciphertext_bytes() > choco.ciphertext_bytes(),
            "masked {} vs choco {}",
            masked.ciphertext_bytes(),
            choco.ciphertext_bytes()
        );
    }

    #[test]
    fn deeper_rounds_demand_more_modulus() {
        let p = WorkloadProfile::choco_conv(16);
        let one = select_bfv_params(&p, 1).unwrap();
        let many = select_bfv_params(&p, 3).unwrap();
        assert!(many.ciphertext_bytes() >= one.ciphertext_bytes());
    }

    #[test]
    fn impossible_demand_errors() {
        let p = WorkloadProfile {
            quant_bits: 16,
            plain_mults: 10,
            rotations: 100,
            accumulations: 1 << 20,
            masked_permutes: 10,
        };
        assert!(select_bfv_params(&p, 8).is_err());
    }
}
