//! Channel stacking: redundant per-channel windows at power-of-two strides.
//!
//! For convolutions, CHOCO packs each image channel with rotational
//! redundancy and stacks the channel vectors into evenly spaced,
//! power-of-two-sized slots of one ciphertext (§3.3, "Applying Rotational
//! Redundancy in CHOCO"). Two properties follow:
//!
//! 1. a single row rotation by `r ≤ R` performs the same windowed rotation
//!    in *every* channel simultaneously, and
//! 2. a rotation by a multiple of the stride realigns whole channels, so
//!    summing `C` channels takes `log2(C)` rotate-adds.

use crate::rotation::RedundantLayout;

/// Layout of `channels` stacked redundant windows in one slot row.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StackedLayout {
    channels: usize,
    layout: RedundantLayout,
    stride: usize,
}

impl StackedLayout {
    /// Creates a stacked layout; the stride is the packed channel length
    /// rounded up to a power of two.
    ///
    /// # Panics
    ///
    /// Panics if `channels == 0`.
    pub fn new(channels: usize, layout: RedundantLayout) -> Self {
        assert!(channels > 0, "need at least one channel");
        let stride = layout.packed_len().next_power_of_two();
        StackedLayout {
            channels,
            layout,
            stride,
        }
    }

    /// Number of stacked channels.
    pub fn channels(&self) -> usize {
        self.channels
    }

    /// The per-channel redundant layout.
    pub fn channel_layout(&self) -> &RedundantLayout {
        &self.layout
    }

    /// Power-of-two distance between consecutive channel origins.
    pub fn stride(&self) -> usize {
        self.stride
    }

    /// Total slots consumed.
    pub fn slots_used(&self) -> usize {
        self.channels * self.stride
    }

    /// Whether this layout fits in a batching row of `row_size` slots.
    pub fn fits(&self, row_size: usize) -> bool {
        self.slots_used() <= row_size
    }

    /// Slot index where channel `c`'s window of interest begins.
    pub fn window_start(&self, c: usize) -> usize {
        c * self.stride + self.layout.window_offset()
    }

    /// Packs per-channel value vectors into one slot vector of length
    /// `slots_used()`.
    ///
    /// # Panics
    ///
    /// Panics if the channel count or any channel length mismatches.
    pub fn pack(&self, channel_values: &[Vec<u64>]) -> Vec<u64> {
        assert_eq!(
            channel_values.len(),
            self.channels,
            "channel count mismatch"
        );
        let mut slots = vec![0u64; self.slots_used()];
        for (c, values) in channel_values.iter().enumerate() {
            let packed = self.layout.pack(values);
            let base = c * self.stride;
            slots[base..base + packed.len()].copy_from_slice(&packed);
        }
        slots
    }

    /// Extracts each channel's window of interest from a slot vector.
    ///
    /// # Panics
    ///
    /// Panics if `slots` is shorter than `slots_used()`.
    pub fn extract(&self, slots: &[u64]) -> Vec<Vec<u64>> {
        assert!(slots.len() >= self.slots_used(), "slot vector too short");
        (0..self.channels)
            .map(|c| {
                let base = c * self.stride;
                self.layout
                    .extract(&slots[base..base + self.stride.min(slots.len() - base)])
            })
            .collect()
    }

    /// Builds a per-slot plaintext weight vector that multiplies channel `c`
    /// by `weights[c]` across its whole packed block (redundant entries
    /// included, so rotations keep weighted values aligned).
    ///
    /// # Panics
    ///
    /// Panics if `weights.len() != channels`.
    pub fn broadcast_weights(&self, weights: &[u64]) -> Vec<u64> {
        assert_eq!(weights.len(), self.channels, "weight count mismatch");
        let mut slots = vec![0u64; self.slots_used()];
        for (c, &w) in weights.iter().enumerate() {
            let base = c * self.stride;
            for s in slots[base..base + self.stride].iter_mut() {
                *s = w;
            }
        }
        slots
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn layout() -> StackedLayout {
        StackedLayout::new(4, RedundantLayout::new(5, 2))
    }

    #[test]
    fn stride_is_power_of_two() {
        let l = layout();
        assert_eq!(l.stride(), 16); // packed_len = 9 → 16
        assert_eq!(l.slots_used(), 64);
        assert!(l.fits(64));
        assert!(!l.fits(63));
    }

    #[test]
    fn pack_extract_roundtrip_all_channels() {
        let l = layout();
        let channels: Vec<Vec<u64>> = (0..4)
            .map(|c| (0..5).map(|i| (c * 10 + i) as u64).collect())
            .collect();
        let slots = l.pack(&channels);
        assert_eq!(l.extract(&slots), channels);
    }

    #[test]
    fn window_start_accounts_for_redundancy() {
        let l = layout();
        assert_eq!(l.window_start(0), 2);
        assert_eq!(l.window_start(3), 3 * 16 + 2);
    }

    #[test]
    fn global_rotation_rotates_every_channel_window() {
        // Simulate a ciphertext row rotation on the packed slots and verify
        // every channel window sees the same windowed rotation.
        let l = layout();
        let channels: Vec<Vec<u64>> = (0..4)
            .map(|c| (1..=5).map(|i| (c * 100 + i) as u64).collect())
            .collect();
        let slots = l.pack(&channels);
        let r = 2usize;
        // left-rotate the whole row
        let mut rotated = slots.clone();
        rotated.rotate_left(r);
        let got = l.extract(&rotated);
        for (c, values) in channels.iter().enumerate() {
            assert_eq!(
                got[c],
                l.channel_layout().reference_rotate(values, r as i64),
                "channel {c}"
            );
        }
    }

    #[test]
    fn stride_rotation_realigns_channels() {
        let l = layout();
        let channels: Vec<Vec<u64>> = (0..4).map(|c| vec![(c + 1) as u64; 5]).collect();
        let mut slots = l.pack(&channels);
        slots.rotate_left(l.stride());
        let got = l.extract(&slots);
        // channel 0 now holds channel 1's values, etc.
        assert_eq!(got[0], channels[1]);
        assert_eq!(got[2], channels[3]);
    }

    #[test]
    fn broadcast_weights_cover_blocks() {
        let l = layout();
        let w = l.broadcast_weights(&[7, 8, 9, 10]);
        assert_eq!(w[0], 7);
        assert_eq!(w[15], 7);
        assert_eq!(w[16], 8);
        assert_eq!(w[63], 10);
    }

    #[test]
    #[should_panic(expected = "channel count mismatch")]
    fn pack_rejects_wrong_channel_count() {
        layout().pack(&[vec![1, 2, 3, 4, 5]]);
    }
}
