//! Resilient protocol sessions: retries, backoff, and the health watchdog —
//! one implementation, generic over scheme and channel.
//!
//! A [`Session<S, C>`] owns both protocol roles plus the two directed
//! channels between them, and replaces the bare `upload`/`download` helpers
//! of [`crate::protocol`] with fault-tolerant exchanges. "Direct" and
//! "resilient" are not separate code paths: a session over
//! [`DirectChannel`](super::channel::DirectChannel) *is* the zero-fault
//! instance, and bills identically to the fault-free protocol.
//!
//! * every ciphertext crosses the link as a tagged frame
//!   ([`super::frame`]); the receiver discards corrupt, truncated and stale
//!   duplicate deliveries by tag and sequence number;
//! * a failed exchange is retried up to [`RetryPolicy::max_attempts`]
//!   times with exponential backoff and deterministic jitter on a
//!   *simulated* millisecond clock (runs are reproducible; no wall time);
//! * the first attempt of an exchange bills the ciphertext's payload bytes
//!   to the regular [`CommLedger`] counters — identical to the fault-free
//!   protocol, keeping Figure-10-style reports comparable — while every
//!   retransmission bills its full wire bytes to
//!   [`CommLedger::retransmit_bytes`];
//! * a scheme-generic health watchdog ([`Session::ensure_health`]) probes
//!   each ciphertext's remaining headroom — invariant noise budget in bits
//!   under BFV, remaining rescale levels under CKKS, via
//!   [`HeScheme::health`] — and, when it drops below the floor, performs a
//!   client-aided refresh round (download → decrypt → re-encrypt → upload,
//!   one extra round in the ledger) instead of letting the computation die.

use super::channel::Channel;
use super::checkpoint::SessionCheckpoint;
use super::fault::FaultStats;
use super::frame::{self, FrameKind, TagKey};
use super::TransportError;
use crate::protocol::{Client, CommLedger, Server};
use choco_he::params::{HeParams, SchemeType};
use choco_he::{Bfv, Ckks, HeScheme};
use choco_prng::Blake3Rng;

/// Bounded-retry policy for one frame exchange.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Attempts per exchange (first try included).
    pub max_attempts: u32,
    /// Backoff after the first failed attempt, in milliseconds; doubles per
    /// attempt.
    pub base_backoff_ms: u64,
    /// Backoff ceiling in milliseconds.
    pub max_backoff_ms: u64,
    /// Simulated-time budget for one exchange, in milliseconds.
    pub round_timeout_ms: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 5,
            base_backoff_ms: 10,
            max_backoff_ms: 500,
            round_timeout_ms: 10_000,
        }
    }
}

impl RetryPolicy {
    /// Exponential backoff for `attempt` (0-based), plus deterministic
    /// jitter in `[0, backoff/2]` drawn from the session's jitter stream.
    fn backoff_ms(&self, attempt: u32, jitter: &mut Blake3Rng) -> u64 {
        let exp = self
            .base_backoff_ms
            .saturating_mul(1u64 << attempt.min(20))
            .min(self.max_backoff_ms);
        // Saturating: a near-`u64::MAX` ceiling plus jitter must clamp, not
        // wrap (overflow checks are on in test builds).
        exp.saturating_add(jitter.next_below(exp / 2 + 1))
    }
}

/// Channels plus retry policy — everything a resilient application runner
/// needs to describe its link, bundled so runner signatures stay short.
pub struct LinkConfig {
    /// Client → server channel.
    pub uplink: Box<dyn Channel>,
    /// Server → client channel.
    pub downlink: Box<dyn Channel>,
    /// Retry/backoff/timeout budget per exchange.
    pub policy: RetryPolicy,
}

impl LinkConfig {
    /// Perfect in-memory channels with the default retry policy.
    pub fn direct() -> Self {
        LinkConfig {
            uplink: Box::new(super::channel::DirectChannel::new()),
            downlink: Box::new(super::channel::DirectChannel::new()),
            policy: RetryPolicy::default(),
        }
    }
}

enum Direction {
    Upload,
    Download,
}

/// Which ledger line a transfer's first attempt bills: `Primary` is the
/// regular upload/download accounting, `Recovery` is post-crash traffic
/// (reconnect handshake, state re-uploads) kept on its own line so
/// crash-interrupted runs stay point-comparable to uninterrupted ones.
#[derive(Clone, Copy)]
enum Billing {
    Primary,
    Recovery,
}

/// The session operation kinds a [`CrashPlan`] can target.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CrashOp {
    /// A client → server ciphertext transfer.
    Upload,
    /// A server → client ciphertext transfer.
    Download,
    /// A watchdog-triggered noise-refresh round trip.
    Refresh,
    /// A server-side compute step (driven by [`Session::compute_tick`]).
    Compute,
}

/// A deterministic crash point: kill the session at the `nth` occurrence
/// (1-based) of `op`. Armed via [`Session::arm_crash`]; fires exactly once
/// as a typed [`TransportError::Crashed`], *before* the operation bills or
/// draws randomness, so a resume from the last checkpoint replays the run
/// bit-identically.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CrashPlan {
    /// Operation kind to kill.
    pub op: CrashOp,
    /// 1-based occurrence count at which the crash fires.
    pub nth: u32,
}

/// The wire frame kind carrying ciphertexts of scheme `S`.
fn ciphertext_kind<S: HeScheme>() -> FrameKind {
    match S::SCHEME {
        SchemeType::Bfv => FrameKind::BfvCiphertext,
        SchemeType::Ckks => FrameKind::CkksCiphertext,
    }
}

/// The shared retry engine: everything except the scheme-specific
/// serialization and refresh logic. Generic over the channel type so the
/// common case — concrete channels known at compile time — monomorphizes.
struct Link<C: Channel> {
    uplink: C,
    downlink: C,
    tag_key: TagKey,
    policy: RetryPolicy,
    jitter: Blake3Rng,
    clock_ms: u64,
    next_seq: u64,
}

impl<C: Channel> Link<C> {
    fn new(seed: &[u8], uplink: C, downlink: C, policy: RetryPolicy) -> Self {
        Link {
            uplink,
            downlink,
            tag_key: TagKey::from_session_seed(seed),
            policy,
            jitter: Blake3Rng::from_seed_labeled(seed, "retry-jitter"),
            clock_ms: 0,
            next_seq: 0,
        }
    }

    /// Sends `payload` one way and waits for it to arrive intact, retrying
    /// per the policy. Returns the delivered payload bytes.
    fn transfer(
        &mut self,
        dir: Direction,
        kind: FrameKind,
        payload: &[u8],
        billed_payload: usize,
        billing: Billing,
        ledger: &mut CommLedger,
    ) -> Result<Vec<u8>, TransportError> {
        let seq = self.next_seq;
        // The cursor must never wrap: a wrapped seq would alias a frame from
        // the beginning of the session and defeat stale-duplicate rejection.
        if seq == u64::MAX {
            return Err(TransportError::SeqExhausted);
        }
        self.next_seq += 1;
        let wire = frame::encode_frame(kind, seq, payload, &self.tag_key);
        let start = self.clock_ms;
        let mut last = TransportError::Dropped;
        for attempt in 0..self.policy.max_attempts {
            let channel = match dir {
                Direction::Upload => &mut self.uplink,
                Direction::Download => &mut self.downlink,
            };
            channel.send(wire.clone());
            if attempt == 0 {
                // Bill exactly what the fault-free protocol would: the
                // ciphertext payload, not the framing overhead. Recovery
                // traffic goes to its own ledger line.
                match billing {
                    Billing::Primary => match dir {
                        Direction::Upload => ledger.record_upload(billed_payload),
                        Direction::Download => ledger.record_download(billed_payload),
                    },
                    Billing::Recovery => ledger.record_recovery(billed_payload),
                }
            } else {
                ledger.record_retransmit(wire.len());
            }
            // Drain deliveries until our frame verifies or the pipe is dry.
            let mut arrived = None;
            loop {
                let channel = match dir {
                    Direction::Upload => &mut self.uplink,
                    Direction::Download => &mut self.downlink,
                };
                let Some(delivery) = channel.recv() else {
                    break;
                };
                self.clock_ms += delivery.latency_ms;
                match frame::decode_frame(&delivery.wire, &self.tag_key) {
                    Ok(f) if f.seq == seq => {
                        arrived = Some(f.payload);
                        break;
                    }
                    // A verified frame with an older seq is a stale
                    // duplicate from a previous exchange: discard.
                    Ok(_) => continue,
                    Err(e) => {
                        last = e;
                        continue;
                    }
                }
            }
            if let Some(bytes) = arrived {
                return Ok(bytes);
            }
            if attempt + 1 < self.policy.max_attempts {
                self.clock_ms += self.policy.backoff_ms(attempt, &mut self.jitter);
            }
            let elapsed = self.clock_ms - start;
            if elapsed > self.policy.round_timeout_ms {
                return Err(TransportError::TimeoutExceeded {
                    budget_ms: self.policy.round_timeout_ms,
                    elapsed_ms: elapsed,
                });
            }
        }
        Err(TransportError::RetriesExhausted {
            attempts: self.policy.max_attempts,
            last: last.to_string(),
        })
    }
}

/// A fault-tolerant offload session, generic over scheme `S` and channel
/// `C`. The channel defaults to `Box<dyn Channel>` for heterogeneous links
/// built from a [`LinkConfig`]; hot paths that want full monomorphization
/// name a concrete channel via [`Session::over`].
pub struct Session<S: HeScheme, C: Channel = Box<dyn Channel>> {
    client: Client<S>,
    server: Server<S>,
    link: Link<C>,
    ledger: CommLedger,
    refresh_floor: f64,
    params: HeParams,
    seed: Vec<u8>,
    crash: Option<CrashPlan>,
    ops: [u32; 4],
}

impl<S: HeScheme, C: Channel> Session<S, C> {
    /// Builds a session over concrete channels: keygen from `seed`, server
    /// provisioned with `rotation_steps`, frames exchanged over the given
    /// channels.
    ///
    /// # Errors
    ///
    /// Propagates HE-layer setup failures.
    pub fn over(
        params: &HeParams,
        seed: &[u8],
        rotation_steps: &[i64],
        uplink: C,
        downlink: C,
        policy: RetryPolicy,
    ) -> Result<Self, TransportError> {
        let mut client = Client::<S>::new(params, seed)?;
        let server = client.provision_server(rotation_steps)?;
        Ok(Session {
            client,
            server,
            link: Link::new(seed, uplink, downlink, policy),
            ledger: CommLedger::new(),
            refresh_floor: S::HEALTH_FLOOR,
            params: params.clone(),
            seed: seed.to_vec(),
            crash: None,
            ops: [0; 4],
        })
    }

    /// Overrides the watchdog's refresh floor (noise-budget bits under
    /// BFV, remaining levels under CKKS).
    pub fn with_refresh_floor(mut self, floor: f64) -> Self {
        self.refresh_floor = floor;
        self
    }

    /// The client role.
    pub fn client_mut(&mut self) -> &mut Client<S> {
        &mut self.client
    }

    /// The server role.
    pub fn server(&self) -> &Server<S> {
        &self.server
    }

    /// The communication ledger.
    pub fn ledger(&self) -> &CommLedger {
        &self.ledger
    }

    /// Mutable ledger access (for marking protocol rounds).
    pub fn ledger_mut(&mut self) -> &mut CommLedger {
        &mut self.ledger
    }

    /// Simulated milliseconds spent on the link so far.
    pub fn clock_ms(&self) -> u64 {
        self.link.clock_ms
    }

    /// Fault counters of the client → server link.
    pub fn uplink_stats(&self) -> FaultStats {
        self.link.uplink.fault_stats()
    }

    /// Fault counters of the server → client link.
    pub fn downlink_stats(&self) -> FaultStats {
        self.link.downlink.fault_stats()
    }

    /// Sends a ciphertext client → server, retrying until it arrives
    /// intact.
    ///
    /// # Errors
    ///
    /// Typed transport errors if the link is worse than the retry budget.
    pub fn upload(&mut self, ct: &S::Ciphertext) -> Result<S::Ciphertext, TransportError> {
        self.crash_check(CrashOp::Upload)?;
        let payload = S::ct_to_wire(ct);
        let billed = S::ct_bytes(ct);
        let bytes = self.link.transfer(
            Direction::Upload,
            ciphertext_kind::<S>(),
            &payload,
            billed,
            Billing::Primary,
            &mut self.ledger,
        )?;
        Ok(S::ct_from_wire(&bytes)?)
    }

    /// Sends a ciphertext server → client, retrying until it arrives
    /// intact.
    ///
    /// # Errors
    ///
    /// Typed transport errors if the link is worse than the retry budget.
    pub fn download(&mut self, ct: &S::Ciphertext) -> Result<S::Ciphertext, TransportError> {
        self.crash_check(CrashOp::Download)?;
        let payload = S::ct_to_wire(ct);
        let billed = S::ct_bytes(ct);
        let bytes = self.link.transfer(
            Direction::Download,
            ciphertext_kind::<S>(),
            &payload,
            billed,
            Billing::Primary,
            &mut self.ledger,
        )?;
        Ok(S::ct_from_wire(&bytes)?)
    }

    /// [`Session::download`] plus sentinel verification: downloads the
    /// ciphertext, decrypts it once, and checks that each `(slot, value)`
    /// pair in `expected` holds (exactly under BFV, within `tol` under
    /// CKKS). Returns the delivered ciphertext and the decrypted slots so
    /// callers don't decrypt twice.
    ///
    /// # Errors
    ///
    /// [`TransportError::SentinelMismatch`] names the first failing slot;
    /// transport errors propagate from the download itself.
    pub fn download_checked(
        &mut self,
        ct: &S::Ciphertext,
        expected: &[(usize, S::Value)],
        tol: f64,
    ) -> Result<(S::Ciphertext, Vec<S::Value>), TransportError> {
        let back = self.download(ct)?;
        let values = self.client.decrypt(&back)?;
        for &(slot, want) in expected {
            let got = values
                .get(slot)
                .copied()
                .ok_or(TransportError::SentinelMismatch { slot })?;
            if !S::value_matches(got, want, tol) {
                return Err(TransportError::SentinelMismatch { slot });
            }
        }
        Ok((back, values))
    }

    /// The health watchdog: returns `ct` unchanged while its remaining
    /// headroom ([`HeScheme::health`] — noise-budget bits under BFV,
    /// levels under CKKS) stays at or above `floor`, otherwise runs a
    /// client-aided refresh round and returns the re-encrypted ciphertext.
    ///
    /// The client can evaluate the headroom because it holds the secret
    /// key; in the deployed protocol it tracks the same quantity
    /// analytically from the public operation sequence (§4.4 parameter
    /// model).
    ///
    /// # Errors
    ///
    /// Transport errors from the refresh round trip.
    pub fn ensure_health(
        &mut self,
        ct: &S::Ciphertext,
        floor: f64,
    ) -> Result<S::Ciphertext, TransportError> {
        if self.client.health(ct) >= floor {
            return Ok(ct.clone());
        }
        self.refresh(ct)
    }

    /// [`Self::ensure_health`] with the session's configured floor.
    ///
    /// # Errors
    ///
    /// Transport errors from the refresh round trip.
    pub fn guard(&mut self, ct: &S::Ciphertext) -> Result<S::Ciphertext, TransportError> {
        self.ensure_health(ct, self.refresh_floor)
    }

    /// Client-aided refresh: download → decrypt → re-encrypt → upload.
    /// Costs one extra protocol round, visible in the ledger as
    /// `refresh_rounds += 1` plus the refresh traffic. Under CKKS the
    /// re-encryption lands back at the top of the level chain.
    ///
    /// # Errors
    ///
    /// Transport errors from either leg of the round trip.
    pub fn refresh(&mut self, ct: &S::Ciphertext) -> Result<S::Ciphertext, TransportError> {
        self.crash_check(CrashOp::Refresh)?;
        let at_client = self.download(ct)?;
        let values = self.client.decrypt(&at_client)?;
        let fresh = self.client.encrypt(&values)?;
        let back = self.upload(&fresh)?;
        self.ledger.record_refresh();
        self.ledger.end_round();
        Ok(back)
    }

    /// Consumes the session, returning the roles and the final ledger.
    pub fn into_parts(self) -> (Client<S>, Server<S>, CommLedger) {
        (self.client, self.server, self.ledger)
    }

    /// Arms a deterministic crash point. At the `nth` occurrence of the
    /// planned operation the session returns
    /// [`TransportError::Crashed`] *before* billing or drawing randomness.
    /// One plan per run; [`Session::resume`] does not re-arm.
    pub fn arm_crash(&mut self, plan: CrashPlan) {
        self.crash = Some(plan);
    }

    /// How many times `op` has started in this session instance (crash
    /// checks included). Resets to zero on resume.
    pub fn op_count(&self, op: CrashOp) -> u32 {
        self.ops[op as usize]
    }

    /// Marks one server-side compute step so a [`CrashPlan`] can target
    /// `CrashOp::Compute`. Resumable drivers call this before each major
    /// server kernel.
    ///
    /// # Errors
    ///
    /// [`TransportError::Crashed`] when the armed plan fires here.
    pub fn compute_tick(&mut self) -> Result<(), TransportError> {
        self.crash_check(CrashOp::Compute)
    }

    fn crash_check(&mut self, op: CrashOp) -> Result<(), TransportError> {
        let idx = op as usize;
        self.ops[idx] += 1;
        if let Some(plan) = self.crash {
            if plan.op == op && self.ops[idx] == plan.nth {
                return Err(TransportError::Crashed { op, nth: plan.nth });
            }
        }
        Ok(())
    }

    /// Serializes the full session state — keys, RNG positions, sequence
    /// cursor, clock, policy, ledger, in-flight channel state — plus the
    /// caller's opaque `progress` blob into a durable, hash-sealed
    /// checkpoint. Call at a step boundary; the blob contains the secret
    /// key and stays on the trusted client.
    pub fn checkpoint(&self, progress: &[u8]) -> Vec<u8> {
        SessionCheckpoint {
            scheme: S::SCHEME,
            degree: self.params.degree() as u32,
            security_checked: self.params.is_security_checked(),
            plain_modulus: self.params.plain_modulus(),
            scale_bits: self.params.scale_bits(),
            prime_bits: self.params.prime_bits().to_vec(),
            seed: self.seed.clone(),
            client_rng_drawn: self.client.rng_bytes_drawn(),
            enc_ops: self.client.encryption_count(),
            dec_ops: self.client.decryption_count(),
            policy: self.link.policy,
            clock_ms: self.link.clock_ms,
            next_seq: self.link.next_seq,
            jitter_drawn: self.link.jitter.bytes_drawn(),
            refresh_floor: self.refresh_floor,
            ledger: self.ledger,
            keys_wire: S::keys_to_wire(self.client.keys()),
            relin_wire: S::relin_to_wire(self.server.relin_key()),
            galois_wire: S::galois_to_wire(self.server.galois_keys()),
            uplink_state: self.link.uplink.export_state(),
            downlink_state: self.link.downlink.export_state(),
            progress: progress.to_vec(),
        }
        .to_bytes()
    }

    /// Rebuilds a session from a checkpoint blob over freshly constructed
    /// channels (configured like the originals — e.g. same fault seed and
    /// plan), then runs the reconnect handshake. Returns the session and
    /// the workload progress blob stored at checkpoint time.
    ///
    /// Determinism guarantee: the client RNG and retry jitter resume at
    /// their exact byte offsets, so every ciphertext produced after a
    /// resume is bit-identical to the uninterrupted run. Only
    /// `retransmit_bytes`, `recovery_bytes` and the simulated clock may
    /// differ — the handshake consumes link randomness.
    ///
    /// # Errors
    ///
    /// [`TransportError::BadCheckpoint`] on a malformed/tampered blob or a
    /// scheme/parameter mismatch; transport errors from the handshake.
    pub fn resume(blob: &[u8], uplink: C, downlink: C) -> Result<(Self, Vec<u8>), TransportError> {
        let ck = SessionCheckpoint::from_bytes(blob)?;
        if ck.scheme != S::SCHEME {
            return Err(TransportError::BadCheckpoint(format!(
                "checkpoint is for {:?}, session is {:?}",
                ck.scheme,
                S::SCHEME
            )));
        }
        let params = ck.rebuild_params()?;
        let ctx = S::context(&params)?;
        let keys = S::keys_from_wire(&ck.keys_wire)?;
        let relin = S::relin_from_wire(&ck.relin_wire)?;
        let galois = S::galois_from_wire(&ck.galois_wire)?;
        let public = S::public_key(&keys).clone();
        // The client RNG stream is a pure function of (seed, offset):
        // fast-forwarding past keygen, provisioning and every encryption so
        // far makes the next draw identical to the uninterrupted run's.
        let mut rng = Blake3Rng::from_seed(&ck.seed);
        rng.skip(ck.client_rng_drawn);
        let client = Client::<S>::from_parts(ctx.clone(), keys, rng, ck.enc_ops, ck.dec_ops);
        let server = Server::<S>::from_parts(ctx, public, relin, galois);
        let mut uplink = uplink;
        let mut downlink = downlink;
        uplink.import_state(&ck.uplink_state)?;
        downlink.import_state(&ck.downlink_state)?;
        let mut link = Link::new(&ck.seed, uplink, downlink, ck.policy);
        link.jitter.skip(ck.jitter_drawn);
        link.clock_ms = ck.clock_ms;
        link.next_seq = ck.next_seq;
        let mut session = Session {
            client,
            server,
            link,
            ledger: ck.ledger,
            refresh_floor: ck.refresh_floor,
            params,
            seed: ck.seed.clone(),
            crash: None,
            ops: [0; 4],
        };
        session.reconnect()?;
        Ok((session, ck.progress))
    }

    /// The reconnect handshake after a resume: drains both pipes, treating
    /// every in-flight delivery as a stale replay — verified frames only
    /// advance the sequence cursor past the highest seq seen, so a
    /// duplicated frame from before the crash can never be mistaken for a
    /// fresh exchange — then confirms the agreed cursor with one `Control`
    /// frame billed as recovery traffic.
    fn reconnect(&mut self) -> Result<(), TransportError> {
        for dir in [Direction::Upload, Direction::Download] {
            loop {
                let channel = match dir {
                    Direction::Upload => &mut self.link.uplink,
                    Direction::Download => &mut self.link.downlink,
                };
                let Some(delivery) = channel.recv() else {
                    break;
                };
                self.link.clock_ms += delivery.latency_ms;
                if let Ok(f) = frame::decode_frame(&delivery.wire, &self.link.tag_key) {
                    if f.seq >= self.link.next_seq {
                        self.link.next_seq = f.seq + 1;
                    }
                }
            }
        }
        let cursor = self.link.next_seq.to_le_bytes();
        self.link.transfer(
            Direction::Upload,
            FrameKind::Control,
            &cursor,
            cursor.len(),
            Billing::Recovery,
            &mut self.ledger,
        )?;
        Ok(())
    }

    /// Re-uploads an already-encrypted ciphertext from its wire bytes after
    /// a resume — *without* touching the client RNG, so recovery never
    /// perturbs the deterministic encryption stream. Billed to
    /// [`CommLedger::recovery_bytes`].
    ///
    /// # Errors
    ///
    /// Typed transport errors; [`TransportError::He`] if `wire` is not a
    /// valid ciphertext.
    pub fn recover_upload(&mut self, wire: &[u8]) -> Result<S::Ciphertext, TransportError> {
        let ct = S::ct_from_wire(wire)?;
        let billed = S::ct_bytes(&ct);
        let bytes = self.link.transfer(
            Direction::Upload,
            ciphertext_kind::<S>(),
            wire,
            billed,
            Billing::Recovery,
            &mut self.ledger,
        )?;
        Ok(S::ct_from_wire(&bytes)?)
    }
}

impl<S: HeScheme> Session<S, Box<dyn Channel>> {
    /// Builds a session over boxed channels (the pre-generic constructor
    /// signature).
    ///
    /// # Errors
    ///
    /// Propagates HE-layer setup failures.
    pub fn new(
        params: &HeParams,
        seed: &[u8],
        rotation_steps: &[i64],
        uplink: Box<dyn Channel>,
        downlink: Box<dyn Channel>,
        policy: RetryPolicy,
    ) -> Result<Self, TransportError> {
        Self::over(params, seed, rotation_steps, uplink, downlink, policy)
    }

    /// Convenience constructor over perfect in-memory channels — the
    /// zero-fault instance that replaces the old "direct" code path.
    pub fn direct(
        params: &HeParams,
        seed: &[u8],
        rotation_steps: &[i64],
    ) -> Result<Self, TransportError> {
        Self::with_link(params, seed, rotation_steps, LinkConfig::direct())
    }

    /// Builds a session from a bundled [`LinkConfig`].
    ///
    /// # Errors
    ///
    /// Propagates HE-layer setup failures.
    pub fn with_link(
        params: &HeParams,
        seed: &[u8],
        rotation_steps: &[i64],
        link: LinkConfig,
    ) -> Result<Self, TransportError> {
        Self::over(
            params,
            seed,
            rotation_steps,
            link.uplink,
            link.downlink,
            link.policy,
        )
    }
}

impl<C: Channel> Session<Bfv, C> {
    /// BFV-named convenience for [`Session::ensure_health`]: refresh when
    /// fewer than `min_bits` of invariant noise budget remain.
    ///
    /// # Errors
    ///
    /// Transport errors from the refresh round trip.
    pub fn ensure_budget(
        &mut self,
        ct: &choco_he::bfv::Ciphertext,
        min_bits: f64,
    ) -> Result<choco_he::bfv::Ciphertext, TransportError> {
        self.ensure_health(ct, min_bits)
    }
}

impl<C: Channel> Session<Ckks, C> {
    /// CKKS-named convenience for [`Session::ensure_health`]: refresh when
    /// fewer than `min_levels` rescale levels remain.
    ///
    /// # Errors
    ///
    /// Transport errors from the refresh round trip.
    pub fn ensure_level(
        &mut self,
        ct: &choco_he::ckks::CkksCiphertext,
        min_levels: usize,
    ) -> Result<choco_he::ckks::CkksCiphertext, TransportError> {
        self.ensure_health(ct, min_levels as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transport::channel::DirectChannel;
    use crate::transport::fault::{FaultPlan, FaultyChannel};

    fn params() -> HeParams {
        HeParams::bfv_insecure(256, &[40, 40, 41], 14).unwrap()
    }

    fn faulty(seed: &[u8], plan: FaultPlan) -> Box<dyn Channel> {
        Box::new(FaultyChannel::new(seed, plan))
    }

    #[test]
    fn direct_session_matches_plain_protocol_billing() {
        let mut s = Session::<Bfv>::direct(&params(), b"session direct", &[]).unwrap();
        let values: Vec<u64> = (0..256).collect();
        let ct = s.client_mut().encrypt_slots(&values).unwrap();
        let at_server = s.upload(&ct).unwrap();
        let back = s.download(&at_server).unwrap();
        let out = s.client_mut().decrypt_slots(&back).unwrap();
        assert_eq!(out, values);
        // Billing matches the fault-free protocol: payload bytes only.
        assert_eq!(s.ledger().upload_bytes, ct.byte_size() as u64);
        assert_eq!(s.ledger().download_bytes, ct.byte_size() as u64);
        assert_eq!(s.ledger().retransmit_bytes, 0);
        assert_eq!(s.ledger().refresh_rounds, 0);
    }

    #[test]
    fn monomorphic_session_over_concrete_channels() {
        // `Session::over` with a concrete channel type: no boxing, no dyn
        // dispatch anywhere on the exchange path.
        let mut s = Session::<Bfv, DirectChannel>::over(
            &params(),
            b"session mono",
            &[],
            DirectChannel::new(),
            DirectChannel::new(),
            RetryPolicy::default(),
        )
        .unwrap();
        let values: Vec<u64> = (0..256).map(|i| i * 3 % 97).collect();
        let ct = s.client_mut().encrypt_slots(&values).unwrap();
        let at_server = s.upload(&ct).unwrap();
        let back = s.download(&at_server).unwrap();
        assert_eq!(s.client_mut().decrypt_slots(&back).unwrap(), values);
        assert_eq!(s.ledger().retransmit_bytes, 0);
    }

    #[test]
    fn flaky_link_recovers_and_bills_retransmits() {
        let plan = FaultPlan::flaky();
        let mut s = Session::<Bfv>::new(
            &params(),
            b"session flaky",
            &[],
            faulty(b"up", plan),
            faulty(b"down", plan),
            RetryPolicy {
                max_attempts: 16,
                ..RetryPolicy::default()
            },
        )
        .unwrap();
        let values: Vec<u64> = (0..256).map(|i| i * 7 % 101).collect();
        for round in 0..10 {
            let ct = s.client_mut().encrypt_slots(&values).unwrap();
            let at_server = s.upload(&ct).unwrap();
            let back = s.download(&at_server).unwrap();
            let out = s.client_mut().decrypt_slots(&back).unwrap();
            assert_eq!(out, values, "round {round} corrupted data");
        }
        let faults = s.uplink_stats().total_faults() + s.downlink_stats().total_faults();
        assert!(faults > 0, "flaky plan injected no faults");
        assert!(s.ledger().retransmit_bytes > 0);
        // Primary counters unaffected by retries: 10 uploads + 10 downloads.
        assert_eq!(s.ledger().uploads, 10);
        assert_eq!(s.ledger().downloads, 10);
    }

    #[test]
    fn blackhole_link_yields_typed_error() {
        let mut s = Session::<Bfv>::new(
            &params(),
            b"session dead",
            &[],
            faulty(b"up", FaultPlan::blackhole()),
            faulty(b"down", FaultPlan::blackhole()),
            RetryPolicy::default(),
        )
        .unwrap();
        let ct = s.client_mut().encrypt_slots(&[1; 256]).unwrap();
        match s.upload(&ct) {
            Err(TransportError::RetriesExhausted { attempts, .. }) => {
                assert_eq!(attempts, RetryPolicy::default().max_attempts);
            }
            other => panic!("expected RetriesExhausted, got {other:?}"),
        }
    }

    #[test]
    fn timeout_budget_is_enforced() {
        let mut s = Session::<Bfv>::new(
            &params(),
            b"session slow",
            &[],
            faulty(b"up", FaultPlan::blackhole()),
            faulty(b"down", FaultPlan::blackhole()),
            RetryPolicy {
                max_attempts: 50,
                base_backoff_ms: 100,
                max_backoff_ms: 1000,
                round_timeout_ms: 300,
            },
        )
        .unwrap();
        let ct = s.client_mut().encrypt_slots(&[2; 256]).unwrap();
        match s.upload(&ct) {
            Err(TransportError::TimeoutExceeded {
                budget_ms,
                elapsed_ms,
            }) => {
                assert_eq!(budget_ms, 300);
                assert!(elapsed_ms > 300);
            }
            other => panic!("expected TimeoutExceeded, got {other:?}"),
        }
    }

    #[test]
    fn watchdog_refreshes_exhausted_ciphertext() {
        let mut s = Session::<Bfv>::direct(&params(), b"session watchdog", &[]).unwrap();
        let values: Vec<u64> = (0..256).map(|i| i % 13).collect();
        let ct = s.client_mut().encrypt_slots(&values).unwrap();
        let mut at_server = s.upload(&ct).unwrap();
        // Burn noise budget with repeated plain multiplications until the
        // watchdog would trip.
        let weights = vec![3u64; 256];
        let mut refreshed = 0;
        for _ in 0..64 {
            let guarded = s.ensure_budget(&at_server, 15.0).unwrap();
            if s.ledger().refresh_rounds > refreshed {
                refreshed = s.ledger().refresh_rounds;
            }
            at_server = s.server().mul_plain(&guarded, &weights).unwrap();
        }
        assert!(refreshed > 0, "watchdog never refreshed");
        // The final ciphertext still decrypts to *something* well-formed —
        // the chain would have died without refreshes.
        let back = s.download(&at_server).unwrap();
        let out = s.client_mut().decrypt_slots(&back).unwrap();
        assert_eq!(out.len(), 256);
    }

    #[test]
    fn refresh_resets_noise_budget() {
        let mut s = Session::<Bfv>::direct(&params(), b"session refresh", &[]).unwrap();
        let ct = s.client_mut().encrypt_slots(&[5; 256]).unwrap();
        let at_server = s.upload(&ct).unwrap();
        let worn = s.server().mul_plain(&at_server, &vec![7u64; 256]).unwrap();
        let before = {
            let c = s.client_mut();
            c.noise_budget(&worn)
        };
        let fresh = s.refresh(&worn).unwrap();
        let after = s.client_mut().noise_budget(&fresh);
        assert!(
            after > before,
            "refresh did not recover budget ({before} -> {after})"
        );
        assert_eq!(s.ledger().refresh_rounds, 1);
    }

    #[test]
    fn ckks_session_roundtrips_under_faults() {
        let params = HeParams::ckks_insecure(256, &[45, 45, 46], 38).unwrap();
        let plan = FaultPlan::lossless()
            .with_drop_rate(0.3)
            .with_corrupt_rate(0.2);
        let mut s = Session::<Ckks>::new(
            &params,
            b"ckks session",
            &[],
            faulty(b"cu", plan),
            faulty(b"cd", plan),
            RetryPolicy {
                max_attempts: 16,
                ..RetryPolicy::default()
            },
        )
        .unwrap();
        let values: Vec<f64> = (0..128).map(|i| i as f64 / 16.0).collect();
        let ct = s.client_mut().encrypt_values(&values).unwrap();
        let at_server = s.upload(&ct).unwrap();
        let back = s.download(&at_server).unwrap();
        let out = s.client_mut().decrypt_values(&back).unwrap();
        for i in 0..values.len() {
            assert!((out[i] - values[i]).abs() < 1e-2);
        }
    }

    #[test]
    fn backoff_saturates_instead_of_overflowing() {
        let mut jitter = Blake3Rng::from_seed_labeled(b"backoff test", "retry-jitter");
        // Deep retry counts: the shift is clamped at 2^20, the product at
        // the ceiling — no panic under overflow checks.
        let policy = RetryPolicy::default();
        for attempt in [0, 1, 19, 20, 21, 63, 64, 1000, u32::MAX] {
            let b = policy.backoff_ms(attempt, &mut jitter);
            assert!(b <= policy.max_backoff_ms + policy.max_backoff_ms / 2 + 1);
        }
        // Near-u64::MAX base and ceiling: `exp + jitter` would wrap without
        // the saturating add.
        let extreme = RetryPolicy {
            max_attempts: 3,
            base_backoff_ms: u64::MAX - 1,
            max_backoff_ms: u64::MAX,
            round_timeout_ms: u64::MAX,
        };
        for attempt in [0, 1, 20, u32::MAX] {
            let b = extreme.backoff_ms(attempt, &mut jitter);
            assert!(b >= u64::MAX - 1);
        }
    }

    #[test]
    fn duplicate_and_delayed_deliveries_bill_once() {
        // Every frame is duplicated and delayed; the session must count one
        // upload/download per transfer, bill zero retransmits (the first
        // attempt always lands), advance the simulated clock by observed
        // latency, and record the duplicates in the fault stats.
        let plan = FaultPlan::lossless()
            .with_duplicate_rate(1.0)
            .with_max_latency_ms(9);
        let mut s = Session::<Bfv>::new(
            &params(),
            b"session dup",
            &[],
            faulty(b"dup-up", plan),
            faulty(b"dup-down", plan),
            RetryPolicy::default(),
        )
        .unwrap();
        let values: Vec<u64> = (0..256).map(|i| i * 11 % 103).collect();
        let mut ct_bytes = 0u64;
        for _ in 0..5 {
            let ct = s.client_mut().encrypt_slots(&values).unwrap();
            ct_bytes = ct.byte_size() as u64;
            let at_server = s.upload(&ct).unwrap();
            let back = s.download(&at_server).unwrap();
            assert_eq!(s.client_mut().decrypt_slots(&back).unwrap(), values);
        }
        assert_eq!(s.ledger().uploads, 5);
        assert_eq!(s.ledger().downloads, 5);
        assert_eq!(s.ledger().upload_bytes, 5 * ct_bytes);
        assert_eq!(s.ledger().download_bytes, 5 * ct_bytes);
        assert_eq!(s.ledger().retransmit_bytes, 0);
        assert_eq!(s.uplink_stats().duplicated, 5);
        assert_eq!(s.downlink_stats().duplicated, 5);
        // 10 primary + 10 duplicate deliveries drew latency; the clock saw
        // the ones the drain loop consumed.
        assert!(s.clock_ms() > 0, "latency never advanced the clock");
    }

    #[test]
    fn armed_crash_fires_once_with_typed_error() {
        let mut s = Session::<Bfv>::direct(&params(), b"session crash", &[]).unwrap();
        s.arm_crash(CrashPlan {
            op: CrashOp::Upload,
            nth: 2,
        });
        let ct = s.client_mut().encrypt_slots(&[3; 256]).unwrap();
        let at_server = s.upload(&ct).unwrap(); // #1 passes
        match s.upload(&at_server) {
            Err(TransportError::Crashed {
                op: CrashOp::Upload,
                nth: 2,
            }) => {}
            other => panic!("expected Crashed at upload #2, got {other:?}"),
        }
        assert_eq!(s.op_count(CrashOp::Upload), 2);
        // The crash fired before billing: only upload #1 is in the ledger.
        assert_eq!(s.ledger().uploads, 1);
        // One crash per plan: the next occurrence passes.
        assert!(s.upload(&at_server).is_ok());
    }

    #[test]
    fn sentinel_mismatch_is_detected() {
        let mut s = Session::<Bfv>::direct(&params(), b"session sentinel", &[]).unwrap();
        let mut values = vec![0u64; 256];
        values[250] = 77; // sentinel slot
        let ct = s.client_mut().encrypt_slots(&values).unwrap();
        let at_server = s.upload(&ct).unwrap();
        // Identity compute: the sentinel survives.
        let (_, slots) = s.download_checked(&at_server, &[(250, 77)], 0.0).unwrap();
        assert_eq!(slots[250], 77);
        // A computation that disturbs the sentinel is caught.
        let doubled = s.server().mul_plain(&at_server, &vec![2u64; 256]).unwrap();
        match s.download_checked(&doubled, &[(250, 77)], 0.0) {
            Err(TransportError::SentinelMismatch { slot: 250 }) => {}
            other => panic!("expected SentinelMismatch, got {other:?}"),
        }
        // Out-of-range sentinel slots are a mismatch, not a panic.
        match s.download_checked(&at_server, &[(1 << 20, 0)], 0.0) {
            Err(TransportError::SentinelMismatch { .. }) => {}
            other => panic!("expected SentinelMismatch, got {other:?}"),
        }
    }

    #[test]
    fn checkpoint_resume_roundtrips_session_state() {
        let plan = FaultPlan::lossless()
            .with_duplicate_rate(0.3)
            .with_max_latency_ms(4);
        let mk = || {
            (
                Box::new(FaultyChannel::new(b"ck-up", plan)) as Box<dyn Channel>,
                Box::new(FaultyChannel::new(b"ck-down", plan)) as Box<dyn Channel>,
            )
        };
        let (up, down) = mk();
        let mut s = Session::<Bfv>::new(
            &params(),
            b"session ckpt",
            &[],
            up,
            down,
            RetryPolicy::default(),
        )
        .unwrap();
        let values: Vec<u64> = (0..256).map(|i| i % 59).collect();
        let ct = s.client_mut().encrypt_slots(&values).unwrap();
        let at_server = s.upload(&ct).unwrap();
        let blob = s.checkpoint(b"my progress");

        let (up2, down2) = mk();
        let (mut r, progress) = Session::<Bfv>::resume(&blob, up2, down2).unwrap();
        assert_eq!(progress, b"my progress");
        // Ledger carried over; handshake billed only to recovery.
        assert_eq!(r.ledger().uploads, s.ledger().uploads);
        assert_eq!(r.ledger().upload_bytes, s.ledger().upload_bytes);
        assert!(r.ledger().recovery_bytes > 0);
        // The restored client still decrypts, and its RNG continues the
        // same stream: the next encryption matches the original session's.
        let next_orig = s.client_mut().encrypt_slots(&values).unwrap();
        let next_res = r.client_mut().encrypt_slots(&values).unwrap();
        assert_eq!(
            choco_he::serialize::ciphertext_to_bytes(&next_orig),
            choco_he::serialize::ciphertext_to_bytes(&next_res)
        );
        let out = r.client_mut().decrypt_slots(&at_server).unwrap();
        assert_eq!(out, values);

        // Tampered blobs are rejected with a typed error.
        let mut bad = blob.clone();
        let mid = bad.len() / 2;
        bad[mid] ^= 0x10;
        let (up3, down3) = mk();
        match Session::<Bfv>::resume(&bad, up3, down3) {
            Err(TransportError::BadCheckpoint(_)) => {}
            other => panic!("expected BadCheckpoint, got {:?}", other.map(|_| ())),
        }
        // A BFV checkpoint cannot resume a CKKS session.
        let (up4, down4) = mk();
        match Session::<Ckks>::resume(&blob, up4, down4) {
            Err(TransportError::BadCheckpoint(_)) => {}
            other => panic!("expected BadCheckpoint, got {:?}", other.map(|_| ())),
        }
    }

    #[test]
    fn seq_space_exhaustion_is_typed() {
        let mut s = Session::<Bfv>::direct(&params(), b"session seq end", &[]).unwrap();
        s.link.next_seq = u64::MAX;
        let ct = s.client_mut().encrypt_slots(&[1; 256]).unwrap();
        match s.upload(&ct) {
            Err(TransportError::SeqExhausted) => {}
            other => panic!("expected SeqExhausted, got {other:?}"),
        }
        // Nothing was billed and the cursor did not wrap.
        assert_eq!(s.ledger().uploads, 0);
        assert_eq!(s.link.next_seq, u64::MAX);
    }

    #[test]
    fn ckks_level_watchdog_refreshes() {
        let params = HeParams::ckks_insecure(256, &[45, 45, 45, 46], 38).unwrap();
        let mut s = Session::<Ckks>::direct(&params, b"ckks levels", &[]).unwrap();
        let values: Vec<f64> = (0..128).map(|i| (i % 7) as f64 / 8.0).collect();
        let ct = s.client_mut().encrypt_values(&values).unwrap();
        let mut at_server = s.upload(&ct).unwrap();
        let top = at_server.level();
        // Rescale down until only one level remains, guarding each step.
        let ctx_levels = top;
        let mut refreshes_seen = 0;
        for _ in 0..(2 * ctx_levels) {
            at_server = s.ensure_level(&at_server, 2).unwrap();
            refreshes_seen = s.ledger().refresh_rounds;
            let pt = s
                .server()
                .encode_at(&vec![0.5; 128], at_server.level(), at_server.scale())
                .unwrap();
            let prod = s
                .server()
                .context()
                .multiply_plain(&at_server, &pt)
                .unwrap();
            at_server = s.server().context().rescale(&prod).unwrap();
        }
        assert!(refreshes_seen > 0, "level watchdog never refreshed");
    }
}
