//! Resilient protocol sessions: retries, backoff, and the health watchdog —
//! one implementation, generic over scheme and channel.
//!
//! A [`Session<S, C>`] owns both protocol roles plus the two directed
//! channels between them, and replaces the bare `upload`/`download` helpers
//! of [`crate::protocol`] with fault-tolerant exchanges. "Direct" and
//! "resilient" are not separate code paths: a session over
//! [`DirectChannel`](super::channel::DirectChannel) *is* the zero-fault
//! instance, and bills identically to the fault-free protocol.
//!
//! * every ciphertext crosses the link as a tagged frame
//!   ([`super::frame`]); the receiver discards corrupt, truncated and stale
//!   duplicate deliveries by tag and sequence number;
//! * a failed exchange is retried up to [`RetryPolicy::max_attempts`]
//!   times with exponential backoff and deterministic jitter on a
//!   *simulated* millisecond clock (runs are reproducible; no wall time);
//! * the first attempt of an exchange bills the ciphertext's payload bytes
//!   to the regular [`CommLedger`] counters — identical to the fault-free
//!   protocol, keeping Figure-10-style reports comparable — while every
//!   retransmission bills its full wire bytes to
//!   [`CommLedger::retransmit_bytes`];
//! * a scheme-generic health watchdog ([`Session::ensure_health`]) probes
//!   each ciphertext's remaining headroom — invariant noise budget in bits
//!   under BFV, remaining rescale levels under CKKS, via
//!   [`HeScheme::health`] — and, when it drops below the floor, performs a
//!   client-aided refresh round (download → decrypt → re-encrypt → upload,
//!   one extra round in the ledger) instead of letting the computation die.

use super::channel::Channel;
use super::fault::FaultStats;
use super::frame::{self, FrameKind, TagKey};
use super::TransportError;
use crate::protocol::{Client, CommLedger, Server};
use choco_he::params::{HeParams, SchemeType};
use choco_he::{Bfv, Ckks, HeScheme};
use choco_prng::Blake3Rng;

/// Bounded-retry policy for one frame exchange.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Attempts per exchange (first try included).
    pub max_attempts: u32,
    /// Backoff after the first failed attempt, in milliseconds; doubles per
    /// attempt.
    pub base_backoff_ms: u64,
    /// Backoff ceiling in milliseconds.
    pub max_backoff_ms: u64,
    /// Simulated-time budget for one exchange, in milliseconds.
    pub round_timeout_ms: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 5,
            base_backoff_ms: 10,
            max_backoff_ms: 500,
            round_timeout_ms: 10_000,
        }
    }
}

impl RetryPolicy {
    /// Exponential backoff for `attempt` (0-based), plus deterministic
    /// jitter in `[0, backoff/2]` drawn from the session's jitter stream.
    fn backoff_ms(&self, attempt: u32, jitter: &mut Blake3Rng) -> u64 {
        let exp = self
            .base_backoff_ms
            .saturating_mul(1u64 << attempt.min(20))
            .min(self.max_backoff_ms);
        exp + jitter.next_below(exp / 2 + 1)
    }
}

/// Channels plus retry policy — everything a resilient application runner
/// needs to describe its link, bundled so runner signatures stay short.
pub struct LinkConfig {
    /// Client → server channel.
    pub uplink: Box<dyn Channel>,
    /// Server → client channel.
    pub downlink: Box<dyn Channel>,
    /// Retry/backoff/timeout budget per exchange.
    pub policy: RetryPolicy,
}

impl LinkConfig {
    /// Perfect in-memory channels with the default retry policy.
    pub fn direct() -> Self {
        LinkConfig {
            uplink: Box::new(super::channel::DirectChannel::new()),
            downlink: Box::new(super::channel::DirectChannel::new()),
            policy: RetryPolicy::default(),
        }
    }
}

enum Direction {
    Upload,
    Download,
}

/// The wire frame kind carrying ciphertexts of scheme `S`.
fn ciphertext_kind<S: HeScheme>() -> FrameKind {
    match S::SCHEME {
        SchemeType::Bfv => FrameKind::BfvCiphertext,
        SchemeType::Ckks => FrameKind::CkksCiphertext,
    }
}

/// The shared retry engine: everything except the scheme-specific
/// serialization and refresh logic. Generic over the channel type so the
/// common case — concrete channels known at compile time — monomorphizes.
struct Link<C: Channel> {
    uplink: C,
    downlink: C,
    tag_key: TagKey,
    policy: RetryPolicy,
    jitter: Blake3Rng,
    clock_ms: u64,
    next_seq: u64,
}

impl<C: Channel> Link<C> {
    fn new(seed: &[u8], uplink: C, downlink: C, policy: RetryPolicy) -> Self {
        Link {
            uplink,
            downlink,
            tag_key: TagKey::from_session_seed(seed),
            policy,
            jitter: Blake3Rng::from_seed_labeled(seed, "retry-jitter"),
            clock_ms: 0,
            next_seq: 0,
        }
    }

    /// Sends `payload` one way and waits for it to arrive intact, retrying
    /// per the policy. Returns the delivered payload bytes.
    fn transfer(
        &mut self,
        dir: Direction,
        kind: FrameKind,
        payload: &[u8],
        billed_payload: usize,
        ledger: &mut CommLedger,
    ) -> Result<Vec<u8>, TransportError> {
        let seq = self.next_seq;
        self.next_seq += 1;
        let wire = frame::encode_frame(kind, seq, payload, &self.tag_key);
        let start = self.clock_ms;
        let mut last = TransportError::Dropped;
        for attempt in 0..self.policy.max_attempts {
            let channel = match dir {
                Direction::Upload => &mut self.uplink,
                Direction::Download => &mut self.downlink,
            };
            channel.send(wire.clone());
            if attempt == 0 {
                // Bill exactly what the fault-free protocol would: the
                // ciphertext payload, not the framing overhead.
                match dir {
                    Direction::Upload => ledger.record_upload(billed_payload),
                    Direction::Download => ledger.record_download(billed_payload),
                }
            } else {
                ledger.record_retransmit(wire.len());
            }
            // Drain deliveries until our frame verifies or the pipe is dry.
            let mut arrived = None;
            loop {
                let channel = match dir {
                    Direction::Upload => &mut self.uplink,
                    Direction::Download => &mut self.downlink,
                };
                let Some(delivery) = channel.recv() else {
                    break;
                };
                self.clock_ms += delivery.latency_ms;
                match frame::decode_frame(&delivery.wire, &self.tag_key) {
                    Ok(f) if f.seq == seq => {
                        arrived = Some(f.payload);
                        break;
                    }
                    // A verified frame with an older seq is a stale
                    // duplicate from a previous exchange: discard.
                    Ok(_) => continue,
                    Err(e) => {
                        last = e;
                        continue;
                    }
                }
            }
            if let Some(bytes) = arrived {
                return Ok(bytes);
            }
            if attempt + 1 < self.policy.max_attempts {
                self.clock_ms += self.policy.backoff_ms(attempt, &mut self.jitter);
            }
            let elapsed = self.clock_ms - start;
            if elapsed > self.policy.round_timeout_ms {
                return Err(TransportError::TimeoutExceeded {
                    budget_ms: self.policy.round_timeout_ms,
                    elapsed_ms: elapsed,
                });
            }
        }
        Err(TransportError::RetriesExhausted {
            attempts: self.policy.max_attempts,
            last: last.to_string(),
        })
    }
}

/// A fault-tolerant offload session, generic over scheme `S` and channel
/// `C`. The channel defaults to `Box<dyn Channel>` for heterogeneous links
/// built from a [`LinkConfig`]; hot paths that want full monomorphization
/// name a concrete channel via [`Session::over`].
pub struct Session<S: HeScheme, C: Channel = Box<dyn Channel>> {
    client: Client<S>,
    server: Server<S>,
    link: Link<C>,
    ledger: CommLedger,
    refresh_floor: f64,
}

impl<S: HeScheme, C: Channel> Session<S, C> {
    /// Builds a session over concrete channels: keygen from `seed`, server
    /// provisioned with `rotation_steps`, frames exchanged over the given
    /// channels.
    ///
    /// # Errors
    ///
    /// Propagates HE-layer setup failures.
    pub fn over(
        params: &HeParams,
        seed: &[u8],
        rotation_steps: &[i64],
        uplink: C,
        downlink: C,
        policy: RetryPolicy,
    ) -> Result<Self, TransportError> {
        let mut client = Client::<S>::new(params, seed)?;
        let server = client.provision_server(rotation_steps)?;
        Ok(Session {
            client,
            server,
            link: Link::new(seed, uplink, downlink, policy),
            ledger: CommLedger::new(),
            refresh_floor: S::HEALTH_FLOOR,
        })
    }

    /// Overrides the watchdog's refresh floor (noise-budget bits under
    /// BFV, remaining levels under CKKS).
    pub fn with_refresh_floor(mut self, floor: f64) -> Self {
        self.refresh_floor = floor;
        self
    }

    /// The client role.
    pub fn client_mut(&mut self) -> &mut Client<S> {
        &mut self.client
    }

    /// The server role.
    pub fn server(&self) -> &Server<S> {
        &self.server
    }

    /// The communication ledger.
    pub fn ledger(&self) -> &CommLedger {
        &self.ledger
    }

    /// Mutable ledger access (for marking protocol rounds).
    pub fn ledger_mut(&mut self) -> &mut CommLedger {
        &mut self.ledger
    }

    /// Simulated milliseconds spent on the link so far.
    pub fn clock_ms(&self) -> u64 {
        self.link.clock_ms
    }

    /// Fault counters of the client → server link.
    pub fn uplink_stats(&self) -> FaultStats {
        self.link.uplink.fault_stats()
    }

    /// Fault counters of the server → client link.
    pub fn downlink_stats(&self) -> FaultStats {
        self.link.downlink.fault_stats()
    }

    /// Sends a ciphertext client → server, retrying until it arrives
    /// intact.
    ///
    /// # Errors
    ///
    /// Typed transport errors if the link is worse than the retry budget.
    pub fn upload(&mut self, ct: &S::Ciphertext) -> Result<S::Ciphertext, TransportError> {
        let payload = S::ct_to_wire(ct);
        let billed = S::ct_bytes(ct);
        let bytes = self.link.transfer(
            Direction::Upload,
            ciphertext_kind::<S>(),
            &payload,
            billed,
            &mut self.ledger,
        )?;
        Ok(S::ct_from_wire(&bytes)?)
    }

    /// Sends a ciphertext server → client, retrying until it arrives
    /// intact.
    ///
    /// # Errors
    ///
    /// Typed transport errors if the link is worse than the retry budget.
    pub fn download(&mut self, ct: &S::Ciphertext) -> Result<S::Ciphertext, TransportError> {
        let payload = S::ct_to_wire(ct);
        let billed = S::ct_bytes(ct);
        let bytes = self.link.transfer(
            Direction::Download,
            ciphertext_kind::<S>(),
            &payload,
            billed,
            &mut self.ledger,
        )?;
        Ok(S::ct_from_wire(&bytes)?)
    }

    /// The health watchdog: returns `ct` unchanged while its remaining
    /// headroom ([`HeScheme::health`] — noise-budget bits under BFV,
    /// levels under CKKS) stays at or above `floor`, otherwise runs a
    /// client-aided refresh round and returns the re-encrypted ciphertext.
    ///
    /// The client can evaluate the headroom because it holds the secret
    /// key; in the deployed protocol it tracks the same quantity
    /// analytically from the public operation sequence (§4.4 parameter
    /// model).
    ///
    /// # Errors
    ///
    /// Transport errors from the refresh round trip.
    pub fn ensure_health(
        &mut self,
        ct: &S::Ciphertext,
        floor: f64,
    ) -> Result<S::Ciphertext, TransportError> {
        if self.client.health(ct) >= floor {
            return Ok(ct.clone());
        }
        self.refresh(ct)
    }

    /// [`Self::ensure_health`] with the session's configured floor.
    ///
    /// # Errors
    ///
    /// Transport errors from the refresh round trip.
    pub fn guard(&mut self, ct: &S::Ciphertext) -> Result<S::Ciphertext, TransportError> {
        self.ensure_health(ct, self.refresh_floor)
    }

    /// Client-aided refresh: download → decrypt → re-encrypt → upload.
    /// Costs one extra protocol round, visible in the ledger as
    /// `refresh_rounds += 1` plus the refresh traffic. Under CKKS the
    /// re-encryption lands back at the top of the level chain.
    ///
    /// # Errors
    ///
    /// Transport errors from either leg of the round trip.
    pub fn refresh(&mut self, ct: &S::Ciphertext) -> Result<S::Ciphertext, TransportError> {
        let at_client = self.download(ct)?;
        let values = self.client.decrypt(&at_client)?;
        let fresh = self.client.encrypt(&values)?;
        let back = self.upload(&fresh)?;
        self.ledger.record_refresh();
        self.ledger.end_round();
        Ok(back)
    }

    /// Consumes the session, returning the roles and the final ledger.
    pub fn into_parts(self) -> (Client<S>, Server<S>, CommLedger) {
        (self.client, self.server, self.ledger)
    }
}

impl<S: HeScheme> Session<S, Box<dyn Channel>> {
    /// Builds a session over boxed channels (the pre-generic constructor
    /// signature).
    ///
    /// # Errors
    ///
    /// Propagates HE-layer setup failures.
    pub fn new(
        params: &HeParams,
        seed: &[u8],
        rotation_steps: &[i64],
        uplink: Box<dyn Channel>,
        downlink: Box<dyn Channel>,
        policy: RetryPolicy,
    ) -> Result<Self, TransportError> {
        Self::over(params, seed, rotation_steps, uplink, downlink, policy)
    }

    /// Convenience constructor over perfect in-memory channels — the
    /// zero-fault instance that replaces the old "direct" code path.
    pub fn direct(
        params: &HeParams,
        seed: &[u8],
        rotation_steps: &[i64],
    ) -> Result<Self, TransportError> {
        Self::with_link(params, seed, rotation_steps, LinkConfig::direct())
    }

    /// Builds a session from a bundled [`LinkConfig`].
    ///
    /// # Errors
    ///
    /// Propagates HE-layer setup failures.
    pub fn with_link(
        params: &HeParams,
        seed: &[u8],
        rotation_steps: &[i64],
        link: LinkConfig,
    ) -> Result<Self, TransportError> {
        Self::over(
            params,
            seed,
            rotation_steps,
            link.uplink,
            link.downlink,
            link.policy,
        )
    }
}

impl<C: Channel> Session<Bfv, C> {
    /// BFV-named convenience for [`Session::ensure_health`]: refresh when
    /// fewer than `min_bits` of invariant noise budget remain.
    ///
    /// # Errors
    ///
    /// Transport errors from the refresh round trip.
    pub fn ensure_budget(
        &mut self,
        ct: &choco_he::bfv::Ciphertext,
        min_bits: f64,
    ) -> Result<choco_he::bfv::Ciphertext, TransportError> {
        self.ensure_health(ct, min_bits)
    }
}

impl<C: Channel> Session<Ckks, C> {
    /// CKKS-named convenience for [`Session::ensure_health`]: refresh when
    /// fewer than `min_levels` rescale levels remain.
    ///
    /// # Errors
    ///
    /// Transport errors from the refresh round trip.
    pub fn ensure_level(
        &mut self,
        ct: &choco_he::ckks::CkksCiphertext,
        min_levels: usize,
    ) -> Result<choco_he::ckks::CkksCiphertext, TransportError> {
        self.ensure_health(ct, min_levels as f64)
    }
}

/// A fault-tolerant BFV offload session.
#[deprecated(since = "0.4.0", note = "use the scheme-generic `Session<Bfv>`")]
pub type ResilientSession = Session<Bfv>;

/// A fault-tolerant CKKS offload session.
#[deprecated(since = "0.4.0", note = "use the scheme-generic `Session<Ckks>`")]
pub type CkksResilientSession = Session<Ckks>;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transport::channel::DirectChannel;
    use crate::transport::fault::{FaultPlan, FaultyChannel};

    fn params() -> HeParams {
        HeParams::bfv_insecure(256, &[40, 40, 41], 14).unwrap()
    }

    fn faulty(seed: &[u8], plan: FaultPlan) -> Box<dyn Channel> {
        Box::new(FaultyChannel::new(seed, plan))
    }

    #[test]
    fn direct_session_matches_plain_protocol_billing() {
        let mut s = Session::<Bfv>::direct(&params(), b"session direct", &[]).unwrap();
        let values: Vec<u64> = (0..256).collect();
        let ct = s.client_mut().encrypt_slots(&values).unwrap();
        let at_server = s.upload(&ct).unwrap();
        let back = s.download(&at_server).unwrap();
        let out = s.client_mut().decrypt_slots(&back).unwrap();
        assert_eq!(out, values);
        // Billing matches the fault-free protocol: payload bytes only.
        assert_eq!(s.ledger().upload_bytes, ct.byte_size() as u64);
        assert_eq!(s.ledger().download_bytes, ct.byte_size() as u64);
        assert_eq!(s.ledger().retransmit_bytes, 0);
        assert_eq!(s.ledger().refresh_rounds, 0);
    }

    #[test]
    fn monomorphic_session_over_concrete_channels() {
        // `Session::over` with a concrete channel type: no boxing, no dyn
        // dispatch anywhere on the exchange path.
        let mut s = Session::<Bfv, DirectChannel>::over(
            &params(),
            b"session mono",
            &[],
            DirectChannel::new(),
            DirectChannel::new(),
            RetryPolicy::default(),
        )
        .unwrap();
        let values: Vec<u64> = (0..256).map(|i| i * 3 % 97).collect();
        let ct = s.client_mut().encrypt_slots(&values).unwrap();
        let at_server = s.upload(&ct).unwrap();
        let back = s.download(&at_server).unwrap();
        assert_eq!(s.client_mut().decrypt_slots(&back).unwrap(), values);
        assert_eq!(s.ledger().retransmit_bytes, 0);
    }

    #[test]
    fn flaky_link_recovers_and_bills_retransmits() {
        let plan = FaultPlan::flaky();
        let mut s = Session::<Bfv>::new(
            &params(),
            b"session flaky",
            &[],
            faulty(b"up", plan),
            faulty(b"down", plan),
            RetryPolicy {
                max_attempts: 16,
                ..RetryPolicy::default()
            },
        )
        .unwrap();
        let values: Vec<u64> = (0..256).map(|i| i * 7 % 101).collect();
        for round in 0..10 {
            let ct = s.client_mut().encrypt_slots(&values).unwrap();
            let at_server = s.upload(&ct).unwrap();
            let back = s.download(&at_server).unwrap();
            let out = s.client_mut().decrypt_slots(&back).unwrap();
            assert_eq!(out, values, "round {round} corrupted data");
        }
        let faults = s.uplink_stats().total_faults() + s.downlink_stats().total_faults();
        assert!(faults > 0, "flaky plan injected no faults");
        assert!(s.ledger().retransmit_bytes > 0);
        // Primary counters unaffected by retries: 10 uploads + 10 downloads.
        assert_eq!(s.ledger().uploads, 10);
        assert_eq!(s.ledger().downloads, 10);
    }

    #[test]
    fn blackhole_link_yields_typed_error() {
        let mut s = Session::<Bfv>::new(
            &params(),
            b"session dead",
            &[],
            faulty(b"up", FaultPlan::blackhole()),
            faulty(b"down", FaultPlan::blackhole()),
            RetryPolicy::default(),
        )
        .unwrap();
        let ct = s.client_mut().encrypt_slots(&[1; 256]).unwrap();
        match s.upload(&ct) {
            Err(TransportError::RetriesExhausted { attempts, .. }) => {
                assert_eq!(attempts, RetryPolicy::default().max_attempts);
            }
            other => panic!("expected RetriesExhausted, got {other:?}"),
        }
    }

    #[test]
    fn timeout_budget_is_enforced() {
        let mut s = Session::<Bfv>::new(
            &params(),
            b"session slow",
            &[],
            faulty(b"up", FaultPlan::blackhole()),
            faulty(b"down", FaultPlan::blackhole()),
            RetryPolicy {
                max_attempts: 50,
                base_backoff_ms: 100,
                max_backoff_ms: 1000,
                round_timeout_ms: 300,
            },
        )
        .unwrap();
        let ct = s.client_mut().encrypt_slots(&[2; 256]).unwrap();
        match s.upload(&ct) {
            Err(TransportError::TimeoutExceeded {
                budget_ms,
                elapsed_ms,
            }) => {
                assert_eq!(budget_ms, 300);
                assert!(elapsed_ms > 300);
            }
            other => panic!("expected TimeoutExceeded, got {other:?}"),
        }
    }

    #[test]
    fn watchdog_refreshes_exhausted_ciphertext() {
        let mut s = Session::<Bfv>::direct(&params(), b"session watchdog", &[]).unwrap();
        let values: Vec<u64> = (0..256).map(|i| i % 13).collect();
        let ct = s.client_mut().encrypt_slots(&values).unwrap();
        let mut at_server = s.upload(&ct).unwrap();
        // Burn noise budget with repeated plain multiplications until the
        // watchdog would trip.
        let weights = vec![3u64; 256];
        let mut refreshed = 0;
        for _ in 0..64 {
            let guarded = s.ensure_budget(&at_server, 15.0).unwrap();
            if s.ledger().refresh_rounds > refreshed {
                refreshed = s.ledger().refresh_rounds;
            }
            at_server = s.server().mul_plain(&guarded, &weights).unwrap();
        }
        assert!(refreshed > 0, "watchdog never refreshed");
        // The final ciphertext still decrypts to *something* well-formed —
        // the chain would have died without refreshes.
        let back = s.download(&at_server).unwrap();
        let out = s.client_mut().decrypt_slots(&back).unwrap();
        assert_eq!(out.len(), 256);
    }

    #[test]
    fn refresh_resets_noise_budget() {
        let mut s = Session::<Bfv>::direct(&params(), b"session refresh", &[]).unwrap();
        let ct = s.client_mut().encrypt_slots(&[5; 256]).unwrap();
        let at_server = s.upload(&ct).unwrap();
        let worn = s.server().mul_plain(&at_server, &vec![7u64; 256]).unwrap();
        let before = {
            let c = s.client_mut();
            c.noise_budget(&worn)
        };
        let fresh = s.refresh(&worn).unwrap();
        let after = s.client_mut().noise_budget(&fresh);
        assert!(
            after > before,
            "refresh did not recover budget ({before} -> {after})"
        );
        assert_eq!(s.ledger().refresh_rounds, 1);
    }

    #[test]
    fn ckks_session_roundtrips_under_faults() {
        let params = HeParams::ckks_insecure(256, &[45, 45, 46], 38).unwrap();
        let plan = FaultPlan::lossless()
            .with_drop_rate(0.3)
            .with_corrupt_rate(0.2);
        let mut s = Session::<Ckks>::new(
            &params,
            b"ckks session",
            &[],
            faulty(b"cu", plan),
            faulty(b"cd", plan),
            RetryPolicy {
                max_attempts: 16,
                ..RetryPolicy::default()
            },
        )
        .unwrap();
        let values: Vec<f64> = (0..128).map(|i| i as f64 / 16.0).collect();
        let ct = s.client_mut().encrypt_values(&values).unwrap();
        let at_server = s.upload(&ct).unwrap();
        let back = s.download(&at_server).unwrap();
        let out = s.client_mut().decrypt_values(&back).unwrap();
        for i in 0..values.len() {
            assert!((out[i] - values[i]).abs() < 1e-2);
        }
    }

    #[test]
    fn ckks_level_watchdog_refreshes() {
        let params = HeParams::ckks_insecure(256, &[45, 45, 45, 46], 38).unwrap();
        let mut s = Session::<Ckks>::direct(&params, b"ckks levels", &[]).unwrap();
        let values: Vec<f64> = (0..128).map(|i| (i % 7) as f64 / 8.0).collect();
        let ct = s.client_mut().encrypt_values(&values).unwrap();
        let mut at_server = s.upload(&ct).unwrap();
        let top = at_server.level();
        // Rescale down until only one level remains, guarding each step.
        let ctx_levels = top;
        let mut refreshes_seen = 0;
        for _ in 0..(2 * ctx_levels) {
            at_server = s.ensure_level(&at_server, 2).unwrap();
            refreshes_seen = s.ledger().refresh_rounds;
            let pt = s
                .server()
                .encode_at(&vec![0.5; 128], at_server.level(), at_server.scale())
                .unwrap();
            let prod = s
                .server()
                .context()
                .multiply_plain(&at_server, &pt)
                .unwrap();
            at_server = s.server().context().rescale(&prod).unwrap();
        }
        assert!(refreshes_seen > 0, "level watchdog never refreshed");
    }
}
