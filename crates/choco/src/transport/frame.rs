//! Length-delimited wire frames with keyed BLAKE3 integrity tags.
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! | len: u32 | kind: u8 | seq: u64 | payload … | tag: 32 B |
//! ```
//!
//! `len` counts every byte after the length field itself. The tag is a
//! keyed BLAKE3 hash over `kind ‖ seq ‖ payload`; the key is derived from
//! the session seed under a dedicated domain-separation label, so frames
//! from different sessions (or different labels) never verify against each
//! other. The tag is not part of the HE threat model — ciphertexts are
//! already semantically secure — it exists so that *accidental or
//! adversarial in-flight modification* is detected before a garbage
//! ciphertext reaches the decryptor.

use super::TransportError;
use choco_prng::blake3::Hasher;
use choco_prng::Blake3Rng;

/// Size of the keyed BLAKE3 tag trailing each frame.
pub const TAG_BYTES: usize = 32;

/// Bytes of framing overhead: length field, kind, sequence number, tag.
pub const FRAME_OVERHEAD: usize = 4 + 1 + 8 + TAG_BYTES;

/// What a frame carries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameKind {
    /// A serialized BFV ciphertext (`CHO1` payload).
    BfvCiphertext,
    /// A serialized CKKS ciphertext (`CHO2` payload).
    CkksCiphertext,
    /// Plaintext slot data (e.g. decrypted intermediates in tests).
    Plaintext,
    /// Key material digests exchanged at session setup.
    KeyMaterial,
    /// Protocol control messages.
    Control,
    /// A remote-evaluation request (session setup, program upload, or an
    /// evaluate call — `choco::remote` payload magics discriminate). The
    /// server answers these with [`FrameKind::EvalResponse`] frames
    /// instead of echoing.
    EvalRequest,
    /// A remote-evaluation response (server → client).
    EvalResponse,
}

impl FrameKind {
    fn as_u8(self) -> u8 {
        match self {
            FrameKind::BfvCiphertext => 1,
            FrameKind::CkksCiphertext => 2,
            FrameKind::Plaintext => 3,
            FrameKind::KeyMaterial => 4,
            FrameKind::Control => 5,
            FrameKind::EvalRequest => 6,
            FrameKind::EvalResponse => 7,
        }
    }

    fn from_u8(b: u8) -> Option<Self> {
        match b {
            1 => Some(FrameKind::BfvCiphertext),
            2 => Some(FrameKind::CkksCiphertext),
            3 => Some(FrameKind::Plaintext),
            4 => Some(FrameKind::KeyMaterial),
            5 => Some(FrameKind::Control),
            6 => Some(FrameKind::EvalRequest),
            7 => Some(FrameKind::EvalResponse),
            _ => None,
        }
    }
}

/// A decoded frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    /// Payload discriminator.
    pub kind: FrameKind,
    /// Monotonic per-session sequence number; lets the receiver discard
    /// stale duplicates from earlier exchanges.
    pub seq: u64,
    /// The carried bytes.
    pub payload: Vec<u8>,
}

/// The session's frame-tagging key, derived from the session seed under the
/// `"transport-tag"` domain-separation label.
#[derive(Clone)]
pub struct TagKey([u8; 32]);

impl TagKey {
    /// Derives the tag key from a session seed.
    pub fn from_session_seed(seed: &[u8]) -> Self {
        let mut rng = Blake3Rng::from_seed_labeled(seed, "transport-tag");
        let mut key = [0u8; 32];
        rng.fill_bytes(&mut key);
        TagKey(key)
    }

    /// Keyed tag over arbitrary bytes under a caller-chosen domain label.
    /// Used outside the frame format proper — e.g. the TCP hello handshake
    /// proves possession of the session key with a labeled tag, so a client
    /// that knows only a tenant id (but not its seed) is rejected before
    /// any frame is exchanged.
    pub fn labeled_tag(&self, label: &str, data: &[u8]) -> [u8; 32] {
        let mut h = Hasher::new_keyed(&self.0);
        h.update(&(label.len() as u64).to_le_bytes());
        h.update(label.as_bytes());
        h.update(data);
        h.finalize()
    }

    fn tag(&self, kind: FrameKind, seq: u64, payload: &[u8]) -> [u8; 32] {
        let mut h = Hasher::new_keyed(&self.0);
        h.update(&[kind.as_u8()]);
        h.update(&seq.to_le_bytes());
        h.update(payload);
        h.finalize()
    }
}

/// Encodes a frame onto the wire.
pub fn encode_frame(kind: FrameKind, seq: u64, payload: &[u8], key: &TagKey) -> Vec<u8> {
    let body_len = 1 + 8 + payload.len() + TAG_BYTES;
    let mut out = Vec::with_capacity(4 + body_len);
    out.extend_from_slice(&(body_len as u32).to_le_bytes());
    out.push(kind.as_u8());
    out.extend_from_slice(&seq.to_le_bytes());
    out.extend_from_slice(payload);
    out.extend_from_slice(&key.tag(kind, seq, payload));
    out
}

/// Decodes and verifies a wire frame.
///
/// # Errors
///
/// [`TransportError::Truncated`] if bytes are missing,
/// [`TransportError::Malformed`] on an inconsistent length field or unknown
/// kind byte, [`TransportError::TagMismatch`] if the keyed tag does not
/// verify. Never panics, whatever the input.
pub fn decode_frame(wire: &[u8], key: &TagKey) -> Result<Frame, TransportError> {
    if wire.len() < FRAME_OVERHEAD {
        return Err(TransportError::Truncated {
            need: FRAME_OVERHEAD,
            have: wire.len(),
        });
    }
    let mut len_buf = [0u8; 4];
    len_buf.copy_from_slice(&wire[..4]);
    let declared = u32::from_le_bytes(len_buf) as usize;
    let actual = wire.len() - 4;
    if declared > actual {
        return Err(TransportError::Truncated {
            need: declared + 4,
            have: wire.len(),
        });
    }
    if declared < actual {
        return Err(TransportError::Malformed(format!(
            "length field {declared} < body {actual}"
        )));
    }
    let kind = FrameKind::from_u8(wire[4])
        .ok_or_else(|| TransportError::Malformed(format!("unknown frame kind {}", wire[4])))?;
    let mut seq_buf = [0u8; 8];
    seq_buf.copy_from_slice(&wire[5..13]);
    let seq = u64::from_le_bytes(seq_buf);
    let payload = &wire[13..wire.len() - TAG_BYTES];
    let tag = &wire[wire.len() - TAG_BYTES..];
    if key.tag(kind, seq, payload) != *tag {
        return Err(TransportError::TagMismatch { seq });
    }
    Ok(Frame {
        kind,
        seq,
        payload: payload.to_vec(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key() -> TagKey {
        TagKey::from_session_seed(b"frame tests")
    }

    #[test]
    fn roundtrip() {
        let k = key();
        let wire = encode_frame(FrameKind::BfvCiphertext, 7, b"hello ciphertext", &k);
        let frame = decode_frame(&wire, &k).unwrap();
        assert_eq!(frame.kind, FrameKind::BfvCiphertext);
        assert_eq!(frame.seq, 7);
        assert_eq!(frame.payload, b"hello ciphertext");
    }

    #[test]
    fn empty_payload_roundtrips() {
        let k = key();
        let wire = encode_frame(FrameKind::Control, 0, b"", &k);
        assert_eq!(wire.len(), FRAME_OVERHEAD);
        let frame = decode_frame(&wire, &k).unwrap();
        assert!(frame.payload.is_empty());
    }

    #[test]
    fn every_payload_bit_flip_is_caught() {
        let k = key();
        let wire = encode_frame(FrameKind::Plaintext, 3, &[0xAA; 24], &k);
        for byte in 0..wire.len() {
            for bit in 0..8 {
                let mut mutated = wire.clone();
                mutated[byte] ^= 1 << bit;
                assert!(
                    decode_frame(&mutated, &k).is_err(),
                    "flip at byte {byte} bit {bit} went undetected"
                );
            }
        }
    }

    #[test]
    fn truncation_is_typed() {
        let k = key();
        let wire = encode_frame(FrameKind::KeyMaterial, 1, &[1, 2, 3, 4], &k);
        for cut in 0..wire.len() {
            let err = decode_frame(&wire[..cut], &k).unwrap_err();
            assert!(matches!(
                err,
                TransportError::Truncated { .. } | TransportError::Malformed(_)
            ));
        }
    }

    #[test]
    fn wrong_session_key_rejects() {
        let wire = encode_frame(FrameKind::BfvCiphertext, 9, b"payload", &key());
        let other = TagKey::from_session_seed(b"another session");
        assert!(matches!(
            decode_frame(&wire, &other),
            Err(TransportError::TagMismatch { seq: 9 })
        ));
    }

    #[test]
    fn tag_covers_kind_and_seq() {
        let k = key();
        let mut wire = encode_frame(FrameKind::Plaintext, 5, b"data", &k);
        // Re-labelling the kind byte without re-tagging must fail.
        wire[4] = FrameKind::Control.as_u8();
        assert!(decode_frame(&wire, &k).is_err());
        let mut wire = encode_frame(FrameKind::Plaintext, 5, b"data", &k);
        wire[5] = 6; // seq 5 -> 6
        assert!(decode_frame(&wire, &k).is_err());
    }
}
