//! The byte-pipe abstraction frames travel over.

use super::fault::FaultStats;
use std::collections::VecDeque;

/// One delivered wire blob plus the simulated link latency it accrued.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Delivery {
    /// The bytes as they arrived (possibly altered by a faulty link).
    pub wire: Vec<u8>,
    /// Simulated one-way latency in milliseconds.
    pub latency_ms: u64,
}

/// A unidirectional, in-order channel carrying opaque wire frames.
///
/// Implementations may lose, alter, duplicate or delay what they carry —
/// the session layer above assumes nothing about a received blob until the
/// frame tag verifies.
pub trait Channel {
    /// Enqueues one wire frame for delivery.
    fn send(&mut self, wire: Vec<u8>);

    /// Dequeues the next delivery, or `None` if nothing is in flight.
    fn recv(&mut self) -> Option<Delivery>;

    /// Number of deliveries currently in flight.
    fn pending(&self) -> usize;

    /// Fault counters, if the channel injects faults (lossless channels
    /// report all-zero stats).
    fn fault_stats(&self) -> FaultStats {
        FaultStats::default()
    }
}

/// Boxed channels delegate, so heterogeneous links (`Box<dyn Channel>`) fit
/// anywhere a concrete channel type does — the erased default of
/// [`Session`](super::Session).
impl Channel for Box<dyn Channel> {
    fn send(&mut self, wire: Vec<u8>) {
        (**self).send(wire);
    }

    fn recv(&mut self) -> Option<Delivery> {
        (**self).recv()
    }

    fn pending(&self) -> usize {
        (**self).pending()
    }

    fn fault_stats(&self) -> FaultStats {
        (**self).fault_stats()
    }
}

/// A perfect in-memory channel: every frame arrives intact, in order, with
/// zero latency.
#[derive(Debug, Default)]
pub struct DirectChannel {
    queue: VecDeque<Vec<u8>>,
}

impl DirectChannel {
    /// Creates an empty channel.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Channel for DirectChannel {
    fn send(&mut self, wire: Vec<u8>) {
        self.queue.push_back(wire);
    }

    fn recv(&mut self) -> Option<Delivery> {
        self.queue.pop_front().map(|wire| Delivery {
            wire,
            latency_ms: 0,
        })
    }

    fn pending(&self) -> usize {
        self.queue.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn direct_channel_is_fifo_and_lossless() {
        let mut ch = DirectChannel::new();
        ch.send(vec![1]);
        ch.send(vec![2, 2]);
        assert_eq!(ch.pending(), 2);
        assert_eq!(ch.recv().unwrap().wire, vec![1]);
        let d = ch.recv().unwrap();
        assert_eq!(d.wire, vec![2, 2]);
        assert_eq!(d.latency_ms, 0);
        assert!(ch.recv().is_none());
        assert_eq!(ch.fault_stats(), FaultStats::default());
    }
}
