//! The byte-pipe abstraction frames travel over.

use super::fault::FaultStats;
use super::TransportError;
use std::collections::VecDeque;

/// One delivered wire blob plus the simulated link latency it accrued.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Delivery {
    /// The bytes as they arrived (possibly altered by a faulty link).
    pub wire: Vec<u8>,
    /// Simulated one-way latency in milliseconds.
    pub latency_ms: u64,
}

/// A unidirectional, in-order channel carrying opaque wire frames.
///
/// Implementations may lose, alter, duplicate or delay what they carry —
/// the session layer above assumes nothing about a received blob until the
/// frame tag verifies.
pub trait Channel {
    /// Enqueues one wire frame for delivery.
    fn send(&mut self, wire: Vec<u8>);

    /// Dequeues the next delivery, or `None` if nothing is in flight.
    fn recv(&mut self) -> Option<Delivery>;

    /// Number of deliveries currently in flight.
    fn pending(&self) -> usize;

    /// Fault counters, if the channel injects faults (lossless channels
    /// report all-zero stats).
    fn fault_stats(&self) -> FaultStats {
        FaultStats::default()
    }

    /// Serializes the channel's internal state (in-flight queue, RNG
    /// position, counters) for a durable session checkpoint. Stateless
    /// channels return an empty blob.
    fn export_state(&self) -> Vec<u8> {
        Vec::new()
    }

    /// Restores state captured by [`Channel::export_state`] into a freshly
    /// constructed channel of the same kind and configuration.
    ///
    /// # Errors
    ///
    /// Returns [`TransportError::BadCheckpoint`] if the blob does not match
    /// this channel kind. The default (stateless) impl accepts only an
    /// empty blob.
    fn import_state(&mut self, bytes: &[u8]) -> Result<(), TransportError> {
        if bytes.is_empty() {
            Ok(())
        } else {
            Err(TransportError::BadCheckpoint(
                "stateless channel given non-empty state".into(),
            ))
        }
    }
}

/// Boxed channels delegate, so heterogeneous links (`Box<dyn Channel>`) fit
/// anywhere a concrete channel type does — the erased default of
/// [`Session`](super::Session).
impl Channel for Box<dyn Channel> {
    fn send(&mut self, wire: Vec<u8>) {
        (**self).send(wire);
    }

    fn recv(&mut self) -> Option<Delivery> {
        (**self).recv()
    }

    fn pending(&self) -> usize {
        (**self).pending()
    }

    fn fault_stats(&self) -> FaultStats {
        (**self).fault_stats()
    }

    fn export_state(&self) -> Vec<u8> {
        (**self).export_state()
    }

    fn import_state(&mut self, bytes: &[u8]) -> Result<(), TransportError> {
        (**self).import_state(bytes)
    }
}

/// A perfect in-memory channel: every frame arrives intact, in order, with
/// zero latency.
#[derive(Debug, Default)]
pub struct DirectChannel {
    queue: VecDeque<Vec<u8>>,
}

impl DirectChannel {
    /// Creates an empty channel.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Channel for DirectChannel {
    fn send(&mut self, wire: Vec<u8>) {
        self.queue.push_back(wire);
    }

    fn recv(&mut self) -> Option<Delivery> {
        self.queue.pop_front().map(|wire| Delivery {
            wire,
            latency_ms: 0,
        })
    }

    fn pending(&self) -> usize {
        self.queue.len()
    }

    fn export_state(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(&(self.queue.len() as u32).to_le_bytes());
        for wire in &self.queue {
            out.extend_from_slice(&(wire.len() as u32).to_le_bytes());
            out.extend_from_slice(wire);
        }
        out
    }

    fn import_state(&mut self, bytes: &[u8]) -> Result<(), TransportError> {
        let mut rest = bytes;
        let count = state_u32(&mut rest, "direct channel")? as usize;
        let mut queue = VecDeque::with_capacity(count.min(1024));
        for _ in 0..count {
            let len = state_u32(&mut rest, "direct channel")? as usize;
            queue.push_back(state_take(&mut rest, len, "direct channel")?.to_vec());
        }
        if !rest.is_empty() {
            return Err(TransportError::BadCheckpoint(
                "direct channel: trailing bytes in state".into(),
            ));
        }
        self.queue = queue;
        Ok(())
    }
}

/// Consumes `n` bytes from the front of a channel-state blob.
pub(crate) fn state_take<'a>(
    rest: &mut &'a [u8],
    n: usize,
    who: &str,
) -> Result<&'a [u8], TransportError> {
    if rest.len() < n {
        return Err(TransportError::BadCheckpoint(format!(
            "{who}: truncated state"
        )));
    }
    let (head, tail) = rest.split_at(n);
    *rest = tail;
    Ok(head)
}

/// Reads a little-endian `u32` from the front of a channel-state blob.
pub(crate) fn state_u32(rest: &mut &[u8], who: &str) -> Result<u32, TransportError> {
    let b = state_take(rest, 4, who)?;
    let mut buf = [0u8; 4];
    buf.copy_from_slice(b);
    Ok(u32::from_le_bytes(buf))
}

/// Reads a little-endian `u64` from the front of a channel-state blob.
pub(crate) fn state_u64(rest: &mut &[u8], who: &str) -> Result<u64, TransportError> {
    let b = state_take(rest, 8, who)?;
    let mut buf = [0u8; 8];
    buf.copy_from_slice(b);
    Ok(u64::from_le_bytes(buf))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn direct_channel_is_fifo_and_lossless() {
        let mut ch = DirectChannel::new();
        ch.send(vec![1]);
        ch.send(vec![2, 2]);
        assert_eq!(ch.pending(), 2);
        assert_eq!(ch.recv().unwrap().wire, vec![1]);
        let d = ch.recv().unwrap();
        assert_eq!(d.wire, vec![2, 2]);
        assert_eq!(d.latency_ms, 0);
        assert!(ch.recv().is_none());
        assert_eq!(ch.fault_stats(), FaultStats::default());
    }
}
