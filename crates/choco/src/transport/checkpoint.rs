//! Durable session checkpoints: a versioned, hash-sealed wire format.
//!
//! A [`SessionCheckpoint`] captures everything a
//! [`Session`](super::session::Session) needs to resume after a crash with
//! bit-identical results:
//!
//! * the parameter **recipe** (scheme, degree, prime bit-lengths, plain
//!   modulus / scale bits, security flag) — parameters are rebuilt
//!   deterministically on resume and cross-checked against the recorded
//!   values;
//! * the client's key bundle and the server's evaluation keys, via the
//!   [`HeScheme`](choco_he::HeScheme) key wire hooks;
//! * every RNG position (client encryption randomness, retry jitter) as a
//!   byte offset into its deterministic stream — the streams are pure
//!   functions of `(seed, offset)`, so a fast-forward replays them exactly;
//! * the frame sequence cursor, simulated clock, retry policy, refresh
//!   floor and the full [`CommLedger`];
//! * opaque channel state (in-flight queue + fault-RNG offset) from
//!   [`Channel::export_state`](super::channel::Channel::export_state); and
//! * an opaque per-workload progress blob owned by the resumable driver.
//!
//! The body is sealed by a trailing unkeyed BLAKE3 hash (a *keyed* tag is
//! impossible — the session seed itself travels inside the blob), so any
//! truncation or bit-flip is rejected with a typed
//! [`TransportError::BadCheckpoint`] before any field is trusted. The blob
//! holds the **secret key**: it is client-side state, never sent to the
//! server.

use super::session::RetryPolicy;
use super::TransportError;
use crate::protocol::CommLedger;
use choco_he::params::{HeParams, SchemeType};
use choco_prng::blake3;

/// Wire magic for checkpoint blobs.
const MAGIC: [u8; 4] = *b"CKP1";
/// Current checkpoint format version.
const VERSION: u16 = 1;
/// BLAKE3 seal length.
const HASH_BYTES: usize = 32;
/// Upper bound on any embedded variable-length field, to reject absurd
/// length prefixes before allocating.
const MAX_FIELD_BYTES: usize = 1 << 28;

/// Everything a [`Session`](super::session::Session) needs to resume,
/// in plain decoded form. Produced by [`SessionCheckpoint::from_bytes`] and
/// consumed by `Session::resume`; built by `Session::checkpoint`.
#[derive(Debug, Clone, PartialEq)]
pub struct SessionCheckpoint {
    /// Scheme the session runs (must match the resuming `Session<S>`).
    pub(crate) scheme: SchemeType,
    /// Ring degree of the parameter set.
    pub(crate) degree: u32,
    /// Whether the parameter set passed the 128-bit security check.
    pub(crate) security_checked: bool,
    /// BFV plain modulus (0 under CKKS).
    pub(crate) plain_modulus: u64,
    /// CKKS scale exponent (0 under BFV).
    pub(crate) scale_bits: u32,
    /// Bit length of each RNS prime, in order.
    pub(crate) prime_bits: Vec<u32>,
    /// The session seed (drives keygen, tags, jitter and fault schedules).
    pub(crate) seed: Vec<u8>,
    /// Client RNG position in bytes.
    pub(crate) client_rng_drawn: u64,
    /// Encryptions performed so far.
    pub(crate) enc_ops: u64,
    /// Decryptions performed so far.
    pub(crate) dec_ops: u64,
    /// Retry/backoff/timeout policy.
    pub(crate) policy: RetryPolicy,
    /// Simulated link clock in milliseconds.
    pub(crate) clock_ms: u64,
    /// Next frame sequence number.
    pub(crate) next_seq: u64,
    /// Retry-jitter RNG position in bytes.
    pub(crate) jitter_drawn: u64,
    /// Watchdog refresh floor.
    pub(crate) refresh_floor: f64,
    /// Full communication ledger.
    pub(crate) ledger: CommLedger,
    /// Serialized client key bundle (contains the secret key).
    pub(crate) keys_wire: Vec<u8>,
    /// Serialized relinearization key.
    pub(crate) relin_wire: Vec<u8>,
    /// Serialized Galois key set.
    pub(crate) galois_wire: Vec<u8>,
    /// Opaque uplink channel state.
    pub(crate) uplink_state: Vec<u8>,
    /// Opaque downlink channel state.
    pub(crate) downlink_state: Vec<u8>,
    /// Opaque workload progress blob.
    pub(crate) progress: Vec<u8>,
}

fn bad(msg: impl Into<String>) -> TransportError {
    TransportError::BadCheckpoint(msg.into())
}

fn push_bytes(out: &mut Vec<u8>, bytes: &[u8]) {
    out.extend_from_slice(&(bytes.len() as u32).to_le_bytes());
    out.extend_from_slice(bytes);
}

/// A bounds-checked reader over the checkpoint body.
struct Reader<'a> {
    bytes: &'a [u8],
    off: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], TransportError> {
        let end = self
            .off
            .checked_add(n)
            .filter(|&e| e <= self.bytes.len())
            .ok_or_else(|| bad("truncated body"))?;
        let out = &self.bytes[self.off..end];
        self.off = end;
        Ok(out)
    }

    fn u8(&mut self) -> Result<u8, TransportError> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, TransportError> {
        let b = self.take(2)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    fn u32(&mut self) -> Result<u32, TransportError> {
        let b = self.take(4)?;
        let mut buf = [0u8; 4];
        buf.copy_from_slice(b);
        Ok(u32::from_le_bytes(buf))
    }

    fn u64(&mut self) -> Result<u64, TransportError> {
        let b = self.take(8)?;
        let mut buf = [0u8; 8];
        buf.copy_from_slice(b);
        Ok(u64::from_le_bytes(buf))
    }

    fn f64(&mut self) -> Result<f64, TransportError> {
        Ok(f64::from_bits(self.u64()?))
    }

    fn bytes_field(&mut self) -> Result<Vec<u8>, TransportError> {
        let len = self.u32()? as usize;
        if len > MAX_FIELD_BYTES {
            return Err(bad("implausible field length"));
        }
        Ok(self.take(len)?.to_vec())
    }
}

impl SessionCheckpoint {
    /// Serializes the checkpoint: `CKP1` header, body, 32-byte BLAKE3 seal.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(&MAGIC);
        out.extend_from_slice(&VERSION.to_le_bytes());
        out.push(match self.scheme {
            SchemeType::Bfv => 1,
            SchemeType::Ckks => 2,
        });
        out.extend_from_slice(&self.degree.to_le_bytes());
        out.push(u8::from(self.security_checked));
        out.extend_from_slice(&self.plain_modulus.to_le_bytes());
        out.extend_from_slice(&self.scale_bits.to_le_bytes());
        out.extend_from_slice(&(self.prime_bits.len() as u32).to_le_bytes());
        for &b in &self.prime_bits {
            out.extend_from_slice(&b.to_le_bytes());
        }
        push_bytes(&mut out, &self.seed);
        out.extend_from_slice(&self.client_rng_drawn.to_le_bytes());
        out.extend_from_slice(&self.enc_ops.to_le_bytes());
        out.extend_from_slice(&self.dec_ops.to_le_bytes());
        out.extend_from_slice(&self.policy.max_attempts.to_le_bytes());
        out.extend_from_slice(&self.policy.base_backoff_ms.to_le_bytes());
        out.extend_from_slice(&self.policy.max_backoff_ms.to_le_bytes());
        out.extend_from_slice(&self.policy.round_timeout_ms.to_le_bytes());
        out.extend_from_slice(&self.clock_ms.to_le_bytes());
        out.extend_from_slice(&self.next_seq.to_le_bytes());
        out.extend_from_slice(&self.jitter_drawn.to_le_bytes());
        out.extend_from_slice(&self.refresh_floor.to_bits().to_le_bytes());
        out.extend_from_slice(&self.ledger.upload_bytes.to_le_bytes());
        out.extend_from_slice(&self.ledger.download_bytes.to_le_bytes());
        out.extend_from_slice(&self.ledger.uploads.to_le_bytes());
        out.extend_from_slice(&self.ledger.downloads.to_le_bytes());
        out.extend_from_slice(&self.ledger.rounds.to_le_bytes());
        out.extend_from_slice(&self.ledger.retransmit_bytes.to_le_bytes());
        out.extend_from_slice(&self.ledger.refresh_rounds.to_le_bytes());
        out.extend_from_slice(&self.ledger.recovery_bytes.to_le_bytes());
        push_bytes(&mut out, &self.keys_wire);
        push_bytes(&mut out, &self.relin_wire);
        push_bytes(&mut out, &self.galois_wire);
        push_bytes(&mut out, &self.uplink_state);
        push_bytes(&mut out, &self.downlink_state);
        push_bytes(&mut out, &self.progress);
        let seal = blake3::hash(&out);
        out.extend_from_slice(&seal);
        out
    }

    /// Parses and validates a checkpoint blob.
    ///
    /// # Errors
    ///
    /// Returns [`TransportError::BadCheckpoint`] on a bad magic, unknown
    /// version, broken BLAKE3 seal (any truncation or bit-flip), or a
    /// structurally implausible body. Never panics.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, TransportError> {
        if bytes.len() < MAGIC.len() + HASH_BYTES {
            return Err(bad("shorter than header + seal"));
        }
        let (body, seal) = bytes.split_at(bytes.len() - HASH_BYTES);
        // Verify the seal before trusting a single field: a sealed blob is
        // bit-for-bit what `to_bytes` produced, so parsing cannot be
        // confused by tampering — only by version skew, checked next.
        if blake3::hash(body) != seal {
            return Err(bad("BLAKE3 seal mismatch (truncated or tampered)"));
        }
        let mut r = Reader {
            bytes: body,
            off: 0,
        };
        if r.take(4)? != MAGIC {
            return Err(bad("bad magic"));
        }
        let version = r.u16()?;
        if version != VERSION {
            return Err(bad(format!("unsupported version {version}")));
        }
        let scheme = match r.u8()? {
            1 => SchemeType::Bfv,
            2 => SchemeType::Ckks,
            other => return Err(bad(format!("unknown scheme marker {other}"))),
        };
        let degree = r.u32()?;
        let security_checked = match r.u8()? {
            0 => false,
            1 => true,
            other => return Err(bad(format!("bad security flag {other}"))),
        };
        let plain_modulus = r.u64()?;
        let scale_bits = r.u32()?;
        let prime_count = r.u32()? as usize;
        if prime_count == 0 || prime_count > 64 {
            return Err(bad("implausible prime count"));
        }
        let mut prime_bits = Vec::with_capacity(prime_count);
        for _ in 0..prime_count {
            prime_bits.push(r.u32()?);
        }
        let seed = r.bytes_field()?;
        let client_rng_drawn = r.u64()?;
        let enc_ops = r.u64()?;
        let dec_ops = r.u64()?;
        let policy = RetryPolicy {
            max_attempts: r.u32()?,
            base_backoff_ms: r.u64()?,
            max_backoff_ms: r.u64()?,
            round_timeout_ms: r.u64()?,
        };
        let clock_ms = r.u64()?;
        let next_seq = r.u64()?;
        let jitter_drawn = r.u64()?;
        let refresh_floor = r.f64()?;
        if !refresh_floor.is_finite() {
            return Err(bad("non-finite refresh floor"));
        }
        let ledger = CommLedger {
            upload_bytes: r.u64()?,
            download_bytes: r.u64()?,
            uploads: r.u32()?,
            downloads: r.u32()?,
            rounds: r.u32()?,
            retransmit_bytes: r.u64()?,
            refresh_rounds: r.u32()?,
            recovery_bytes: r.u64()?,
        };
        let keys_wire = r.bytes_field()?;
        let relin_wire = r.bytes_field()?;
        let galois_wire = r.bytes_field()?;
        let uplink_state = r.bytes_field()?;
        let downlink_state = r.bytes_field()?;
        let progress = r.bytes_field()?;
        if r.off != body.len() {
            return Err(bad("trailing bytes in body"));
        }
        Ok(SessionCheckpoint {
            scheme,
            degree,
            security_checked,
            plain_modulus,
            scale_bits,
            prime_bits,
            seed,
            client_rng_drawn,
            enc_ops,
            dec_ops,
            policy,
            clock_ms,
            next_seq,
            jitter_drawn,
            refresh_floor,
            ledger,
            keys_wire,
            relin_wire,
            galois_wire,
            uplink_state,
            downlink_state,
            progress,
        })
    }

    /// The scheme this checkpoint was taken under.
    pub fn scheme(&self) -> SchemeType {
        self.scheme
    }

    /// The workload progress blob stored at checkpoint time.
    pub fn progress(&self) -> &[u8] {
        &self.progress
    }

    /// The ledger as of the checkpoint.
    pub fn ledger(&self) -> &CommLedger {
        &self.ledger
    }

    /// Rebuilds the HE parameter set from the recorded recipe and verifies
    /// it reproduces the recorded plain modulus / scale exactly.
    ///
    /// # Errors
    ///
    /// Returns [`TransportError::BadCheckpoint`] if the recipe is invalid or
    /// the deterministic rebuild disagrees with the recorded values.
    pub(crate) fn rebuild_params(&self) -> Result<HeParams, TransportError> {
        let n = self.degree as usize;
        let params = match self.scheme {
            SchemeType::Bfv => {
                let plain_bits = 64 - self.plain_modulus.leading_zeros();
                if self.security_checked {
                    HeParams::bfv(n, &self.prime_bits, plain_bits)
                } else {
                    HeParams::bfv_insecure(n, &self.prime_bits, plain_bits)
                }
            }
            SchemeType::Ckks => {
                if self.security_checked {
                    HeParams::ckks(n, &self.prime_bits, self.scale_bits)
                } else {
                    HeParams::ckks_insecure(n, &self.prime_bits, self.scale_bits)
                }
            }
        }
        .map_err(|e| bad(format!("parameter recipe rejected: {e}")))?;
        // Parameter construction is deterministic, so the rebuilt set must
        // reproduce the recorded derived values bit-for-bit.
        let consistent = match self.scheme {
            SchemeType::Bfv => params.plain_modulus() == self.plain_modulus,
            SchemeType::Ckks => params.scale_bits() == self.scale_bits,
        };
        if !consistent || params.degree() != n {
            return Err(bad("rebuilt parameters disagree with recorded recipe"));
        }
        Ok(params)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> SessionCheckpoint {
        let params = HeParams::bfv_insecure(256, &[40, 40, 41], 14).unwrap();
        SessionCheckpoint {
            scheme: SchemeType::Bfv,
            degree: 256,
            security_checked: false,
            plain_modulus: params.plain_modulus(),
            scale_bits: 0,
            prime_bits: vec![40, 40, 41],
            seed: b"ckpt test seed".to_vec(),
            client_rng_drawn: 12345,
            enc_ops: 7,
            dec_ops: 6,
            policy: RetryPolicy::default(),
            clock_ms: 9001,
            next_seq: 42,
            jitter_drawn: 88,
            refresh_floor: 8.0,
            ledger: CommLedger {
                upload_bytes: 100,
                download_bytes: 200,
                uploads: 3,
                downloads: 4,
                rounds: 2,
                retransmit_bytes: 50,
                refresh_rounds: 1,
                recovery_bytes: 10,
            },
            keys_wire: vec![1, 2, 3],
            relin_wire: vec![4, 5],
            galois_wire: vec![6],
            uplink_state: vec![],
            downlink_state: vec![7, 8, 9, 10],
            progress: b"progress blob".to_vec(),
        }
    }

    #[test]
    fn roundtrip_is_exact() {
        let ck = sample();
        let bytes = ck.to_bytes();
        let back = SessionCheckpoint::from_bytes(&bytes).unwrap();
        assert_eq!(back, ck);
        // Re-serialization is bit-identical.
        assert_eq!(back.to_bytes(), bytes);
    }

    #[test]
    fn every_truncation_is_rejected_with_typed_error() {
        let bytes = sample().to_bytes();
        for cut in 0..bytes.len() {
            match SessionCheckpoint::from_bytes(&bytes[..cut]) {
                Err(TransportError::BadCheckpoint(_)) => {}
                other => panic!("cut at {cut}: expected BadCheckpoint, got {other:?}"),
            }
        }
    }

    #[test]
    fn every_single_bit_flip_is_rejected() {
        let bytes = sample().to_bytes();
        // Flip one bit in each byte (body and seal alike): the BLAKE3 seal
        // must catch all of them.
        for i in 0..bytes.len() {
            let mut bad = bytes.clone();
            bad[i] ^= 1 << (i % 8);
            match SessionCheckpoint::from_bytes(&bad) {
                Err(TransportError::BadCheckpoint(_)) => {}
                other => panic!("flip at {i}: expected BadCheckpoint, got {other:?}"),
            }
        }
    }

    #[test]
    fn params_recipe_rebuilds_and_cross_checks() {
        let ck = sample();
        let params = ck.rebuild_params().unwrap();
        assert_eq!(params.degree(), 256);
        assert_eq!(params.plain_modulus(), ck.plain_modulus);

        let mut wrong = ck.clone();
        wrong.plain_modulus = ck.plain_modulus + 2; // not what the recipe regenerates
        assert!(matches!(
            wrong.rebuild_params(),
            Err(TransportError::BadCheckpoint(_))
        ));
    }
}
