//! Deterministic fault injection: a seed-driven adversarial link.
//!
//! [`FaultyChannel`] applies a [`FaultPlan`] to every frame it carries. All
//! randomness comes from a domain-separated [`Blake3Rng`], so the same
//! `(seed, plan)` pair replays the exact same fault schedule — failing runs
//! are reproducible by construction.

use super::channel::{state_take, state_u64, Channel, Delivery};
use super::TransportError;
use choco_prng::Blake3Rng;
use std::collections::VecDeque;

/// Per-frame fault probabilities and latency bounds for a lossy link.
///
/// Rates are evaluated independently, in a fixed order (drop, corrupt,
/// truncate, duplicate), one RNG draw each, so schedules are stable under
/// plan tweaks that don't touch earlier draws.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultPlan {
    /// Probability a frame vanishes in flight.
    pub drop_rate: f64,
    /// Probability a surviving frame has one random bit flipped.
    pub corrupt_rate: f64,
    /// Probability a surviving frame is cut to a random prefix.
    pub truncate_rate: f64,
    /// Probability a surviving frame is delivered twice.
    pub duplicate_rate: f64,
    /// Uniform extra one-way latency in `[0, max_extra_latency_ms]`.
    pub max_extra_latency_ms: u64,
}

impl FaultPlan {
    /// A perfect link: no faults, no latency.
    pub fn lossless() -> Self {
        FaultPlan {
            drop_rate: 0.0,
            corrupt_rate: 0.0,
            truncate_rate: 0.0,
            duplicate_rate: 0.0,
            max_extra_latency_ms: 0,
        }
    }

    /// A moderately hostile link: the default stress plan used in tests —
    /// well within the default retry budget.
    pub fn flaky() -> Self {
        FaultPlan {
            drop_rate: 0.2,
            corrupt_rate: 0.15,
            truncate_rate: 0.1,
            duplicate_rate: 0.1,
            max_extra_latency_ms: 20,
        }
    }

    /// A dead link: every frame is dropped. Exceeds any retry budget.
    pub fn blackhole() -> Self {
        FaultPlan {
            drop_rate: 1.0,
            ..FaultPlan::lossless()
        }
    }

    /// Sets the drop rate.
    pub fn with_drop_rate(mut self, rate: f64) -> Self {
        self.drop_rate = rate;
        self
    }

    /// Sets the corruption rate.
    pub fn with_corrupt_rate(mut self, rate: f64) -> Self {
        self.corrupt_rate = rate;
        self
    }

    /// Sets the truncation rate.
    pub fn with_truncate_rate(mut self, rate: f64) -> Self {
        self.truncate_rate = rate;
        self
    }

    /// Sets the duplication rate.
    pub fn with_duplicate_rate(mut self, rate: f64) -> Self {
        self.duplicate_rate = rate;
        self
    }

    /// Sets the latency bound.
    pub fn with_max_latency_ms(mut self, ms: u64) -> Self {
        self.max_extra_latency_ms = ms;
        self
    }
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan::lossless()
    }
}

/// Counters of what a faulty link actually did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Frames delivered (possibly altered).
    pub delivered: u64,
    /// Frames silently dropped.
    pub dropped: u64,
    /// Frames with a flipped bit.
    pub corrupted: u64,
    /// Frames cut short.
    pub truncated: u64,
    /// Frames delivered twice.
    pub duplicated: u64,
}

impl FaultStats {
    /// Total faults of any kind injected.
    pub fn total_faults(&self) -> u64 {
        self.dropped + self.corrupted + self.truncated + self.duplicated
    }
}

/// A lossy in-memory channel driven by a [`FaultPlan`] and a seeded RNG.
#[derive(Debug)]
pub struct FaultyChannel {
    queue: VecDeque<Delivery>,
    rng: Blake3Rng,
    seed: Vec<u8>,
    plan: FaultPlan,
    stats: FaultStats,
}

impl FaultyChannel {
    /// Creates a channel whose fault schedule is fully determined by
    /// `seed` and `plan`.
    pub fn new(seed: &[u8], plan: FaultPlan) -> Self {
        FaultyChannel {
            queue: VecDeque::new(),
            rng: Blake3Rng::from_seed_labeled(seed, "faulty-channel"),
            seed: seed.to_vec(),
            plan,
            stats: FaultStats::default(),
        }
    }

    /// What this link has done so far.
    pub fn stats(&self) -> FaultStats {
        self.stats
    }

    fn chance(&mut self, rate: f64) -> bool {
        // One draw per decision keeps schedules aligned across plans.
        self.rng.next_f64() < rate
    }

    fn mangle(&mut self, mut wire: Vec<u8>) -> Vec<u8> {
        if self.chance(self.plan.corrupt_rate) && !wire.is_empty() {
            let idx = self.rng.next_below(wire.len() as u64) as usize;
            let bit = self.rng.next_below(8) as u8;
            wire[idx] ^= 1 << bit;
            self.stats.corrupted += 1;
        }
        if self.chance(self.plan.truncate_rate) && !wire.is_empty() {
            let keep = self.rng.next_below(wire.len() as u64) as usize;
            wire.truncate(keep);
            self.stats.truncated += 1;
        }
        wire
    }

    fn latency(&mut self) -> u64 {
        if self.plan.max_extra_latency_ms == 0 {
            0
        } else {
            self.rng.next_below(self.plan.max_extra_latency_ms + 1)
        }
    }
}

impl Channel for FaultyChannel {
    fn send(&mut self, wire: Vec<u8>) {
        if self.chance(self.plan.drop_rate) {
            self.stats.dropped += 1;
            return;
        }
        let duplicate = self.chance(self.plan.duplicate_rate);
        let mangled = self.mangle(wire);
        let latency_ms = self.latency();
        self.queue.push_back(Delivery {
            wire: mangled.clone(),
            latency_ms,
        });
        self.stats.delivered += 1;
        if duplicate {
            let latency_ms = self.latency();
            self.queue.push_back(Delivery {
                wire: mangled,
                latency_ms,
            });
            self.stats.duplicated += 1;
            self.stats.delivered += 1;
        }
    }

    fn recv(&mut self) -> Option<Delivery> {
        self.queue.pop_front()
    }

    fn pending(&self) -> usize {
        self.queue.len()
    }

    fn fault_stats(&self) -> FaultStats {
        self.stats
    }

    fn export_state(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(&self.rng.bytes_drawn().to_le_bytes());
        for c in [
            self.stats.delivered,
            self.stats.dropped,
            self.stats.corrupted,
            self.stats.truncated,
            self.stats.duplicated,
        ] {
            out.extend_from_slice(&c.to_le_bytes());
        }
        out.extend_from_slice(&(self.queue.len() as u32).to_le_bytes());
        for d in &self.queue {
            out.extend_from_slice(&d.latency_ms.to_le_bytes());
            out.extend_from_slice(&(d.wire.len() as u32).to_le_bytes());
            out.extend_from_slice(&d.wire);
        }
        out
    }

    fn import_state(&mut self, bytes: &[u8]) -> Result<(), TransportError> {
        let mut rest = bytes;
        let drawn = state_u64(&mut rest, "faulty channel")?;
        let mut stats = FaultStats::default();
        for c in [
            &mut stats.delivered,
            &mut stats.dropped,
            &mut stats.corrupted,
            &mut stats.truncated,
            &mut stats.duplicated,
        ] {
            *c = state_u64(&mut rest, "faulty channel")?;
        }
        let count = super::channel::state_u32(&mut rest, "faulty channel")? as usize;
        let mut queue = VecDeque::with_capacity(count.min(1024));
        for _ in 0..count {
            let latency_ms = state_u64(&mut rest, "faulty channel")?;
            let len = super::channel::state_u32(&mut rest, "faulty channel")? as usize;
            let wire = state_take(&mut rest, len, "faulty channel")?.to_vec();
            queue.push_back(Delivery { wire, latency_ms });
        }
        if !rest.is_empty() {
            return Err(TransportError::BadCheckpoint(
                "faulty channel: trailing bytes in state".into(),
            ));
        }
        // Rebuild the fault RNG at the exact draw position: the stream is a
        // pure function of (seed, bytes drawn), so skipping `drawn` bytes
        // replays the remainder of the fault schedule bit-for-bit.
        let mut rng = Blake3Rng::from_seed_labeled(&self.seed, "faulty-channel");
        rng.skip(drawn);
        self.rng = rng;
        self.stats = stats;
        self.queue = queue;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lossless_plan_delivers_everything_intact() {
        let mut ch = FaultyChannel::new(b"t0", FaultPlan::lossless());
        for i in 0..50u8 {
            ch.send(vec![i; 16]);
        }
        for i in 0..50u8 {
            let d = ch.recv().unwrap();
            assert_eq!(d.wire, vec![i; 16]);
            assert_eq!(d.latency_ms, 0);
        }
        assert_eq!(ch.stats().total_faults(), 0);
    }

    #[test]
    fn blackhole_drops_everything() {
        let mut ch = FaultyChannel::new(b"t1", FaultPlan::blackhole());
        for _ in 0..20 {
            ch.send(vec![1, 2, 3]);
        }
        assert!(ch.recv().is_none());
        assert_eq!(ch.stats().dropped, 20);
        assert_eq!(ch.stats().delivered, 0);
    }

    #[test]
    fn fault_schedule_is_deterministic() {
        let run = |seed: &[u8]| {
            let mut ch = FaultyChannel::new(seed, FaultPlan::flaky());
            let mut out = Vec::new();
            for i in 0..200u8 {
                ch.send(vec![i; 32]);
            }
            while let Some(d) = ch.recv() {
                out.push(d);
            }
            (out, ch.stats())
        };
        let (a, sa) = run(b"same seed");
        let (b, sb) = run(b"same seed");
        assert_eq!(a, b);
        assert_eq!(sa, sb);
        let (c, _) = run(b"other seed");
        assert_ne!(a, c);
    }

    #[test]
    fn flaky_plan_injects_every_fault_kind_eventually() {
        let mut ch = FaultyChannel::new(b"t2", FaultPlan::flaky());
        for i in 0..500u16 {
            ch.send(i.to_le_bytes().repeat(8));
            while ch.recv().is_some() {}
        }
        let s = ch.stats();
        assert!(s.dropped > 0, "no drops in 500 frames");
        assert!(s.corrupted > 0, "no corruption in 500 frames");
        assert!(s.truncated > 0, "no truncation in 500 frames");
        assert!(s.duplicated > 0, "no duplication in 500 frames");
        assert!(s.delivered > 0);
    }

    #[test]
    fn latency_respects_bound() {
        let plan = FaultPlan::lossless().with_max_latency_ms(7);
        let mut ch = FaultyChannel::new(b"t3", plan);
        let mut seen_nonzero = false;
        for _ in 0..100 {
            ch.send(vec![0; 8]);
            let d = ch.recv().unwrap();
            assert!(d.latency_ms <= 7);
            seen_nonzero |= d.latency_ms > 0;
        }
        assert!(seen_nonzero);
    }
}
