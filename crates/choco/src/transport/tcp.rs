//! Real-socket transport: length-prefixed frames over `std::net::TcpStream`.
//!
//! [`TcpChannel`] carries the exact same keyed-BLAKE3 frames as the
//! in-memory channels — a frame's own leading `u32` length field doubles as
//! the socket-level length prefix, so the bytes on the wire are the encoded
//! frame, verbatim. What changes is the failure model: real sockets add
//! partial reads, write timeouts, connection resets and absurd length
//! prefixes from corrupt or hostile peers. All of those surface as *typed*
//! [`TransportError`] values, never panics and never unbounded allocations.
//!
//! The serving topology is a **verified relay**: the remote `choco-serve`
//! process holds the tenant's tag key and acknowledges every frame it can
//! verify by echoing it back. [`TcpChannel::send`] writes the frame to the
//! socket; [`Channel::recv`] reads the echo. The session layer's retry,
//! checkpoint and resume machinery is unchanged — an exchange only
//! completes once the frame has crossed the network twice and verified at
//! both ends (see DESIGN.md §11 for why this shape preserves the ledger
//! and bit-identity invariants).
//!
//! One [`TcpStream`] backs both directions of a session: the uplink and
//! downlink handles from [`TcpChannel::pair`] share the connection behind a
//! mutex. Session exchanges are strictly sequential, so the two handles
//! never interleave frames.

use super::channel::{Channel, Delivery};
use super::frame::TagKey;
use super::session::RetryPolicy;
use super::TransportError;
use std::collections::VecDeque;
use std::io::{ErrorKind, Read, Write};
use std::net::{Shutdown, TcpStream};
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::{Duration, Instant};

/// Upper bound on a single frame accepted off the wire. A length prefix
/// declaring more than this is rejected *before* any allocation happens —
/// a corrupt or hostile peer cannot force the receiver to reserve gigabytes.
pub const MAX_FRAME_BYTES: u64 = 1 << 26;

/// Socket tuning for one connection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TcpOptions {
    /// How long [`Channel::recv`] waits for an expected echo before
    /// reporting the pipe dry (the session layer then retries or times
    /// out), in real milliseconds.
    pub recv_deadline_ms: u64,
    /// Write timeout and handshake-read timeout, in real milliseconds.
    pub io_timeout_ms: u64,
    /// Per-frame size bound enforced on the read path.
    pub max_frame_bytes: u64,
}

impl Default for TcpOptions {
    fn default() -> Self {
        TcpOptions {
            recv_deadline_ms: 2_000,
            io_timeout_ms: 5_000,
            max_frame_bytes: MAX_FRAME_BYTES,
        }
    }
}

fn elapsed_ms(start: Instant) -> u64 {
    u64::try_from(start.elapsed().as_millis()).unwrap_or(u64::MAX)
}

fn le_u32(bytes: &[u8]) -> Option<u32> {
    bytes.get(..4)?.try_into().ok().map(u32::from_le_bytes)
}

fn take<'a>(rest: &mut &'a [u8], n: usize) -> Result<&'a [u8], TransportError> {
    if rest.len() < n {
        return Err(TransportError::Truncated {
            need: n,
            have: rest.len(),
        });
    }
    let (head, tail) = rest.split_at(n);
    *rest = tail;
    Ok(head)
}

fn take_u64(rest: &mut &[u8]) -> Result<u64, TransportError> {
    let b: [u8; 8] = take(rest, 8)?
        .try_into()
        .map_err(|_| TransportError::Malformed("bad u64 field".into()))?;
    Ok(u64::from_le_bytes(b))
}

fn take_u32(rest: &mut &[u8]) -> Result<u32, TransportError> {
    let b: [u8; 4] = take(rest, 4)?
        .try_into()
        .map_err(|_| TransportError::Malformed("bad u32 field".into()))?;
    Ok(u32::from_le_bytes(b))
}

/// Length-prefixed blob I/O over one [`TcpStream`]: partial reads are
/// buffered across calls, length prefixes are bounds-checked before
/// allocating, and every failure is a typed [`TransportError`]. This is the
/// shared read/write core of [`TcpChannel`] and the `choco-serve` worker
/// loop.
pub struct BlobIo {
    stream: TcpStream,
    buf: Vec<u8>,
    max_frame_bytes: u64,
}

impl BlobIo {
    /// Wraps a connected stream. Disables Nagle so small control frames
    /// don't stall behind the ACK clock.
    pub fn new(stream: TcpStream, max_frame_bytes: u64) -> Self {
        let _ = stream.set_nodelay(true);
        BlobIo {
            stream,
            buf: Vec::new(),
            max_frame_bytes,
        }
    }

    /// The underlying stream (e.g. for `shutdown` or peer-address logging).
    pub fn stream(&self) -> &TcpStream {
        &self.stream
    }

    /// Buffers socket bytes until at least `n` are available. `Ok(false)`
    /// means the deadline passed first (partial bytes stay buffered for the
    /// next call).
    fn fill(&mut self, n: usize, deadline_ms: u64) -> Result<bool, TransportError> {
        if self.buf.len() >= n {
            return Ok(true);
        }
        let start = Instant::now();
        let mut chunk = [0u8; 16 * 1024];
        while self.buf.len() < n {
            let left = deadline_ms.saturating_sub(elapsed_ms(start));
            if left == 0 {
                return Ok(false);
            }
            self.stream
                .set_read_timeout(Some(Duration::from_millis(left)))
                .map_err(|e| TransportError::Disconnected(format!("set read timeout: {e}")))?;
            match self.stream.read(&mut chunk) {
                Ok(0) => {
                    return Err(TransportError::Disconnected(
                        "peer closed the connection".into(),
                    ))
                }
                Ok(got) => {
                    if let Some(bytes) = chunk.get(..got) {
                        self.buf.extend_from_slice(bytes);
                    }
                }
                Err(e)
                    if matches!(
                        e.kind(),
                        ErrorKind::WouldBlock | ErrorKind::TimedOut | ErrorKind::Interrupted
                    ) =>
                {
                    continue;
                }
                Err(e) => return Err(TransportError::Disconnected(format!("read: {e}"))),
            }
        }
        Ok(true)
    }

    /// Reads one length-prefixed blob (prefix included in the returned
    /// bytes, matching the frame wire format). `Ok(None)` if the deadline
    /// passes before a complete blob arrives — partially read bytes stay
    /// buffered and the next call continues where this one stopped.
    ///
    /// # Errors
    ///
    /// [`TransportError::Oversized`] if the prefix declares more than the
    /// configured bound (checked before allocating);
    /// [`TransportError::Disconnected`] on EOF or a socket error.
    pub fn read_blob(&mut self, deadline_ms: u64) -> Result<Option<Vec<u8>>, TransportError> {
        if !self.fill(4, deadline_ms)? {
            return Ok(None);
        }
        let declared = u64::from(le_u32(&self.buf).unwrap_or(0));
        if declared > self.max_frame_bytes {
            return Err(TransportError::Oversized {
                declared,
                max: self.max_frame_bytes,
            });
        }
        let total = declared as usize + 4;
        if !self.fill(total, deadline_ms)? {
            return Ok(None);
        }
        let rest = self.buf.split_off(total);
        Ok(Some(std::mem::replace(&mut self.buf, rest)))
    }

    /// Reads exactly `n` raw bytes (no length prefix) — used for the
    /// fixed-size hello/ack handshake messages. `Ok(None)` on deadline.
    ///
    /// # Errors
    ///
    /// [`TransportError::Disconnected`] on EOF or a socket error.
    pub fn read_msg(
        &mut self,
        n: usize,
        deadline_ms: u64,
    ) -> Result<Option<Vec<u8>>, TransportError> {
        if !self.fill(n, deadline_ms)? {
            return Ok(None);
        }
        let rest = self.buf.split_off(n);
        Ok(Some(std::mem::replace(&mut self.buf, rest)))
    }

    /// Writes all of `bytes` to the socket.
    ///
    /// # Errors
    ///
    /// [`TransportError::Disconnected`] on any write failure — a write
    /// timeout mid-frame leaves the stream unframeable, so it is treated as
    /// a dead connection, not retried in place.
    pub fn write_all(&mut self, bytes: &[u8]) -> Result<(), TransportError> {
        self.stream
            .write_all(bytes)
            .and_then(|_| self.stream.flush())
            .map_err(|e| TransportError::Disconnected(format!("write: {e}")))
    }
}

struct TcpConn {
    io: BlobIo,
    /// Sticky first error: once the connection fails, every later operation
    /// reports dry/no-op and the typed cause stays inspectable via
    /// [`TcpChannel::last_error`].
    error: Option<TransportError>,
    /// Set by `send`, cleared when a recv deadline expires: an echo is only
    /// worth blocking for after we have written something.
    awaiting_echo: bool,
    recv_deadline_ms: u64,
}

impl TcpConn {
    fn fail(&mut self, e: TransportError) {
        if self.error.is_none() {
            self.error = Some(e);
        }
        let _ = self.io.stream().shutdown(Shutdown::Both);
    }
}

/// One direction of a [`Channel`] over a shared TCP connection, produced in
/// uplink/downlink pairs by [`TcpChannel::pair`] or [`dial`].
///
/// The [`Channel`] contract has no error returns (`send` is infallible,
/// `recv` yields `Option`), so socket failures are recorded as a sticky
/// typed error: subsequent `recv`s report the pipe dry, the session layer's
/// retry budget converts that into [`TransportError::RetriesExhausted`],
/// and the root cause stays available via [`TcpChannel::last_error`].
pub struct TcpChannel {
    conn: Arc<Mutex<TcpConn>>,
    queue: VecDeque<Delivery>,
}

impl TcpChannel {
    /// Splits a connected stream into an (uplink, downlink) channel pair
    /// sharing the connection. `io` may already hold buffered bytes (e.g.
    /// frames that arrived right behind the handshake ack).
    pub fn pair_from_io(io: BlobIo, opts: &TcpOptions) -> (TcpChannel, TcpChannel) {
        let _ = io
            .stream()
            .set_write_timeout(Some(Duration::from_millis(opts.io_timeout_ms.max(1))));
        let conn = Arc::new(Mutex::new(TcpConn {
            io,
            error: None,
            awaiting_echo: false,
            recv_deadline_ms: opts.recv_deadline_ms,
        }));
        (
            TcpChannel {
                conn: Arc::clone(&conn),
                queue: VecDeque::new(),
            },
            TcpChannel {
                conn,
                queue: VecDeque::new(),
            },
        )
    }

    /// [`TcpChannel::pair_from_io`] over a raw stream.
    pub fn pair(stream: TcpStream, opts: &TcpOptions) -> (TcpChannel, TcpChannel) {
        Self::pair_from_io(BlobIo::new(stream, opts.max_frame_bytes), opts)
    }

    fn lock(&self) -> MutexGuard<'_, TcpConn> {
        match self.conn.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// The first socket-level failure this connection hit, if any.
    pub fn last_error(&self) -> Option<TransportError> {
        self.lock().error.clone()
    }

    /// Whether the connection is still usable.
    pub fn is_connected(&self) -> bool {
        self.lock().error.is_none()
    }

    /// Hard-kills the connection from this end (both directions). Used by
    /// the chaos tests to materialize a crash as a real socket teardown.
    pub fn kill(&self) {
        let mut c = self.lock();
        c.fail(TransportError::Disconnected("killed locally".into()));
    }
}

impl Channel for TcpChannel {
    fn send(&mut self, wire: Vec<u8>) {
        let mut c = self.lock();
        if c.error.is_some() {
            return;
        }
        if let Err(e) = c.io.write_all(&wire) {
            c.fail(e);
            return;
        }
        c.awaiting_echo = true;
    }

    fn recv(&mut self) -> Option<Delivery> {
        if let Some(d) = self.queue.pop_front() {
            return Some(d);
        }
        let mut c = self.lock();
        if c.error.is_some() {
            return None;
        }
        // Block for the echo only when one is expected; otherwise a 1 ms
        // poll keeps drain loops (resume, stale-duplicate sweeps) fast.
        let deadline = if c.awaiting_echo {
            c.recv_deadline_ms.max(1)
        } else {
            1
        };
        let start = Instant::now();
        match c.io.read_blob(deadline) {
            Ok(Some(wire)) => Some(Delivery {
                wire,
                latency_ms: elapsed_ms(start),
            }),
            Ok(None) => {
                c.awaiting_echo = false;
                None
            }
            Err(e) => {
                c.fail(e);
                None
            }
        }
    }

    fn pending(&self) -> usize {
        self.queue.len()
    }

    fn export_state(&self) -> Vec<u8> {
        // Only frames already delivered into this handle's local queue can
        // be checkpointed; bytes still inside the kernel's socket buffers
        // die with the connection — exactly like frames lost to a crash,
        // which the resume handshake is built to absorb.
        let mut out = Vec::new();
        out.extend_from_slice(&(self.queue.len() as u32).to_le_bytes());
        for d in &self.queue {
            out.extend_from_slice(&d.latency_ms.to_le_bytes());
            out.extend_from_slice(&(d.wire.len() as u32).to_le_bytes());
            out.extend_from_slice(&d.wire);
        }
        out
    }

    fn import_state(&mut self, bytes: &[u8]) -> Result<(), TransportError> {
        if bytes.is_empty() {
            self.queue.clear();
            return Ok(());
        }
        let mut rest = bytes;
        let count = take_u32(&mut rest)
            .map_err(|_| TransportError::BadCheckpoint("tcp channel: truncated state".into()))?;
        let mut queue = VecDeque::new();
        for _ in 0..count {
            let err = || TransportError::BadCheckpoint("tcp channel: truncated state".into());
            let latency_ms = take_u64(&mut rest).map_err(|_| err())?;
            let len = take_u32(&mut rest).map_err(|_| err())? as usize;
            let wire = take(&mut rest, len).map_err(|_| err())?.to_vec();
            queue.push_back(Delivery { wire, latency_ms });
        }
        if !rest.is_empty() {
            return Err(TransportError::BadCheckpoint(
                "tcp channel: trailing bytes in state".into(),
            ));
        }
        self.queue = queue;
        Ok(())
    }
}

/// Magic prefix of the client hello.
pub const HELLO_MAGIC: &[u8; 4] = b"CHLO";
/// Magic prefix of the server's hello ack.
pub const ACK_MAGIC: &[u8; 4] = b"CHAK";
/// Handshake wire version.
pub const HELLO_VERSION: u16 = 1;
/// Size of an encoded hello: magic, version, tenant, session, resume flag,
/// keyed auth tag.
pub const HELLO_BYTES: usize = 4 + 2 + 8 + 8 + 1 + 32;
/// Size of an encoded ack: magic, status byte, active, limit.
pub const ACK_BYTES: usize = 4 + 1 + 4 + 4;

/// A decoded client hello.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Hello {
    /// Tenant whose key registry entry authenticates this connection.
    pub tenant: u64,
    /// Client-chosen session id (distinguishes a tenant's parallel
    /// sessions and names its server-side state across restarts).
    pub session: u64,
    /// Whether the client is resuming from a checkpoint (after a redial).
    pub resume: bool,
    /// Keyed BLAKE3 tag over the fields above under the tenant's tag key.
    pub auth: [u8; 32],
}

fn hello_body(tenant: u64, session: u64, resume: bool) -> Vec<u8> {
    let mut body = Vec::with_capacity(17);
    body.extend_from_slice(&tenant.to_le_bytes());
    body.extend_from_slice(&session.to_le_bytes());
    body.push(u8::from(resume));
    body
}

impl Hello {
    /// Checks the hello's auth tag against a tenant tag key.
    pub fn verify(&self, key: &TagKey) -> bool {
        key.labeled_tag(
            "tcp-hello",
            &hello_body(self.tenant, self.session, self.resume),
        ) == self.auth
    }
}

/// Encodes an authenticated client hello.
pub fn encode_hello(key: &TagKey, tenant: u64, session: u64, resume: bool) -> Vec<u8> {
    let body = hello_body(tenant, session, resume);
    let mut out = Vec::with_capacity(HELLO_BYTES);
    out.extend_from_slice(HELLO_MAGIC);
    out.extend_from_slice(&HELLO_VERSION.to_le_bytes());
    out.extend_from_slice(&body);
    out.extend_from_slice(&key.labeled_tag("tcp-hello", &body));
    out
}

/// Decodes a client hello (structure only — verify the auth tag against the
/// tenant's key with [`Hello::verify`] once the tenant is looked up).
///
/// # Errors
///
/// [`TransportError::Malformed`] on bad magic/version,
/// [`TransportError::Truncated`] if bytes are missing.
pub fn decode_hello(bytes: &[u8]) -> Result<Hello, TransportError> {
    let mut rest = bytes;
    if take(&mut rest, 4)? != HELLO_MAGIC {
        return Err(TransportError::Malformed("bad hello magic".into()));
    }
    let ver: [u8; 2] = take(&mut rest, 2)?
        .try_into()
        .map_err(|_| TransportError::Malformed("bad hello version".into()))?;
    if u16::from_le_bytes(ver) != HELLO_VERSION {
        return Err(TransportError::Malformed(format!(
            "unsupported hello version {}",
            u16::from_le_bytes(ver)
        )));
    }
    let tenant = take_u64(&mut rest)?;
    let session = take_u64(&mut rest)?;
    let resume = take(&mut rest, 1)? != [0];
    let auth: [u8; 32] = take(&mut rest, 32)?
        .try_into()
        .map_err(|_| TransportError::Malformed("bad hello auth".into()))?;
    Ok(Hello {
        tenant,
        session,
        resume,
        auth,
    })
}

/// The server's verdict on a client hello.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HelloStatus {
    /// Admitted: the connection switches to frame echo mode.
    Ok,
    /// Refused: the server is at its session limit.
    Overloaded {
        /// Sessions active when the hello arrived.
        active: u32,
        /// Configured admission limit.
        limit: u32,
    },
    /// Refused: the tenant id is not in the key registry.
    UnknownTenant,
    /// Refused: the server is draining for shutdown.
    Draining,
    /// Refused: the hello auth tag did not verify under the tenant's key.
    BadAuth,
}

/// Encodes a hello ack.
pub fn encode_ack(status: HelloStatus) -> Vec<u8> {
    let (code, active, limit) = match status {
        HelloStatus::Ok => (0u8, 0, 0),
        HelloStatus::Overloaded { active, limit } => (1, active, limit),
        HelloStatus::UnknownTenant => (2, 0, 0),
        HelloStatus::Draining => (3, 0, 0),
        HelloStatus::BadAuth => (4, 0, 0),
    };
    let mut out = Vec::with_capacity(ACK_BYTES);
    out.extend_from_slice(ACK_MAGIC);
    out.push(code);
    out.extend_from_slice(&active.to_le_bytes());
    out.extend_from_slice(&limit.to_le_bytes());
    out
}

/// Decodes a hello ack.
///
/// # Errors
///
/// [`TransportError::Malformed`] on bad magic or status code,
/// [`TransportError::Truncated`] if bytes are missing.
pub fn decode_ack(bytes: &[u8]) -> Result<HelloStatus, TransportError> {
    let mut rest = bytes;
    if take(&mut rest, 4)? != ACK_MAGIC {
        return Err(TransportError::Malformed("bad ack magic".into()));
    }
    let code = take(&mut rest, 1)?.first().copied().unwrap_or(u8::MAX);
    let active = take_u32(&mut rest)?;
    let limit = take_u32(&mut rest)?;
    Ok(match code {
        0 => HelloStatus::Ok,
        1 => HelloStatus::Overloaded { active, limit },
        2 => HelloStatus::UnknownTenant,
        3 => HelloStatus::Draining,
        4 => HelloStatus::BadAuth,
        other => {
            return Err(TransportError::Malformed(format!(
                "unknown ack status {other}"
            )))
        }
    })
}

/// Connects to a `choco-serve` instance, runs the authenticated hello
/// handshake, and returns the session's (uplink, downlink) channel pair.
///
/// # Errors
///
/// [`TransportError::Disconnected`] if the connect or handshake I/O fails,
/// [`TransportError::Overloaded`] if the server refused admission for load,
/// [`TransportError::Rejected`] for every other refusal (unknown tenant,
/// bad auth, draining, ack timeout).
pub fn dial(
    addr: &str,
    key: &TagKey,
    tenant: u64,
    session: u64,
    resume: bool,
    opts: &TcpOptions,
) -> Result<(TcpChannel, TcpChannel), TransportError> {
    let io = dial_io(addr, key, tenant, session, resume, opts)?;
    Ok(TcpChannel::pair_from_io(io, opts))
}

/// [`dial`], but returning the raw handshaked [`BlobIo`] instead of the
/// echo-relay channel pair. This is the entry point for protocols that are
/// *not* echo-acknowledged — the remote evaluator (`choco::remote`)
/// exchanges request/response frames over the same admitted connection.
///
/// # Errors
///
/// Same as [`dial`].
pub fn dial_io(
    addr: &str,
    key: &TagKey,
    tenant: u64,
    session: u64,
    resume: bool,
    opts: &TcpOptions,
) -> Result<BlobIo, TransportError> {
    let stream = TcpStream::connect(addr)
        .map_err(|e| TransportError::Disconnected(format!("connect {addr}: {e}")))?;
    let _ = stream.set_write_timeout(Some(Duration::from_millis(opts.io_timeout_ms.max(1))));
    let mut io = BlobIo::new(stream, opts.max_frame_bytes);
    io.write_all(&encode_hello(key, tenant, session, resume))?;
    let ack = io
        .read_msg(ACK_BYTES, opts.io_timeout_ms)?
        .ok_or_else(|| TransportError::Rejected("hello ack timed out".into()))?;
    match decode_ack(&ack)? {
        HelloStatus::Ok => Ok(io),
        HelloStatus::Overloaded { active, limit } => {
            Err(TransportError::Overloaded { active, limit })
        }
        HelloStatus::UnknownTenant => Err(TransportError::Rejected("unknown tenant".into())),
        HelloStatus::Draining => Err(TransportError::Rejected("server draining".into())),
        HelloStatus::BadAuth => Err(TransportError::Rejected(
            "hello authentication failed".into(),
        )),
    }
}

/// Bounded-backoff redialing for client auto-reconnect: retries transient
/// refusals (connection refused/reset, overloaded, draining) per a
/// [`RetryPolicy`], fails fast on permanent ones (unknown tenant, bad
/// auth). Backoff sleeps are real wall time.
pub struct Redialer {
    addr: String,
    key: TagKey,
    tenant: u64,
    session: u64,
    /// Attempt budget and backoff schedule for one redial.
    pub policy: RetryPolicy,
    /// Socket tuning applied to each dialed connection.
    pub opts: TcpOptions,
}

impl Redialer {
    /// A redialer for one (tenant, session) endpoint; the tag key is
    /// derived from the session seed exactly as the session derives it.
    pub fn new(addr: impl Into<String>, seed: &[u8], tenant: u64, session: u64) -> Self {
        Redialer {
            addr: addr.into(),
            key: TagKey::from_session_seed(seed),
            tenant,
            session,
            policy: RetryPolicy::default(),
            opts: TcpOptions::default(),
        }
    }

    /// Replaces the retry policy.
    pub fn with_policy(mut self, policy: RetryPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Replaces the socket options.
    pub fn with_opts(mut self, opts: TcpOptions) -> Self {
        self.opts = opts;
        self
    }

    /// The dialed address.
    pub fn addr(&self) -> &str {
        &self.addr
    }

    /// Repoints the redialer at a new address. A server that hard-crashed
    /// and restarted may come back on a different port; the reconnect loop
    /// re-reads the address on every attempt.
    pub fn set_addr(&mut self, addr: impl Into<String>) {
        self.addr = addr.into();
    }

    /// Dials the initial (non-resume) connection, with retries.
    ///
    /// # Errors
    ///
    /// [`TransportError::RetriesExhausted`] once the attempt budget is
    /// spent; permanent refusals propagate immediately.
    pub fn dial_fresh(&self) -> Result<(TcpChannel, TcpChannel), TransportError> {
        let io = self.attempt(false)?;
        Ok(TcpChannel::pair_from_io(io, &self.opts))
    }

    /// Redials with the resume flag set (after a disconnect), with retries.
    ///
    /// # Errors
    ///
    /// [`TransportError::RetriesExhausted`] once the attempt budget is
    /// spent; permanent refusals propagate immediately.
    pub fn redial(&self) -> Result<(TcpChannel, TcpChannel), TransportError> {
        let io = self.attempt(true)?;
        Ok(TcpChannel::pair_from_io(io, &self.opts))
    }

    /// [`Redialer::dial_fresh`], but returning the raw handshaked
    /// [`BlobIo`] for non-echo protocols (the remote evaluator).
    ///
    /// # Errors
    ///
    /// Same as [`Redialer::dial_fresh`].
    pub fn dial_fresh_io(&self) -> Result<BlobIo, TransportError> {
        self.attempt(false)
    }

    /// [`Redialer::redial`], but returning the raw handshaked [`BlobIo`]
    /// for non-echo protocols (the remote evaluator).
    ///
    /// # Errors
    ///
    /// Same as [`Redialer::redial`].
    pub fn redial_io(&self) -> Result<BlobIo, TransportError> {
        self.attempt(true)
    }

    fn attempt(&self, resume: bool) -> Result<BlobIo, TransportError> {
        let attempts = self.policy.max_attempts.max(1);
        let mut last = TransportError::Dropped;
        for attempt in 0..attempts {
            match dial_io(
                &self.addr,
                &self.key,
                self.tenant,
                self.session,
                resume,
                &self.opts,
            ) {
                Ok(io) => return Ok(io),
                // Transient: the server may be restarting, at capacity, or
                // mid-drain. Back off and retry.
                Err(e @ (TransportError::Disconnected(_) | TransportError::Overloaded { .. })) => {
                    last = e;
                }
                Err(TransportError::Rejected(msg))
                    if msg.contains("draining") || msg.contains("timed out") =>
                {
                    last = TransportError::Rejected(msg);
                }
                Err(e) => return Err(e),
            }
            if attempt + 1 < attempts {
                let backoff = self
                    .policy
                    .base_backoff_ms
                    .saturating_mul(1u64 << attempt.min(16))
                    .min(self.policy.max_backoff_ms);
                std::thread::sleep(Duration::from_millis(backoff));
            }
        }
        Err(TransportError::RetriesExhausted {
            attempts,
            last: last.to_string(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key() -> TagKey {
        TagKey::from_session_seed(b"tcp hello tests")
    }

    #[test]
    fn hello_roundtrips_and_verifies() {
        let k = key();
        let wire = encode_hello(&k, 7, 42, true);
        assert_eq!(wire.len(), HELLO_BYTES);
        let h = decode_hello(&wire).unwrap();
        assert_eq!(h.tenant, 7);
        assert_eq!(h.session, 42);
        assert!(h.resume);
        assert!(h.verify(&k));
        assert!(!h.verify(&TagKey::from_session_seed(b"wrong key")));
    }

    #[test]
    fn hello_rejects_tampering() {
        let k = key();
        let wire = encode_hello(&k, 1, 2, false);
        for byte in 4..wire.len() - 32 {
            let mut bad = wire.clone();
            bad[byte] ^= 1;
            // Version-byte flips fail structurally in decode; every other
            // flip must fail tag verification.
            if let Ok(h) = decode_hello(&bad) {
                assert!(!h.verify(&k), "tampered byte {byte} still verified");
            }
        }
        assert!(decode_hello(&wire[..HELLO_BYTES - 1]).is_err());
        let mut bad_magic = wire;
        bad_magic[0] = b'X';
        assert!(decode_hello(&bad_magic).is_err());
    }

    #[test]
    fn ack_roundtrips_every_status() {
        for status in [
            HelloStatus::Ok,
            HelloStatus::Overloaded {
                active: 9,
                limit: 8,
            },
            HelloStatus::UnknownTenant,
            HelloStatus::Draining,
            HelloStatus::BadAuth,
        ] {
            let wire = encode_ack(status);
            assert_eq!(wire.len(), ACK_BYTES);
            assert_eq!(decode_ack(&wire).unwrap(), status);
        }
        assert!(decode_ack(b"CHAKxxxxxxxxx").is_err());
        assert!(decode_ack(b"CHAK").is_err());
    }
}
