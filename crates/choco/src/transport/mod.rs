//! Fault-tolerant client↔server transport for the offload protocol.
//!
//! The paper's evaluation assumes a perfect link: every ciphertext the
//! client uploads arrives intact, and the noise budget is provisioned
//! offline so no computation ever runs dry mid-protocol. This module keeps
//! the protocol (and its communication accounting) honest when neither
//! assumption holds:
//!
//! * [`frame`] defines a length-delimited wire frame — kind, sequence
//!   number, payload, and a keyed BLAKE3 integrity tag derived from the
//!   session seed. HE gives semantic security but no integrity (a bit-flip
//!   in a ciphertext decrypts to garbage, silently); the tag is the
//!   *systems-level* integrity check layered outside the HE threat model.
//! * [`channel`] is the byte-pipe abstraction: [`channel::DirectChannel`]
//!   is a lossless in-memory queue.
//! * [`fault`] provides [`fault::FaultyChannel`], a deterministic,
//!   seed-driven adversary that drops, corrupts, truncates, duplicates and
//!   delays frames per a configurable [`fault::FaultPlan`].
//! * [`session`] wraps a [`crate::protocol::Client`]/
//!   [`crate::protocol::Server`] pair in a scheme-generic
//!   [`session::Session`]: retries with bounded attempts and deterministic
//!   exponential backoff, a per-round timeout budget, and a health watchdog
//!   (noise budget under BFV, levels under CKKS) that converts would-be
//!   [`choco_he::HeError::NoiseBudgetExhausted`] failures into client-aided
//!   refresh rounds billed to the [`crate::CommLedger`].
//!
//! Everything is deterministic: channels and retry jitter are seeded, and
//! time is a simulated millisecond clock, so a given `(seed, FaultPlan)`
//! pair replays bit-identically.
//!
//! On top of the lossy-link machinery, [`checkpoint`] and the session's
//! [`session::Session::checkpoint`]/[`session::Session::resume`] pair make
//! whole offload runs *crash-tolerant*: a versioned, hash-sealed
//! [`checkpoint::SessionCheckpoint`] blob captures keys, counters, RNG
//! positions and in-flight channel state, and a seeded
//! [`session::CrashPlan`] kills the run at a chosen operation so the
//! kill→checkpoint→resume path is testable deterministically.

pub mod channel;
pub mod checkpoint;
pub mod fault;
pub mod frame;
pub mod session;
pub mod tcp;

pub use channel::{Channel, Delivery, DirectChannel};
pub use checkpoint::SessionCheckpoint;
pub use fault::{FaultPlan, FaultStats, FaultyChannel};
pub use frame::{Frame, FrameKind, TagKey};
pub use session::{CrashOp, CrashPlan, LinkConfig, RetryPolicy, Session};
pub use tcp::{dial, HelloStatus, Redialer, TcpChannel, MAX_FRAME_BYTES};

use choco_he::HeError;

/// Errors surfaced by the transport layer.
///
/// Malformed or tampered frames are *detected*, never propagated into the
/// HE layer: a frame either decodes to exactly the bytes that were sent or
/// the exchange is retried, and a link worse than the retry budget yields
/// [`TransportError::RetriesExhausted`] — a typed error, not garbage
/// plaintext.
#[derive(Debug, Clone, PartialEq)]
pub enum TransportError {
    /// Frame shorter than its own framing overhead or declared length.
    Truncated {
        /// Bytes the frame claimed or minimally requires.
        need: usize,
        /// Bytes actually present.
        have: usize,
    },
    /// Structurally invalid frame (bad length field, unknown kind byte).
    Malformed(String),
    /// The keyed BLAKE3 tag did not match the payload: the frame was
    /// altered in flight.
    TagMismatch {
        /// Sequence number carried by the tampered frame.
        seq: u64,
    },
    /// The channel delivered nothing (the frame was dropped in flight).
    Dropped,
    /// The simulated clock exceeded the per-round timeout budget.
    TimeoutExceeded {
        /// Configured budget in milliseconds.
        budget_ms: u64,
        /// Simulated time actually spent.
        elapsed_ms: u64,
    },
    /// Every retry attempt failed; the link is worse than the retry policy
    /// can absorb.
    RetriesExhausted {
        /// Attempts made before giving up.
        attempts: u32,
        /// The last per-attempt failure observed.
        last: String,
    },
    /// An HE-layer error inside a session exchange (encode/encrypt/etc.).
    He(HeError),
    /// A decrypted sentinel slot did not carry its expected value: the
    /// server's result is inconsistent with the client's reserved probe.
    SentinelMismatch {
        /// Slot index of the failed sentinel.
        slot: usize,
    },
    /// The session's armed [`CrashPlan`] fired: the simulated process died
    /// at this operation. Resume from the last checkpoint.
    Crashed {
        /// The operation that was executing when the crash fired.
        op: CrashOp,
        /// 1-based count of that operation at the crash point.
        nth: u32,
    },
    /// A checkpoint blob failed validation: bad magic/version, truncated or
    /// tampered body (hash mismatch), or a scheme/parameter mismatch.
    BadCheckpoint(String),
    /// A real socket closed underneath the session: EOF, connection reset,
    /// or an I/O error that ends the connection. The carried string is the
    /// OS-level cause. Redial and [`Session::resume`](session::Session) to
    /// continue.
    Disconnected(String),
    /// A length prefix on the wire declared a frame larger than the
    /// configured bound. Rejected *before* allocating, so a hostile or
    /// corrupt peer cannot force a huge allocation.
    Oversized {
        /// Bytes the prefix declared.
        declared: u64,
        /// Configured maximum frame size.
        max: u64,
    },
    /// The server refused admission: it is already serving its configured
    /// maximum number of sessions. A typed rejection, never a silent queue.
    Overloaded {
        /// Sessions active at the server when it refused.
        active: u32,
        /// The server's admission limit.
        limit: u32,
    },
    /// The server rejected the connection handshake for a reason other than
    /// load (unknown tenant, bad hello authentication, draining).
    Rejected(String),
    /// The per-session sequence space is exhausted. Practically unreachable
    /// (2^64 frames), but checked so the cursor can never silently wrap and
    /// alias old frames.
    SeqExhausted,
    /// The evaluator shed the request: its deadline passed before the
    /// scheduler dispatched it. Retryable with a fresh (or no) deadline.
    DeadlineExceeded {
        /// Request id the server shed.
        request_id: u64,
    },
    /// The evaluator's per-tenant circuit breaker is open: the tenant's
    /// recent-error rate tripped it. Retry after the hinted delay — the
    /// breaker half-opens and probes once the window elapses.
    Unavailable {
        /// Server hint: milliseconds to wait before retrying.
        retry_after_ms: u64,
    },
    /// The submitted `(params_hash, program_ref)` is quarantined: a prior
    /// evaluation of it failed in isolation. Terminal — resubmitting the
    /// same program yields the same refusal until the server restarts.
    Quarantined(String),
}

impl std::fmt::Display for TransportError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TransportError::Truncated { need, have } => {
                write!(f, "truncated frame: need {need} bytes, have {have}")
            }
            TransportError::Malformed(msg) => write!(f, "malformed frame: {msg}"),
            TransportError::TagMismatch { seq } => {
                write!(f, "integrity tag mismatch on frame seq {seq}")
            }
            TransportError::Dropped => write!(f, "frame dropped in flight"),
            TransportError::TimeoutExceeded {
                budget_ms,
                elapsed_ms,
            } => {
                write!(
                    f,
                    "round timeout exceeded: {elapsed_ms} ms spent, budget {budget_ms} ms"
                )
            }
            TransportError::RetriesExhausted { attempts, last } => {
                write!(
                    f,
                    "retries exhausted after {attempts} attempts (last: {last})"
                )
            }
            TransportError::He(e) => write!(f, "HE error during exchange: {e}"),
            TransportError::SentinelMismatch { slot } => {
                write!(f, "sentinel slot {slot} decrypted to an unexpected value")
            }
            TransportError::Crashed { op, nth } => {
                write!(f, "simulated crash at {op:?} #{nth}")
            }
            TransportError::BadCheckpoint(msg) => write!(f, "bad checkpoint: {msg}"),
            TransportError::Disconnected(msg) => write!(f, "connection lost: {msg}"),
            TransportError::Oversized { declared, max } => {
                write!(
                    f,
                    "oversized frame: prefix declares {declared} bytes, max {max}"
                )
            }
            TransportError::Overloaded { active, limit } => {
                write!(
                    f,
                    "server overloaded: {active} active sessions, limit {limit}"
                )
            }
            TransportError::Rejected(msg) => write!(f, "connection rejected: {msg}"),
            TransportError::SeqExhausted => write!(f, "frame sequence space exhausted"),
            TransportError::DeadlineExceeded { request_id } => {
                write!(
                    f,
                    "request {request_id} shed: deadline passed before dispatch"
                )
            }
            TransportError::Unavailable { retry_after_ms } => {
                write!(
                    f,
                    "tenant circuit breaker open: retry after {retry_after_ms} ms"
                )
            }
            TransportError::Quarantined(msg) => write!(f, "program quarantined: {msg}"),
        }
    }
}

impl std::error::Error for TransportError {}

impl From<HeError> for TransportError {
    fn from(e: HeError) -> Self {
        TransportError::He(e)
    }
}
