//! Encrypted linear algebra built on rotational redundancy (§3.3).
//!
//! Three kernels cover the paper's workloads:
//!
//! * [`stacked_conv`] — convolution over channel-stacked, redundantly packed
//!   inputs: one rotation + one plaintext multiply per filter tap, no
//!   masking multiplies (the headline win of rotational redundancy);
//! * [`accumulate_channels`] — logarithmic rotate-add tree summing the
//!   per-channel partial results into channel block 0;
//! * [`matvec_diagonals`] — Halevi–Shoup diagonal matrix-vector product for
//!   fully-connected layers and PageRank-style iterations, generic over the
//!   scheme (`u64` slots under BFV, `f64` under CKKS).

use crate::protocol::Server;
use crate::stacking::StackedLayout;
use choco_he::bfv::{Ciphertext, Plaintext};
use choco_he::{Bfv, HeError, HeScheme};

/// One convolution tap: rotate the stacked input by `shift` slots, then
/// multiply by per-channel weights broadcast over each channel block.
#[derive(Debug, Clone)]
pub struct ConvTap {
    /// Row-rotation distance (positive = left), bounded by the layout's
    /// redundancy.
    pub shift: i64,
    /// One weight per input channel.
    pub channel_weights: Vec<u64>,
}

/// Applies a set of convolution taps to a stacked ciphertext:
/// `out = Σ_taps rotate(ct, shift) ⊙ weights`.
///
/// Every output term passes through exactly **one** plaintext
/// multiplication, so noise grows as a single multiply plus `log2(#taps)`
/// bits of accumulation — the "optimal multiplication efficiency" the paper
/// claims for rotational redundancy.
///
/// # Errors
///
/// Propagates rotation (missing Galois key) and encoding errors; an empty
/// tap set or a tap shift exceeding the layout redundancy is a
/// [`HeError::Mismatch`].
///
/// # Panics
///
/// Panics if a tap's weight count mismatches the channel count.
pub fn stacked_conv(
    server: &Server<Bfv>,
    ct: &Ciphertext,
    layout: &StackedLayout,
    taps: &[ConvTap],
) -> Result<Ciphertext, HeError> {
    if taps.is_empty() {
        return Err(HeError::Mismatch(
            "convolution needs at least one tap".into(),
        ));
    }
    let eval = server.evaluator();
    for tap in taps {
        if tap.shift.unsigned_abs() as usize > layout.channel_layout().redundancy() {
            return Err(HeError::Mismatch(format!(
                "tap shift {} exceeds redundancy {}",
                tap.shift,
                layout.channel_layout().redundancy()
            )));
        }
    }
    // All tap shifts rotate the same input, so the fused kernel shares one
    // hoisted decomposition across them and collapses the tap products
    // into a single NTT-domain inner product with one key-switch rounding.
    let pairs: Vec<(i64, Plaintext)> = taps
        .iter()
        .map(|tap| {
            let weights = layout.broadcast_weights(&tap.channel_weights);
            Ok((tap.shift, server.encode(&weights)?))
        })
        .collect::<Result<_, HeError>>()?;
    eval.dot_rotations_plain(ct, &pairs, server.galois_keys())
}

/// Sums all channel blocks into block 0 with a rotate-add tree:
/// `log2(channels)` rotations by multiples of the stride.
///
/// Requires Galois keys for steps `stride, 2·stride, 4·stride, …`.
/// `channels` must be a power of two (pad with zero channels otherwise).
///
/// # Errors
///
/// Propagates rotation errors; a non-power-of-two channel count is
/// reported as [`HeError::Mismatch`].
pub fn accumulate_channels(
    server: &Server<Bfv>,
    ct: &Ciphertext,
    layout: &StackedLayout,
) -> Result<Ciphertext, HeError> {
    let c = layout.channels();
    if !c.is_power_of_two() {
        return Err(HeError::Mismatch(
            "channel count must be a power of two".into(),
        ));
    }
    let eval = server.evaluator();
    let mut acc = ct.clone();
    let mut step = 1usize;
    while step < c {
        let rotated =
            eval.rotate_rows(&acc, (step * layout.stride()) as i64, server.galois_keys())?;
        acc = eval.add(&acc, &rotated)?;
        step <<= 1;
    }
    Ok(acc)
}

/// Replicates an `n`-vector twice in a slot row so that row rotations by up
/// to `n` read `x[(i+d) mod n]` at slot `i` — the packing
/// [`matvec_diagonals`] expects.
///
/// # Panics
///
/// Panics if `2n` exceeds `row_size`.
pub fn replicate_for_matvec<V: Copy + Default>(x: &[V], row_size: usize) -> Vec<V> {
    let n = x.len();
    assert!(2 * n <= row_size, "vector too long to replicate in one row");
    let mut slots = vec![V::default(); row_size];
    slots[..n].copy_from_slice(x);
    slots[n..2 * n].copy_from_slice(x);
    slots
}

/// Halevi–Shoup diagonal matrix-vector product: `y = M·x` with
/// `y_i = Σ_d M[i][(i+d) mod n] · x[(i+d) mod n]`, generic over the scheme
/// (`u64` entries under BFV, `f64` under CKKS, where the result comes back
/// one level down after the kernel's single rescale).
///
/// `ct_x` must hold `x` packed by [`replicate_for_matvec`]. The result holds
/// `y` in slots `[0, rows)`. Needs Galois keys for every step `1..cols`.
/// One hoisted decomposition serves every diagonal's rotation, so the whole
/// matvec pays a single key-switch rounding.
///
/// # Errors
///
/// Propagates rotation and encoding errors; an empty or ragged matrix, or
/// `rows > cols`, is reported as [`HeError::Mismatch`].
pub fn matvec_diagonals<S: HeScheme>(
    server: &Server<S>,
    ct_x: &S::Ciphertext,
    matrix: &[Vec<S::Value>],
) -> Result<S::Ciphertext, HeError> {
    let rows = matrix.len();
    if rows == 0 {
        return Err(HeError::Mismatch("matrix must be nonempty".into()));
    }
    let cols = matrix[0].len();
    if matrix.iter().any(|r| r.len() != cols) {
        return Err(HeError::Mismatch("ragged matrix".into()));
    }
    if rows > cols {
        return Err(HeError::Mismatch(
            "diagonal method requires rows <= cols".into(),
        ));
    }
    let width = server.slot_width();
    let diagonals: Vec<(i64, Vec<S::Value>)> = (0..cols)
        .map(|d| {
            let mut diag = vec![S::Value::default(); width];
            for (i, s) in diag.iter_mut().enumerate().take(rows) {
                *s = matrix[i][(i + d) % cols];
            }
            (d as i64, diag)
        })
        .collect();
    server.dot_diagonals(ct_x, &diagonals)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::Client;
    use crate::rotation::RedundantLayout;
    use choco_he::params::HeParams;
    use choco_he::Ckks;

    fn setup(steps: &[i64]) -> (Client<Bfv>, Server<Bfv>) {
        let params = HeParams::bfv_insecure(1024, &[40, 40, 41], 17).unwrap();
        let mut client = Client::<Bfv>::new(&params, b"linalg").unwrap();
        let server = client.provision_server(steps).unwrap();
        (client, server)
    }

    #[test]
    fn stacked_conv_matches_plain_reference() {
        // 1D conv, 2 channels of 8 samples, 3-tap filter [1, 2, 3] per
        // channel with channel weights (ch0: w, ch1: 2w).
        let layout = StackedLayout::new(2, RedundantLayout::new(8, 2));
        let (mut client, server) = setup(&[1, -1, (layout.stride()) as i64]);
        let ch0: Vec<u64> = (1..=8).collect();
        let ch1: Vec<u64> = (11..=18).collect();
        let slots = layout.pack(&[ch0.clone(), ch1.clone()]);
        let ct = client.encrypt_slots(&slots).unwrap();
        let taps = vec![
            ConvTap {
                shift: -1,
                channel_weights: vec![1, 2],
            },
            ConvTap {
                shift: 0,
                channel_weights: vec![2, 4],
            },
            ConvTap {
                shift: 1,
                channel_weights: vec![3, 6],
            },
        ];
        let out = stacked_conv(&server, &ct, &layout, &taps).unwrap();
        let got = layout.extract(&client.decrypt_slots(&out).unwrap());
        // Reference: per-channel circular conv with taps at -1/0/+1.
        let reference = |v: &[u64], w: &[u64; 3]| -> Vec<u64> {
            (0..8)
                .map(|j| w[0] * v[(j + 7) % 8] + w[1] * v[j] + w[2] * v[(j + 1) % 8])
                .collect::<Vec<u64>>()
        };
        assert_eq!(got[0], reference(&ch0, &[1, 2, 3]));
        assert_eq!(got[1], reference(&ch1, &[2, 4, 6]));
    }

    #[test]
    fn channel_accumulation_sums_into_block_zero() {
        let layout = StackedLayout::new(4, RedundantLayout::new(4, 0));
        let stride = layout.stride() as i64;
        let (mut client, server) = setup(&[stride, 2 * stride]);
        let channels: Vec<Vec<u64>> = (0..4).map(|c| vec![(c + 1) as u64; 4]).collect();
        let ct = client.encrypt_slots(&layout.pack(&channels)).unwrap();
        let summed = accumulate_channels(&server, &ct, &layout).unwrap();
        let got = layout.extract(&client.decrypt_slots(&summed).unwrap());
        assert_eq!(got[0], vec![10, 10, 10, 10]); // 1+2+3+4
    }

    #[test]
    fn matvec_matches_plain_product() {
        let steps: Vec<i64> = (1..6).collect();
        let (mut client, server) = setup(&steps);
        let matrix: Vec<Vec<u64>> = vec![
            vec![1, 2, 3, 4, 5, 6],
            vec![7, 8, 9, 1, 2, 3],
            vec![4, 5, 6, 7, 8, 9],
        ];
        let x = vec![2u64, 3, 5, 7, 11, 13];
        let slots = replicate_for_matvec(&x, 512);
        let ct = client.encrypt_slots(&slots).unwrap();
        let y = matvec_diagonals(&server, &ct, &matrix).unwrap();
        let got = client.decrypt_slots(&y).unwrap();
        for (i, row) in matrix.iter().enumerate() {
            let want: u64 = row.iter().zip(&x).map(|(m, v)| m * v).sum();
            assert_eq!(got[i], want, "row {i}");
        }
    }

    #[test]
    fn conv_consumes_single_multiply_of_noise() {
        // The whole conv (3 taps) should cost roughly ONE plaintext multiply
        // of budget, not three — terms are multiplied independently then
        // added.
        let layout = StackedLayout::new(2, RedundantLayout::new(8, 2));
        let (mut client, server) = setup(&[1, -1]);
        let slots = layout.pack(&[vec![1; 8], vec![2; 8]]);
        let ct = client.encrypt_slots(&slots).unwrap();
        let fresh = client.noise_budget(&ct);
        let taps = vec![
            ConvTap {
                shift: -1,
                channel_weights: vec![3, 1],
            },
            ConvTap {
                shift: 0,
                channel_weights: vec![2, 2],
            },
            ConvTap {
                shift: 1,
                channel_weights: vec![1, 3],
            },
        ];
        let out = stacked_conv(&server, &ct, &layout, &taps).unwrap();
        let after = client.noise_budget(&out);
        let cost = fresh - after;
        // One multiply at t≈17 bits costs ≲ t_bits + 7 + slack.
        assert!(cost < 40.0, "conv cost {cost} bits");
    }

    #[test]
    fn ckks_matvec_matches_plain_product() {
        let params = HeParams::ckks_insecure(1024, &[45, 45, 45, 46], 38).unwrap();
        let mut client = Client::<Ckks>::new(&params, b"ckks mv").unwrap();
        let steps: Vec<i64> = (1..4).collect();
        let server = client.provision_server(&steps).unwrap();
        let matrix = vec![
            vec![0.5, -1.0, 2.0, 0.25],
            vec![1.0, 1.0, -0.5, 0.0],
            vec![0.0, 2.0, 1.0, -1.0],
        ];
        let x = vec![1.0, 2.0, -1.0, 0.5];
        let mut slots = vec![0.0; 512];
        slots[..4].copy_from_slice(&x);
        slots[4..8].copy_from_slice(&x);
        let ct = client.encrypt_values(&slots).unwrap();
        let y = matvec_diagonals(&server, &ct, &matrix).unwrap();
        let out = client.decrypt_values(&y).unwrap();
        for (i, row) in matrix.iter().enumerate() {
            let want: f64 = row.iter().zip(&x).map(|(m, v)| m * v).sum();
            assert!(
                (out[i] - want).abs() < 1e-2,
                "row {i}: {} vs {want}",
                out[i]
            );
        }
    }

    #[test]
    fn matvec_rejects_tall_matrices() {
        let (_, server) = setup(&[1]);
        let matrix = vec![vec![1u64], vec![2], vec![3]];
        let ct_dummy = {
            let params = HeParams::bfv_insecure(1024, &[40, 40, 41], 17).unwrap();
            let mut c = Client::<Bfv>::new(&params, b"x").unwrap();
            c.encrypt_slots(&[1]).unwrap()
        };
        let err = matvec_diagonals(&server, &ct_dummy, &matrix).unwrap_err();
        assert!(matches!(err, HeError::Mismatch(ref m) if m.contains("rows <= cols")));
    }
}
