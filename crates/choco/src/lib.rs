//! CHOCO: Client-aided HE for Opaque Compute Offloading.
//!
//! This crate is the paper's primary contribution: a *client-optimized*
//! system for encrypted compute offloading. A resource-constrained client
//! encrypts sensitive data; an untrusted server applies encrypted linear
//! algebra; the client decrypts intermediate results, applies plaintext
//! non-linear operations, repacks, and re-encrypts. CHOCO minimizes the
//! client's costs — ciphertext size, communication, and enc/decryption work —
//! through three mechanisms:
//!
//! * **Rotational redundancy** ([`rotation`]): a packing that appends
//!   wrap-around values on both sides of a window so that a *windowed*
//!   rotation costs one cheap ciphertext rotation instead of two masking
//!   multiplies + two rotations + an add. Masking multiplies burn tens of
//!   bits of noise budget (Table 4), forcing larger HE parameters; avoiding
//!   them enables the small parameter sets of Table 3.
//! * **Channel stacking** ([`stacking`]): redundant per-channel windows are
//!   stacked at power-of-two strides in one ciphertext, so convolutions
//!   align with plain rotations only and channel accumulation is a
//!   logarithmic rotate-add tree ([`linalg`]).
//! * **Client-driven parameter minimization** ([`params`]): choose the
//!   smallest `(N, k, t)` that meets 128-bit security and the workload's
//!   noise demand, shrinking every ciphertext the client must touch.
//!
//! The [`protocol`] module provides the client/server roles and the
//! communication ledger used by every experiment that reports
//! communication (Figures 10, 11, 13, 14).
//!
//! # Example
//!
//! ```
//! use choco::rotation::RedundantLayout;
//!
//! // Pack a window of 4 values with enough redundancy to rotate by ±2.
//! let layout = RedundantLayout::new(4, 2);
//! let packed = layout.pack(&[1, 2, 3, 4]);
//! assert_eq!(packed, vec![3, 4, 1, 2, 3, 4, 1, 2]);
//! // After any cyclic shift by up to 2, the window still holds a clean
//! // windowed rotation of the original values.
//! ```

#![forbid(unsafe_code)]
// Panics hide protocol bugs: outside tests, prefer typed errors (PR 1's
// robustness audit). New `unwrap`/`expect` calls in library code must either
// be converted to `Result` or carry a `# Panics` contract at the public API.
#![cfg_attr(not(test), warn(clippy::unwrap_used))]
pub mod compiler;
pub mod linalg;
pub mod params;
pub mod protocol;
pub mod remote;
pub mod rotation;
pub mod stacking;
pub mod transport;

pub use protocol::{Client, CommLedger, LedgerBook, Server};
pub use rotation::RedundantLayout;
pub use stacking::StackedLayout;
pub use transport::Session;
