//! An EVA-style compiler for encrypted vector arithmetic (CKKS).
//!
//! The paper selects CKKS parameters "via optimal operation scheduling
//! using the state-of-the-art EVA HE compiler" (§3.2). This module
//! reproduces the relevant part of EVA (Dathathri et al., PLDI 2020): a
//! small expression IR over encrypted vectors, with compiler passes that
//!
//! 1. track fixed-point **scales** through the graph and insert `Rescale`
//!    operations using EVA's *waterline* rule (rescale as soon as the scale
//!    would exceed `waterline · 2^prime_bits`),
//! 2. track **levels** and insert `ModSwitch` operations so binary-op
//!    operands meet at the same level,
//! 3. validate the program against a parameter set (enough rescale primes,
//!    compatible slot counts) and report the required chain length, and
//! 4. count operations by kind — the cost model parameter selection
//!    consumes.
//!
//! A reference executor runs compiled programs both on plaintext vectors
//! and on real ciphertexts of any [`CompilerScheme`] (CKKS with the full
//! rescaling chain; BFV with identity chain maintenance and fixed-point
//! constants), so every pass is validated by an exactness test against the
//! plain semantics. The encrypted executor's constant encodings are
//! cacheable across calls via [`ExecCache`] — the hook the remote
//! evaluation server uses to do zero re-encoding on warm traffic.

use choco_he::cache::{CacheCounters, OperandCache};
use choco_he::ckks::{CkksCiphertext, CkksContext};
use choco_he::{Bfv, Ckks, HeError, HeScheme};
use choco_verify::{Circuit, CircuitOp, NodeClaim, VerifyError, VerifyOptions, VerifyReport};
use std::collections::HashMap;
use std::sync::Mutex;

/// The extra capability the compiled-program executor needs beyond
/// [`HeScheme`]: explicit scale management and cacheable encoded operands.
/// The compiler inserts `Rescale` and `ModSwitch` nodes itself, so the
/// executor needs *raw* plaintext multiplication (no implicit rescale,
/// unlike [`HeScheme::mul_plain`]), ciphertext multiplication with
/// relinearization, and the two chain maintenance ops. Constant encoding is
/// split into an explicit [`CompilerScheme::Operand`] step so a server can
/// cache the encoded form across requests (see [`ExecCache`]).
///
/// Implemented for [`Ckks`] (the full rescaling chain) and for [`Bfv`],
/// where the chain maintenance ops are identities: BFV has no rescaling
/// chain, so a compiled schedule's `Rescale`/`ModSwitch` nodes are no-ops
/// and constants are fixed-point quantized once at the compiler waterline
/// via [`HeScheme::quantize`].
pub trait CompilerScheme: HeScheme {
    /// A constant vector encoded into the scheme's evaluation domain at a
    /// specific use site — the unit the server-side operand cache stores.
    type Operand: Clone + Send + Sync + std::fmt::Debug;

    /// Ciphertext × ciphertext with relinearization.
    ///
    /// # Errors
    ///
    /// Propagates operand mismatches and exhausted chains.
    fn mul_ct(
        ctx: &Self::Context,
        a: &Self::Ciphertext,
        b: &Self::Ciphertext,
        relin: &Self::RelinKey,
    ) -> Result<Self::Ciphertext, HeError>;

    /// Quantizes an `f64` constant vector into scheme plaintext values at
    /// the compiler's waterline scale (identity for CKKS, fixed-point
    /// `round(v · 2^scale_bits) mod t` for BFV).
    fn quantize_const(ctx: &Self::Context, values: &[f64], scale_bits: u32) -> Vec<Self::Value>;

    /// Encodes a quantized constant for *multiplication* against `ct`
    /// (raw — no implicit rescale; the compiler schedules rescales).
    ///
    /// # Errors
    ///
    /// Propagates encoding failures.
    fn encode_for_mul(
        ctx: &Self::Context,
        values: &[Self::Value],
        ct: &Self::Ciphertext,
    ) -> Result<Self::Operand, HeError>;

    /// Encodes a quantized constant for *addition* against `ct` (the
    /// operand must match the ciphertext's exact scale).
    ///
    /// # Errors
    ///
    /// Propagates encoding failures.
    fn encode_for_add(
        ctx: &Self::Context,
        values: &[Self::Value],
        ct: &Self::Ciphertext,
    ) -> Result<Self::Operand, HeError>;

    /// Ciphertext × encoded operand, without rescaling.
    ///
    /// # Errors
    ///
    /// Propagates operand mismatches.
    fn mul_operand(
        ctx: &Self::Context,
        ct: &Self::Ciphertext,
        op: &Self::Operand,
    ) -> Result<Self::Ciphertext, HeError>;

    /// Ciphertext + encoded operand.
    ///
    /// # Errors
    ///
    /// Propagates operand mismatches.
    fn add_operand(
        ctx: &Self::Context,
        ct: &Self::Ciphertext,
        op: &Self::Operand,
    ) -> Result<Self::Ciphertext, HeError>;

    /// Cache discriminator of an encode site against `ct`: everything the
    /// encoded operand depends on besides the constant itself. CKKS
    /// operands depend on the ciphertext's level (and, for additions, its
    /// exact scale); BFV encoding is site-independent, so the key is
    /// constant.
    fn operand_site(ct: &Self::Ciphertext, for_mul: bool) -> (u32, u64);

    /// Divides by the level's last prime (one chain level). Identity for
    /// BFV.
    ///
    /// # Errors
    ///
    /// Propagates exhausted chains.
    fn rescale(ctx: &Self::Context, ct: &Self::Ciphertext) -> Result<Self::Ciphertext, HeError>;

    /// Drops one level without rescaling. Identity for BFV.
    ///
    /// # Errors
    ///
    /// Propagates exhausted chains.
    fn mod_switch_down(
        ctx: &Self::Context,
        ct: &Self::Ciphertext,
    ) -> Result<Self::Ciphertext, HeError>;
}

impl CompilerScheme for Ckks {
    type Operand = choco_he::ckks::CkksPlaintext;

    fn mul_ct(
        ctx: &CkksContext,
        a: &CkksCiphertext,
        b: &CkksCiphertext,
        relin: &choco_he::ckks::CkksRelinKey,
    ) -> Result<CkksCiphertext, HeError> {
        ctx.multiply_relin(a, b, relin)
    }

    fn quantize_const(_ctx: &CkksContext, values: &[f64], _scale_bits: u32) -> Vec<f64> {
        values.to_vec()
    }

    fn encode_for_mul(
        ctx: &CkksContext,
        values: &[f64],
        ct: &CkksCiphertext,
    ) -> Result<Self::Operand, HeError> {
        ctx.encode_at(values, ct.level(), ctx.default_scale())
    }

    fn encode_for_add(
        ctx: &CkksContext,
        values: &[f64],
        ct: &CkksCiphertext,
    ) -> Result<Self::Operand, HeError> {
        ctx.encode_at(values, ct.level(), ct.scale())
    }

    fn mul_operand(
        ctx: &CkksContext,
        ct: &CkksCiphertext,
        op: &Self::Operand,
    ) -> Result<CkksCiphertext, HeError> {
        ctx.multiply_plain(ct, op)
    }

    fn add_operand(
        ctx: &CkksContext,
        ct: &CkksCiphertext,
        op: &Self::Operand,
    ) -> Result<CkksCiphertext, HeError> {
        ctx.add_plain(ct, op)
    }

    fn operand_site(ct: &CkksCiphertext, for_mul: bool) -> (u32, u64) {
        // Multiplication operands are encoded at the context's default
        // scale, so only the level discriminates; addition operands must
        // match the ciphertext's exact scale bit pattern.
        let scale = if for_mul { 0 } else { ct.scale().to_bits() };
        (ct.level() as u32, scale)
    }

    fn rescale(ctx: &CkksContext, ct: &CkksCiphertext) -> Result<CkksCiphertext, HeError> {
        ctx.rescale(ct)
    }

    fn mod_switch_down(ctx: &CkksContext, ct: &CkksCiphertext) -> Result<CkksCiphertext, HeError> {
        ctx.mod_switch_to(ct, ct.level() - 1)
    }
}

impl CompilerScheme for Bfv {
    type Operand = choco_he::bfv::Plaintext;

    fn mul_ct(
        ctx: &choco_he::bfv::BfvContext,
        a: &choco_he::bfv::Ciphertext,
        b: &choco_he::bfv::Ciphertext,
        relin: &choco_he::bfv::RelinKey,
    ) -> Result<choco_he::bfv::Ciphertext, HeError> {
        ctx.evaluator().multiply_relin(a, b, relin)
    }

    fn quantize_const(
        ctx: &choco_he::bfv::BfvContext,
        values: &[f64],
        scale_bits: u32,
    ) -> Vec<u64> {
        <Bfv as HeScheme>::quantize(ctx, values, scale_bits, 1)
    }

    fn encode_for_mul(
        ctx: &choco_he::bfv::BfvContext,
        values: &[u64],
        _ct: &choco_he::bfv::Ciphertext,
    ) -> Result<Self::Operand, HeError> {
        ctx.batch_encoder()?.encode(values)
    }

    fn encode_for_add(
        ctx: &choco_he::bfv::BfvContext,
        values: &[u64],
        _ct: &choco_he::bfv::Ciphertext,
    ) -> Result<Self::Operand, HeError> {
        ctx.batch_encoder()?.encode(values)
    }

    fn mul_operand(
        ctx: &choco_he::bfv::BfvContext,
        ct: &choco_he::bfv::Ciphertext,
        op: &Self::Operand,
    ) -> Result<choco_he::bfv::Ciphertext, HeError> {
        Ok(ctx.evaluator().multiply_plain(ct, op))
    }

    fn add_operand(
        ctx: &choco_he::bfv::BfvContext,
        ct: &choco_he::bfv::Ciphertext,
        op: &Self::Operand,
    ) -> Result<choco_he::bfv::Ciphertext, HeError> {
        Ok(ctx.evaluator().add_plain(ct, op))
    }

    fn operand_site(_ct: &choco_he::bfv::Ciphertext, _for_mul: bool) -> (u32, u64) {
        // BFV batch encoding depends only on the parameter set, never on
        // the ciphertext's position in a (nonexistent) chain.
        (0, 0)
    }

    fn rescale(
        _ctx: &choco_he::bfv::BfvContext,
        ct: &choco_he::bfv::Ciphertext,
    ) -> Result<choco_he::bfv::Ciphertext, HeError> {
        // BFV carries no rescaling chain: the schedule's `Rescale` nodes
        // are scale bookkeeping only and the ciphertext passes through.
        Ok(ct.clone())
    }

    fn mod_switch_down(
        _ctx: &choco_he::bfv::BfvContext,
        ct: &choco_he::bfv::Ciphertext,
    ) -> Result<choco_he::bfv::Ciphertext, HeError> {
        Ok(ct.clone())
    }
}

/// A node handle inside a [`Program`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct NodeId(usize);

impl NodeId {
    /// Builds a handle from a raw index. Intended for verifier tooling and
    /// mutation tests; an out-of-range or forward-referencing id is rejected
    /// by [`compile`] ([`CompileError::MalformedProgram`]) and by the static
    /// verifier (`STRUCT001`), never executed.
    pub fn new(index: usize) -> NodeId {
        NodeId(index)
    }

    /// The raw node index.
    pub fn index(self) -> usize {
        self.0
    }
}

/// Operation kinds of the IR.
#[derive(Debug, Clone, PartialEq)]
pub enum Op {
    /// An encrypted input, by name.
    Input(String),
    /// A plaintext constant vector (server-known, e.g. weights).
    Constant(Vec<f64>),
    /// Ciphertext + ciphertext.
    Add(NodeId, NodeId),
    /// Ciphertext − ciphertext.
    Sub(NodeId, NodeId),
    /// Ciphertext × ciphertext (with relinearization).
    Mul(NodeId, NodeId),
    /// Ciphertext × plaintext constant.
    MulPlain(NodeId, NodeId),
    /// Ciphertext + plaintext constant.
    AddPlain(NodeId, NodeId),
    /// Slot rotation (left by the given amount).
    Rotate(NodeId, i64),
    /// Divide by the level's last prime (inserted by the compiler).
    Rescale(NodeId),
    /// Drop to a lower level without rescaling (inserted by the compiler).
    ModSwitch(NodeId),
}

/// An un-compiled dataflow program over encrypted vectors.
#[derive(Debug, Clone, Default)]
pub struct Program {
    ops: Vec<Op>,
    outputs: Vec<NodeId>,
}

impl Program {
    /// An empty program.
    pub fn new() -> Self {
        Self::default()
    }

    fn push(&mut self, op: Op) -> NodeId {
        self.ops.push(op);
        NodeId(self.ops.len() - 1)
    }

    /// Declares an encrypted input.
    pub fn input(&mut self, name: &str) -> NodeId {
        self.push(Op::Input(name.to_string()))
    }

    /// Declares a plaintext constant vector.
    pub fn constant(&mut self, values: &[f64]) -> NodeId {
        self.push(Op::Constant(values.to_vec()))
    }

    /// `a + b` (both encrypted).
    pub fn add(&mut self, a: NodeId, b: NodeId) -> NodeId {
        self.push(Op::Add(a, b))
    }

    /// `a − b` (both encrypted).
    pub fn sub(&mut self, a: NodeId, b: NodeId) -> NodeId {
        self.push(Op::Sub(a, b))
    }

    /// `a × b` (both encrypted).
    pub fn mul(&mut self, a: NodeId, b: NodeId) -> NodeId {
        self.push(Op::Mul(a, b))
    }

    /// `a × c` for a constant `c`.
    pub fn mul_plain(&mut self, a: NodeId, c: NodeId) -> NodeId {
        self.push(Op::MulPlain(a, c))
    }

    /// `a + c` for a constant `c`.
    pub fn add_plain(&mut self, a: NodeId, c: NodeId) -> NodeId {
        self.push(Op::AddPlain(a, c))
    }

    /// Rotates slots left by `steps`.
    pub fn rotate(&mut self, a: NodeId, steps: i64) -> NodeId {
        self.push(Op::Rotate(a, steps))
    }

    /// Marks a node as a program output.
    pub fn output(&mut self, n: NodeId) {
        self.outputs.push(n);
    }

    /// Number of IR nodes.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// True when the program has no nodes.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// The op list, in construction order (node `i` is `ops()[i]`). Read
    /// access for serializers; rebuild a program through the builder API.
    pub fn ops(&self) -> &[Op] {
        &self.ops
    }

    /// The declared output nodes, in declaration order.
    pub fn output_ids(&self) -> &[NodeId] {
        &self.outputs
    }

    /// Lowers the *source* program into the verifier's circuit form
    /// (no claims: the schedule does not exist yet, so the verifier replays
    /// the compiler's waterline scheduling abstractly).
    pub fn to_circuit(&self) -> Circuit {
        Circuit {
            ops: lower_ops(&self.ops),
            outputs: self.outputs.iter().map(|o| o.0).collect(),
            claims: None,
        }
    }
}

/// Per-node metadata the compiler assigns.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NodeMeta {
    /// log2 of the fixed-point scale carried by the node's value.
    pub scale_bits: f64,
    /// Level (number of active data primes) the node's value lives at.
    pub level: usize,
}

/// Operation counts of a compiled program (the cost model output).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OpCounts {
    /// Ciphertext multiplications (relinearized).
    pub ct_mults: u32,
    /// Plaintext multiplications.
    pub pt_mults: u32,
    /// Additions/subtractions (ct and pt).
    pub adds: u32,
    /// Rotations.
    pub rotations: u32,
    /// Rescales inserted.
    pub rescales: u32,
    /// Mod-switches inserted.
    pub mod_switches: u32,
}

/// A program after scale/level assignment.
///
/// Every value [`compile`] returns has already passed the static verifier
/// (`choco-verify`), so holding a `CompiledProgram` built through the normal
/// API is proof the circuit satisfies the level/scale/structure invariants.
/// The only unverified constructor is [`CompiledProgram::from_raw_parts`].
#[derive(Debug, Clone)]
pub struct CompiledProgram {
    ops: Vec<Op>,
    outputs: Vec<NodeId>,
    meta: Vec<NodeMeta>,
    /// Rotation steps the program needs Galois keys for.
    pub rotation_steps: Vec<i64>,
    /// Minimum data-prime chain length the program requires.
    pub required_levels: usize,
    /// Operation counts.
    pub counts: OpCounts,
    /// The compiler configuration this program was scheduled against.
    pub options: CompilerOptions,
}

/// The raw fields of a [`CompiledProgram`], exposed so verifier tooling and
/// mutation tests can corrupt a program in controlled ways and pin the
/// verifier's rejection. [`CompiledProgram::from_raw_parts`] performs no
/// validation — anything rebuilt this way must go back through
/// [`CompiledProgram::verify`] before it is trusted.
#[derive(Debug, Clone)]
pub struct RawProgramParts {
    /// Compiled op list (including inserted `Rescale`/`ModSwitch` nodes).
    pub ops: Vec<Op>,
    /// Output nodes.
    pub outputs: Vec<NodeId>,
    /// Per-node scale/level metadata.
    pub meta: Vec<NodeMeta>,
    /// Rotation steps the program needs Galois keys for.
    pub rotation_steps: Vec<i64>,
    /// Minimum data-prime chain length the program requires.
    pub required_levels: usize,
    /// Operation counts.
    pub counts: OpCounts,
    /// The compiler configuration the program was scheduled against.
    pub options: CompilerOptions,
}

/// Compiler configuration.
///
/// For *encrypted* execution, use EVA's standard waterline setup: a uniform
/// rescale-prime chain with `prime_bits == scale_bits`, so every rescale
/// returns scales to the waterline and branches of different multiplicative
/// depth remain addable after level alignment. (The plaintext executor is
/// exact regardless.)
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CompilerOptions {
    /// Input/encoding scale in bits (EVA's "waterline").
    pub scale_bits: u32,
    /// Bits of each rescaling prime.
    pub prime_bits: u32,
    /// Levels available in the target parameter set.
    pub max_levels: usize,
}

/// Errors from compilation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CompileError {
    /// The program needs more rescale levels than the chain provides.
    DepthExceeded {
        /// Levels required.
        needed: usize,
        /// Levels available.
        available: usize,
    },
    /// A constant was used where a ciphertext is required (or vice versa).
    KindMismatch(usize),
    /// The program has no outputs.
    NoOutputs,
    /// Execution was given no value for a named input.
    MissingInput(String),
    /// A node references a later or missing node (possible only through
    /// hand-built [`NodeId`]s; the builder API cannot produce this).
    MalformedProgram(usize),
    /// The compiled output failed static verification — a compiler bug
    /// surfaced as a typed error instead of a wrong decrypt.
    Verify(VerifyError),
}

impl std::fmt::Display for CompileError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CompileError::DepthExceeded { needed, available } => write!(
                f,
                "program needs {needed} levels but the chain provides {available}"
            ),
            CompileError::KindMismatch(n) => write!(f, "node {n}: ciphertext/plaintext mismatch"),
            CompileError::NoOutputs => write!(f, "program has no outputs"),
            CompileError::MissingInput(name) => write!(f, "missing input {name}"),
            CompileError::MalformedProgram(n) => {
                write!(f, "node {n}: operand references a later or missing node")
            }
            CompileError::Verify(e) => write!(f, "compiled program failed verification: {e}"),
        }
    }
}

impl std::error::Error for CompileError {}

fn is_plain(ops: &[Op], id: NodeId) -> bool {
    matches!(ops.get(id.0), Some(Op::Constant(_)))
}

/// Lowers an op list into the verifier's scheme-agnostic mirror.
fn lower_ops(ops: &[Op]) -> Vec<CircuitOp> {
    ops.iter()
        .map(|op| match op {
            Op::Input(name) => CircuitOp::Input(name.clone()),
            Op::Constant(v) => CircuitOp::Constant { len: v.len() },
            Op::Add(a, b) => CircuitOp::Add(a.0, b.0),
            Op::Sub(a, b) => CircuitOp::Sub(a.0, b.0),
            Op::Mul(a, b) => CircuitOp::Mul(a.0, b.0),
            Op::MulPlain(a, c) => CircuitOp::MulPlain(a.0, c.0),
            Op::AddPlain(a, c) => CircuitOp::AddPlain(a.0, c.0),
            Op::Rotate(a, s) => CircuitOp::Rotate(a.0, *s),
            Op::Rescale(a) => CircuitOp::Rescale(a.0),
            Op::ModSwitch(a) => CircuitOp::ModSwitch(a.0),
        })
        .collect()
}

/// Compiles a program: assigns scales and levels, inserting `Rescale` after
/// any multiply whose result scale crosses the waterline and `ModSwitch`
/// where binary operands' levels differ.
///
/// The compiled output is **verified by construction**: before returning,
/// the schedule is lowered into `choco-verify`'s circuit form and checked
/// against the full static rule set, so any scheduling bug surfaces here as
/// [`CompileError::Verify`] instead of a wrong decrypt on the server.
///
/// # Errors
///
/// Returns [`CompileError`] on depth overflow or malformed programs.
pub fn compile(program: &Program, opts: &CompilerOptions) -> Result<CompiledProgram, CompileError> {
    if program.outputs.is_empty() {
        return Err(CompileError::NoOutputs);
    }
    let waterline = opts.scale_bits as f64;
    // The compiled op list, rebuilt with inserted nodes; `remap[i]` is the
    // compiled node carrying source node i's value.
    let mut ops: Vec<Op> = Vec::with_capacity(program.ops.len() * 2);
    let mut meta: Vec<NodeMeta> = Vec::new();
    let mut remap: Vec<NodeId> = Vec::with_capacity(program.ops.len());
    let mut counts = OpCounts::default();
    let mut rotation_steps = Vec::new();
    // Track the deepest level used (levels count down from max_levels).
    let mut min_level = opts.max_levels;

    let push = |ops: &mut Vec<Op>, meta: &mut Vec<NodeMeta>, op: Op, m: NodeMeta| -> NodeId {
        ops.push(op);
        meta.push(m);
        NodeId(ops.len() - 1)
    };

    // Rescale a node until its scale sits at the waterline.
    let rescale_to_waterline = |ops: &mut Vec<Op>,
                                meta: &mut Vec<NodeMeta>,
                                counts: &mut OpCounts,
                                min_level: &mut usize,
                                mut id: NodeId|
     -> NodeId {
        while meta[id.0].scale_bits > waterline + opts.prime_bits as f64 / 2.0 {
            let m = meta[id.0];
            if m.level == 0 {
                // The chain is already exhausted; stop inserting rescales
                // and pin the floor so the final depth check returns a
                // typed `DepthExceeded` (instead of underflowing here on
                // adversarially deep programs).
                *min_level = 0;
                break;
            }
            let nm = NodeMeta {
                scale_bits: m.scale_bits - opts.prime_bits as f64,
                level: m.level - 1,
            };
            ops.push(Op::Rescale(id));
            meta.push(nm);
            id = NodeId(ops.len() - 1);
            counts.rescales += 1;
            *min_level = (*min_level).min(nm.level);
        }
        id
    };

    // Bring a node down to `level` with mod-switches.
    let switch_to = |ops: &mut Vec<Op>,
                     meta: &mut Vec<NodeMeta>,
                     counts: &mut OpCounts,
                     mut id: NodeId,
                     level: usize|
     -> NodeId {
        while meta[id.0].level > level {
            let m = meta[id.0];
            ops.push(Op::ModSwitch(id));
            meta.push(NodeMeta {
                scale_bits: m.scale_bits,
                level: m.level - 1,
            });
            id = NodeId(ops.len() - 1);
            counts.mod_switches += 1;
        }
        id
    };

    for (i, op) in program.ops.iter().enumerate() {
        // Operands must reference earlier nodes; `remap` holds exactly the
        // nodes already processed, so a failed lookup is a forward or
        // out-of-range reference (hand-built `NodeId`s only).
        let mapped_of = |remap: &[NodeId], id: NodeId| -> Result<NodeId, CompileError> {
            remap
                .get(id.0)
                .copied()
                .ok_or(CompileError::MalformedProgram(i))
        };
        let mapped = match op {
            Op::Input(name) => push(
                &mut ops,
                &mut meta,
                Op::Input(name.clone()),
                NodeMeta {
                    scale_bits: waterline,
                    level: opts.max_levels,
                },
            ),
            Op::Constant(v) => push(
                &mut ops,
                &mut meta,
                Op::Constant(v.clone()),
                NodeMeta {
                    scale_bits: waterline,
                    level: opts.max_levels,
                },
            ),
            Op::Add(a, b) | Op::Sub(a, b) => {
                if is_plain(&program.ops, *a) || is_plain(&program.ops, *b) {
                    return Err(CompileError::KindMismatch(i));
                }
                let (mut ra, mut rb) = (mapped_of(&remap, *a)?, mapped_of(&remap, *b)?);
                // Align levels first, then scales must match: rescale the
                // larger-scale operand.
                ra = rescale_to_waterline(&mut ops, &mut meta, &mut counts, &mut min_level, ra);
                rb = rescale_to_waterline(&mut ops, &mut meta, &mut counts, &mut min_level, rb);
                let lvl = meta[ra.0].level.min(meta[rb.0].level);
                ra = switch_to(&mut ops, &mut meta, &mut counts, ra, lvl);
                rb = switch_to(&mut ops, &mut meta, &mut counts, rb, lvl);
                counts.adds += 1;
                let m = NodeMeta {
                    scale_bits: meta[ra.0].scale_bits.max(meta[rb.0].scale_bits),
                    level: lvl,
                };
                let new_op = if matches!(op, Op::Add(..)) {
                    Op::Add(ra, rb)
                } else {
                    Op::Sub(ra, rb)
                };
                push(&mut ops, &mut meta, new_op, m)
            }
            Op::Mul(a, b) => {
                if is_plain(&program.ops, *a) || is_plain(&program.ops, *b) {
                    return Err(CompileError::KindMismatch(i));
                }
                let (mut ra, mut rb) = (mapped_of(&remap, *a)?, mapped_of(&remap, *b)?);
                ra = rescale_to_waterline(&mut ops, &mut meta, &mut counts, &mut min_level, ra);
                rb = rescale_to_waterline(&mut ops, &mut meta, &mut counts, &mut min_level, rb);
                let lvl = meta[ra.0].level.min(meta[rb.0].level);
                ra = switch_to(&mut ops, &mut meta, &mut counts, ra, lvl);
                rb = switch_to(&mut ops, &mut meta, &mut counts, rb, lvl);
                counts.ct_mults += 1;
                let m = NodeMeta {
                    scale_bits: meta[ra.0].scale_bits + meta[rb.0].scale_bits,
                    level: lvl,
                };
                let id = push(&mut ops, &mut meta, Op::Mul(ra, rb), m);
                rescale_to_waterline(&mut ops, &mut meta, &mut counts, &mut min_level, id)
            }
            Op::MulPlain(a, c) | Op::AddPlain(a, c) => {
                if is_plain(&program.ops, *a) || !is_plain(&program.ops, *c) {
                    return Err(CompileError::KindMismatch(i));
                }
                let ra = rescale_to_waterline(
                    &mut ops,
                    &mut meta,
                    &mut counts,
                    &mut min_level,
                    mapped_of(&remap, *a)?,
                );
                let rc = mapped_of(&remap, *c)?;
                if matches!(op, Op::MulPlain(..)) {
                    counts.pt_mults += 1;
                    let m = NodeMeta {
                        scale_bits: meta[ra.0].scale_bits + waterline,
                        level: meta[ra.0].level,
                    };
                    let id = push(&mut ops, &mut meta, Op::MulPlain(ra, rc), m);
                    rescale_to_waterline(&mut ops, &mut meta, &mut counts, &mut min_level, id)
                } else {
                    counts.adds += 1;
                    let m = meta[ra.0];
                    push(&mut ops, &mut meta, Op::AddPlain(ra, rc), m)
                }
            }
            Op::Rotate(a, s) => {
                if is_plain(&program.ops, *a) {
                    return Err(CompileError::KindMismatch(i));
                }
                counts.rotations += 1;
                if *s != 0 && !rotation_steps.contains(s) {
                    rotation_steps.push(*s);
                }
                let ra = mapped_of(&remap, *a)?;
                let m = meta[ra.0];
                push(&mut ops, &mut meta, Op::Rotate(ra, *s), m)
            }
            Op::Rescale(_) | Op::ModSwitch(_) => {
                // User programs never contain these; the compiler inserts
                // them.
                return Err(CompileError::KindMismatch(i));
            }
        };
        remap.push(mapped);
        min_level = min_level.min(meta[mapped.0].level);
    }

    let required_levels = opts.max_levels - min_level + 1;
    if min_level < 1 {
        return Err(CompileError::DepthExceeded {
            needed: required_levels,
            available: opts.max_levels,
        });
    }
    rotation_steps.sort_unstable();
    let outputs = program
        .outputs
        .iter()
        .map(|o| {
            remap
                .get(o.0)
                .copied()
                .ok_or(CompileError::MalformedProgram(o.0))
        })
        .collect::<Result<Vec<_>, _>>()?;
    let compiled = CompiledProgram {
        ops,
        outputs,
        meta,
        rotation_steps,
        required_levels,
        counts,
        options: *opts,
    };
    // Verified by construction: a scheduling bug becomes a typed error here
    // instead of a wrong decrypt on the server.
    compiled.verify().map_err(CompileError::Verify)?;
    Ok(compiled)
}

impl CompiledProgram {
    /// Metadata of a node, if it exists.
    pub fn meta(&self, n: NodeId) -> NodeMeta {
        self.meta.get(n.0).copied().unwrap_or(NodeMeta {
            scale_bits: 0.0,
            level: 0,
        })
    }

    /// Lowers the compiled program into the verifier's circuit form,
    /// carrying the compiler's per-node scale/level claims so the verifier
    /// can cross-check them against its own recomputation.
    pub fn to_circuit(&self) -> Circuit {
        Circuit {
            ops: lower_ops(&self.ops),
            outputs: self.outputs.iter().map(|o| o.0).collect(),
            claims: Some(
                self.meta
                    .iter()
                    .map(|m| NodeClaim {
                        scale_bits: m.scale_bits,
                        level: m.level,
                    })
                    .collect(),
            ),
        }
    }

    /// The CKKS verification options matching this program's
    /// [`CompilerOptions`]. Galois-step and slot-count constraints are
    /// unknown at compile time; callers with a parameter set and key list
    /// should extend these via `with_galois_steps`/`with_slot_count`.
    pub fn verify_options(&self) -> VerifyOptions {
        VerifyOptions::ckks(
            self.options.scale_bits,
            self.options.prime_bits,
            self.options.max_levels,
        )
    }

    /// Statically verifies this program against its own compiler options.
    ///
    /// # Errors
    ///
    /// Returns [`VerifyError`] when any verification rule fires.
    pub fn verify(&self) -> Result<VerifyReport, VerifyError> {
        choco_verify::verify(&self.to_circuit(), &self.verify_options())
    }

    /// Decomposes the program into its raw fields (mutation-test API).
    pub fn into_raw_parts(self) -> RawProgramParts {
        RawProgramParts {
            ops: self.ops,
            outputs: self.outputs,
            meta: self.meta,
            rotation_steps: self.rotation_steps,
            required_levels: self.required_levels,
            counts: self.counts,
            options: self.options,
        }
    }

    /// Rebuilds a program from raw fields **without any validation** — the
    /// escape hatch the mutation suite uses to construct corrupted twins.
    /// Run [`CompiledProgram::verify`] before trusting the result.
    pub fn from_raw_parts(parts: RawProgramParts) -> CompiledProgram {
        CompiledProgram {
            ops: parts.ops,
            outputs: parts.outputs,
            meta: parts.meta,
            rotation_steps: parts.rotation_steps,
            required_levels: parts.required_levels,
            counts: parts.counts,
            options: parts.options,
        }
    }

    /// The compiled op list length (including inserted ops).
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// True when empty (never, for a compiled program).
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Rotation steps the program requests, derived directly from the
    /// compiled `Rotate` nodes (zero steps excluded, deduplicated, sorted).
    /// This is ground truth for Galois-key provisioning: any hand-written
    /// step list must be a superset of it, or execution hits a
    /// missing-Galois-key error at runtime.
    pub fn rotation_steps(&self) -> Vec<i64> {
        let mut steps: Vec<i64> = Vec::new();
        for op in &self.ops {
            if let Op::Rotate(_, s) = op {
                if *s != 0 && !steps.contains(s) {
                    steps.push(*s);
                }
            }
        }
        steps.sort_unstable();
        steps
    }

    /// Executes on plaintext vectors (the reference semantics).
    ///
    /// # Errors
    ///
    /// Returns [`CompileError::MissingInput`] when `inputs` lacks a named
    /// input of the program.
    pub fn execute_plain(
        &self,
        inputs: &HashMap<String, Vec<f64>>,
    ) -> Result<Vec<Vec<f64>>, CompileError> {
        // Operand lookups are in-bounds for any program built through
        // `compile` (verified by construction); a miss can only come from
        // `from_raw_parts` corruption and surfaces as a typed error.
        fn node(vals: &[Vec<f64>], id: NodeId, at: usize) -> Result<&Vec<f64>, CompileError> {
            vals.get(id.0).ok_or(CompileError::MalformedProgram(at))
        }
        let mut vals: Vec<Vec<f64>> = Vec::with_capacity(self.ops.len());
        for (i, op) in self.ops.iter().enumerate() {
            let v = match op {
                Op::Input(name) => inputs
                    .get(name)
                    .ok_or_else(|| CompileError::MissingInput(name.clone()))?
                    .clone(),
                Op::Constant(c) => c.clone(),
                Op::Add(a, b) => node(&vals, *a, i)?
                    .iter()
                    .zip(node(&vals, *b, i)?)
                    .map(|(x, y)| x + y)
                    .collect(),
                Op::Sub(a, b) => node(&vals, *a, i)?
                    .iter()
                    .zip(node(&vals, *b, i)?)
                    .map(|(x, y)| x - y)
                    .collect(),
                Op::Mul(a, b) => node(&vals, *a, i)?
                    .iter()
                    .zip(node(&vals, *b, i)?)
                    .map(|(x, y)| x * y)
                    .collect(),
                Op::MulPlain(a, c) => node(&vals, *a, i)?
                    .iter()
                    .zip(node(&vals, *c, i)?)
                    .map(|(x, y)| x * y)
                    .collect(),
                Op::AddPlain(a, c) => node(&vals, *a, i)?
                    .iter()
                    .zip(node(&vals, *c, i)?)
                    .map(|(x, y)| x + y)
                    .collect(),
                Op::Rotate(a, s) => {
                    let v = node(&vals, *a, i)?;
                    let n = v.len() as i64;
                    (0..n)
                        .map(|j| {
                            v.get(((j + s).rem_euclid(n.max(1))) as usize)
                                .copied()
                                .unwrap_or(0.0)
                        })
                        .collect()
                }
                Op::Rescale(a) | Op::ModSwitch(a) => node(&vals, *a, i)?.clone(),
            };
            vals.push(v);
        }
        self.outputs
            .iter()
            .map(|o| node(&vals, *o, o.0).cloned())
            .collect()
    }

    /// Executes on real ciphertexts of any [`CompilerScheme`].
    ///
    /// Inputs must be encrypted at the top level with the compiler's
    /// waterline scale. Constants are encoded on demand at each use site's
    /// level and scale. Associated types are not injective, so callers
    /// usually name the scheme: `prog.execute_encrypted::<Ckks>(…)`.
    ///
    /// # Errors
    ///
    /// Propagates HE errors; a missing or mis-typed operand surfaces as
    /// [`HeError::Mismatch`] instead of aborting the evaluation.
    pub fn execute_encrypted<S: CompilerScheme>(
        &self,
        ctx: &S::Context,
        inputs: &HashMap<String, S::Ciphertext>,
        relin: &S::RelinKey,
        galois: &S::GaloisKeys,
    ) -> Result<Vec<S::Ciphertext>, HeError> {
        // A fresh per-call cache: within one execution the working set is
        // bounded by the program's constant count, so unbounded is safe.
        let cache = ExecCache::<S>::unbounded();
        self.execute_encrypted_cached::<S>(ctx, inputs, relin, galois, &cache)
    }

    /// [`CompiledProgram::execute_encrypted`] with a caller-owned operand
    /// cache, so encoded constants survive across calls (and across
    /// threads: the cache is internally locked, letting a batch of
    /// requests against the same program share one set of encodings).
    ///
    /// Caching is bit-transparent: a cached operand is byte-identical to
    /// the one a fresh encode would produce, so results are identical to
    /// [`CompiledProgram::execute_encrypted`] whatever the cache state.
    ///
    /// # Errors
    ///
    /// Propagates HE errors; a missing or mis-typed operand surfaces as
    /// [`HeError::Mismatch`] instead of aborting the evaluation.
    pub fn execute_encrypted_cached<S: CompilerScheme>(
        &self,
        ctx: &S::Context,
        inputs: &HashMap<String, S::Ciphertext>,
        relin: &S::RelinKey,
        galois: &S::GaloisKeys,
        cache: &ExecCache<S>,
    ) -> Result<Vec<S::Ciphertext>, HeError> {
        // Programs built through `compile` are verified by construction;
        // re-check in debug builds to catch `from_raw_parts` corruption at
        // the door instead of as a wrong decrypt.
        debug_assert!(
            self.verify().is_ok(),
            "execute_encrypted on a program that fails static verification: {:?}",
            self.verify().err()
        );
        enum Slot<Ct, V> {
            Ct(Ct),
            Plain(Vec<V>),
        }
        let mut vals: Vec<Slot<S::Ciphertext, S::Value>> = Vec::with_capacity(self.ops.len());
        let ct = |s: Option<&Slot<S::Ciphertext, S::Value>>| -> Result<S::Ciphertext, HeError> {
            match s {
                Some(Slot::Ct(c)) => Ok(c.clone()),
                Some(Slot::Plain(_)) => Err(HeError::Mismatch(
                    "compiler invariant violated: ciphertext operand expected".into(),
                )),
                None => Err(HeError::Mismatch(
                    "compiler invariant violated: operand references a missing node".into(),
                )),
            }
        };
        let plain = |s: Option<&Slot<S::Ciphertext, S::Value>>| -> Result<Vec<S::Value>, HeError> {
            match s {
                Some(Slot::Plain(p)) => Ok(p.clone()),
                Some(Slot::Ct(_)) => Err(HeError::Mismatch(
                    "compiler invariant violated: constant operand expected".into(),
                )),
                None => Err(HeError::Mismatch(
                    "compiler invariant violated: operand references a missing node".into(),
                )),
            }
        };
        for op in &self.ops {
            let v = match op {
                Op::Input(name) => Slot::Ct(
                    inputs
                        .get(name)
                        .ok_or_else(|| HeError::Mismatch(format!("missing input {name}")))?
                        .clone(),
                ),
                Op::Constant(c) => Slot::Plain(S::quantize_const(ctx, c, self.options.scale_bits)),
                Op::Add(a, b) => Slot::Ct(S::add(ctx, &ct(vals.get(a.0))?, &ct(vals.get(b.0))?)?),
                Op::Sub(a, b) => Slot::Ct(S::sub(ctx, &ct(vals.get(a.0))?, &ct(vals.get(b.0))?)?),
                Op::Mul(a, b) => Slot::Ct(S::mul_ct(
                    ctx,
                    &ct(vals.get(a.0))?,
                    &ct(vals.get(b.0))?,
                    relin,
                )?),
                Op::MulPlain(a, c) => {
                    let x = ct(vals.get(a.0))?;
                    let p = plain(vals.get(c.0))?;
                    let operand =
                        cache.get_or_encode(c.0, true, &x, || S::encode_for_mul(ctx, &p, &x))?;
                    Slot::Ct(S::mul_operand(ctx, &x, &operand)?)
                }
                Op::AddPlain(a, c) => {
                    let x = ct(vals.get(a.0))?;
                    let p = plain(vals.get(c.0))?;
                    let operand =
                        cache.get_or_encode(c.0, false, &x, || S::encode_for_add(ctx, &p, &x))?;
                    Slot::Ct(S::add_operand(ctx, &x, &operand)?)
                }
                Op::Rotate(a, s) => {
                    let x = ct(vals.get(a.0))?;
                    if *s == 0 {
                        Slot::Ct(x)
                    } else {
                        Slot::Ct(S::rotate(ctx, &x, *s, galois)?)
                    }
                }
                Op::Rescale(a) => Slot::Ct(S::rescale(ctx, &ct(vals.get(a.0))?)?),
                Op::ModSwitch(a) => {
                    let x = ct(vals.get(a.0))?;
                    Slot::Ct(S::mod_switch_down(ctx, &x)?)
                }
            };
            vals.push(v);
        }
        self.outputs.iter().map(|o| ct(vals.get(o.0))).collect()
    }
}

/// Key of one encoded-operand cache entry: the constant's node index, the
/// use kind (multiply vs. add site), and the scheme's site discriminator
/// ([`CompilerScheme::operand_site`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
struct OperandSlot {
    node: u32,
    for_mul: bool,
    site: (u32, u64),
}

/// A thread-safe cache of encoded plaintext operands for *one* compiled
/// program (keys are program node indices, so never share an `ExecCache`
/// between different programs).
///
/// The server keeps one of these per cached [`CompiledProgram`]; a batch
/// of requests executing the same program concurrently shares the
/// encodings, and [`ExecCache::counters`] proves that warm traffic does
/// zero re-encoding.
#[derive(Debug)]
pub struct ExecCache<S: CompilerScheme> {
    inner: Mutex<OperandCache<OperandSlot, S::Operand>>,
}

impl<S: CompilerScheme> ExecCache<S> {
    /// A cache bounded to `capacity` operands (0 = unbounded).
    pub fn new(capacity: usize) -> Self {
        ExecCache {
            inner: Mutex::new(OperandCache::new(capacity)),
        }
    }

    /// An unbounded cache (per-call scratch; the working set is bounded by
    /// the program's constant count).
    pub fn unbounded() -> Self {
        Self::new(0)
    }

    /// Cached operand count.
    pub fn len(&self) -> usize {
        self.lock().len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.lock().is_empty()
    }

    /// Snapshot of the hit/encode/eviction counters. `misses` counts real
    /// encodes.
    pub fn counters(&self) -> CacheCounters {
        self.lock().counters()
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, OperandCache<OperandSlot, S::Operand>> {
        match self.inner.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    fn get_or_encode(
        &self,
        node: usize,
        for_mul: bool,
        ct: &S::Ciphertext,
        encode: impl FnOnce() -> Result<S::Operand, HeError>,
    ) -> Result<S::Operand, HeError> {
        let key = OperandSlot {
            node: node as u32,
            for_mul,
            site: S::operand_site(ct, for_mul),
        };
        self.lock().get_or_insert_with(&key, encode)
    }
}

/// Structural optimization over the *source* program (run before
/// [`compile`]): common-subexpression elimination plus rotation-by-zero and
/// duplicate-constant folding. EVA applies the same class of rewrites before
/// scale assignment; on encrypted programs every eliminated node is a saved
/// homomorphic operation.
pub fn optimize(program: &Program) -> Program {
    use std::collections::HashMap;
    #[derive(Hash, PartialEq, Eq)]
    enum Key {
        Input(String),
        Constant(Vec<u64>), // f64 bits for hashability
        Add(usize, usize),
        Sub(usize, usize),
        Mul(usize, usize),
        MulPlain(usize, usize),
        AddPlain(usize, usize),
        Rotate(usize, i64),
    }
    let mut out = Program::new();
    let mut remap: Vec<NodeId> = Vec::with_capacity(program.ops.len());
    let mut seen: HashMap<Key, NodeId> = HashMap::new();
    for op in &program.ops {
        let (key, new_op) = match op {
            Op::Input(n) => (Key::Input(n.clone()), Op::Input(n.clone())),
            Op::Constant(v) => (
                Key::Constant(v.iter().map(|x| x.to_bits()).collect()),
                Op::Constant(v.clone()),
            ),
            Op::Add(a, b) => {
                // Addition commutes: canonicalize operand order.
                let (x, y) = (
                    remap[a.0].0.min(remap[b.0].0),
                    remap[a.0].0.max(remap[b.0].0),
                );
                (
                    Key::Add(x, y),
                    Op::Add(NodeId(remap[a.0].0), NodeId(remap[b.0].0)),
                )
            }
            Op::Sub(a, b) => (
                Key::Sub(remap[a.0].0, remap[b.0].0),
                Op::Sub(remap[a.0], remap[b.0]),
            ),
            Op::Mul(a, b) => {
                let (x, y) = (
                    remap[a.0].0.min(remap[b.0].0),
                    remap[a.0].0.max(remap[b.0].0),
                );
                (
                    Key::Mul(x, y),
                    Op::Mul(NodeId(remap[a.0].0), NodeId(remap[b.0].0)),
                )
            }
            Op::MulPlain(a, c) => (
                Key::MulPlain(remap[a.0].0, remap[c.0].0),
                Op::MulPlain(remap[a.0], remap[c.0]),
            ),
            Op::AddPlain(a, c) => (
                Key::AddPlain(remap[a.0].0, remap[c.0].0),
                Op::AddPlain(remap[a.0], remap[c.0]),
            ),
            Op::Rotate(a, s) => {
                if *s == 0 {
                    // rotate-by-zero is the identity.
                    remap.push(remap[a.0]);
                    continue;
                }
                (Key::Rotate(remap[a.0].0, *s), Op::Rotate(remap[a.0], *s))
            }
            Op::Rescale(_) | Op::ModSwitch(_) => {
                // Source programs never contain these.
                remap.push(NodeId(out.ops.len()));
                out.ops.push(op.clone());
                continue;
            }
        };
        let id = *seen.entry(key).or_insert_with(|| {
            out.ops.push(new_op);
            NodeId(out.ops.len() - 1)
        });
        remap.push(id);
    }
    out.outputs = program.outputs.iter().map(|o| remap[o.0]).collect();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use choco_he::params::HeParams;
    use choco_prng::Blake3Rng;

    fn opts(levels: usize) -> CompilerOptions {
        CompilerOptions {
            scale_bits: 38,
            prime_bits: 45,
            max_levels: levels,
        }
    }

    #[test]
    fn polynomial_program_compiles_and_counts() {
        // y = x^3 + 2x^2 + 1
        let mut p = Program::new();
        let x = p.input("x");
        let x2 = p.mul(x, x);
        let x3 = p.mul(x2, x);
        let two = p.constant(&[2.0; 4]);
        let term = p.mul_plain(x2, two);
        let sum = p.add(x3, term);
        let one = p.constant(&[1.0; 4]);
        let y = p.add_plain(sum, one);
        p.output(y);

        let c = compile(&p, &opts(4)).unwrap();
        assert_eq!(c.counts.ct_mults, 2);
        assert_eq!(c.counts.pt_mults, 1);
        assert!(c.counts.rescales >= 2, "multiplies must trigger rescales");
        assert!(c.required_levels <= 4);
    }

    #[test]
    fn depth_overflow_is_detected() {
        let mut p = Program::new();
        let x = p.input("x");
        let mut acc = x;
        for _ in 0..5 {
            acc = p.mul(acc, acc);
        }
        p.output(acc);
        let err = compile(&p, &opts(3)).unwrap_err();
        assert!(matches!(err, CompileError::DepthExceeded { .. }));
    }

    #[test]
    fn kind_mismatch_rejected() {
        let mut p = Program::new();
        let c = p.constant(&[1.0]);
        let x = p.input("x");
        let bad = p.add(x, c); // ct+ct op with a constant operand
        p.output(bad);
        assert!(matches!(
            compile(&p, &opts(3)).unwrap_err(),
            CompileError::KindMismatch(_)
        ));
        let empty = Program::new();
        assert_eq!(
            compile(&empty, &opts(3)).unwrap_err(),
            CompileError::NoOutputs
        );
    }

    #[test]
    fn plain_execution_matches_hand_computation() {
        let mut p = Program::new();
        let x = p.input("x");
        let r = p.rotate(x, 1);
        let s = p.add(x, r);
        p.output(s);
        let c = compile(&p, &opts(3)).unwrap();
        let mut inputs = HashMap::new();
        inputs.insert("x".to_string(), vec![1.0, 2.0, 3.0, 4.0]);
        let out = c.execute_plain(&inputs).unwrap();
        assert_eq!(out[0], vec![3.0, 5.0, 7.0, 5.0]);
        assert_eq!(c.rotation_steps, vec![1]);
        // The derived view agrees with the field the compiler recorded.
        assert_eq!(c.rotation_steps(), c.rotation_steps);
    }

    #[test]
    fn encrypted_execution_matches_plain_reference() {
        // y = (x + rot(x,1)) * w  — a 1D convolution step.
        let mut p = Program::new();
        let x = p.input("x");
        let r = p.rotate(x, 1);
        let s = p.add(x, r);
        let w = p.constant(&[0.5, 1.0, -1.0, 2.0, 0.25, 3.0, 1.5, -0.5]);
        let y = p.mul_plain(s, w);
        let y2 = p.mul(y, y); // exercise ct-mult + rescale too
        p.output(y2);

        let params = HeParams::ckks_insecure(1024, &[45, 45, 45, 46], 38).unwrap();
        let ctx = CkksContext::new(&params).unwrap();
        let copts = CompilerOptions {
            scale_bits: 38,
            prime_bits: 45,
            max_levels: ctx.top_level(),
        };
        let c = compile(&p, &copts).unwrap();

        let mut rng = Blake3Rng::from_seed(b"compiler test");
        let keys = ctx.keygen(&mut rng);
        let relin = ctx.relin_key(keys.secret_key(), &mut rng);
        let galois = ctx.galois_keys(keys.secret_key(), &c.rotation_steps, &mut rng);

        let x_vals: Vec<f64> = (0..8).map(|i| (i as f64 - 3.0) / 4.0).collect();
        let mut plain_in = HashMap::new();
        plain_in.insert("x".to_string(), {
            let mut v = x_vals.clone();
            v.resize(ctx.slot_count(), 0.0);
            v
        });
        let want = c.execute_plain(&plain_in).unwrap();

        let mut enc_in = HashMap::new();
        let pt = ctx.encode(&x_vals).unwrap();
        enc_in.insert(
            "x".to_string(),
            ctx.encrypt(&pt, keys.public_key(), &mut rng).unwrap(),
        );
        let got_ct = c
            .execute_encrypted::<Ckks>(&ctx, &enc_in, &relin, &galois)
            .unwrap();
        let got = ctx.decode(&ctx.decrypt(&got_ct[0], keys.secret_key()));
        for i in 0..8 {
            assert!(
                (got[i] - want[0][i]).abs() < 1e-2,
                "slot {i}: {} vs {}",
                got[i],
                want[0][i]
            );
        }
    }

    #[test]
    fn bfv_execution_matches_integer_reference() {
        // out = x + rot(x, 1): no constants, so BFV semantics are exact
        // integer adds — checkable against the batch-decoded reference.
        let mut p = Program::new();
        let x = p.input("x");
        let r = p.rotate(x, 1);
        let s = p.add(x, r);
        p.output(s);
        let copts = CompilerOptions {
            scale_bits: 30,
            prime_bits: 45,
            max_levels: 3,
        };
        let c = compile(&p, &copts).unwrap();

        let params = HeParams::bfv_insecure(1024, &[45, 45, 46], 17).unwrap();
        let ctx = <Bfv as HeScheme>::context(&params).unwrap();
        let mut rng = Blake3Rng::from_seed(b"bfv compiler test");
        let keys = <Bfv as HeScheme>::keygen(&ctx, &mut rng);
        let relin = <Bfv as HeScheme>::relin_key(&ctx, &keys, &mut rng).unwrap();
        let galois =
            <Bfv as HeScheme>::galois_keys(&ctx, &keys, &c.rotation_steps, &mut rng).unwrap();

        let width = <Bfv as HeScheme>::slot_width(&ctx);
        let values: Vec<u64> = (0..width as u64).collect();
        let mut inputs = HashMap::new();
        inputs.insert(
            "x".to_string(),
            <Bfv as HeScheme>::encrypt(&ctx, &keys, &values, &mut rng).unwrap(),
        );
        let out = c
            .execute_encrypted::<Bfv>(&ctx, &inputs, &relin, &galois)
            .unwrap();
        let got = <Bfv as HeScheme>::decrypt(&ctx, &keys, &out[0]).unwrap();
        // BFV rotations act on the two batching rows independently.
        let half = width;
        for j in 0..half {
            let want = values[j] + values[(j + 1) % half];
            assert_eq!(got[j], want, "slot {j}");
        }
    }

    #[test]
    fn bfv_execution_with_constants_is_deterministic_through_rescale_nodes() {
        // The pipeline-style shape: rotations + plaintext multiplies +
        // a plaintext add. BFV has no chain, so the schedule's inserted
        // Rescale/ModSwitch nodes must pass ciphertexts through untouched
        // and two executions must agree bit-for-bit.
        let mut p = Program::new();
        let x = p.input("x");
        let w = p.constant(&[0.5, 1.0, 1.5, 2.0]);
        let m = p.mul_plain(x, w);
        let b = p.constant(&[1.0, 1.0, 2.0, 2.0]);
        let y = p.add_plain(m, b);
        let sq = p.mul(y, y);
        p.output(sq);
        let copts = CompilerOptions {
            scale_bits: 6,
            prime_bits: 45,
            max_levels: 4,
        };
        let c = compile(&p, &copts).unwrap();

        let params = HeParams::bfv_insecure(1024, &[45, 45, 46], 17).unwrap();
        let ctx = <Bfv as HeScheme>::context(&params).unwrap();
        let mut rng = Blake3Rng::from_seed(b"bfv const test");
        let keys = <Bfv as HeScheme>::keygen(&ctx, &mut rng);
        let relin = <Bfv as HeScheme>::relin_key(&ctx, &keys, &mut rng).unwrap();
        let galois =
            <Bfv as HeScheme>::galois_keys(&ctx, &keys, &c.rotation_steps, &mut rng).unwrap();
        let mut inputs = HashMap::new();
        inputs.insert(
            "x".to_string(),
            <Bfv as HeScheme>::encrypt(&ctx, &keys, &[1, 2, 3, 4], &mut rng).unwrap(),
        );
        let a = c
            .execute_encrypted::<Bfv>(&ctx, &inputs, &relin, &galois)
            .unwrap();
        let b = c
            .execute_encrypted::<Bfv>(&ctx, &inputs, &relin, &galois)
            .unwrap();
        assert_eq!(
            <Bfv as HeScheme>::ct_to_wire(&a[0]),
            <Bfv as HeScheme>::ct_to_wire(&b[0]),
            "BFV compiled execution must be deterministic"
        );
    }

    #[test]
    fn shared_exec_cache_skips_reencodes_and_stays_bit_identical() {
        let mut p = Program::new();
        let x = p.input("x");
        let w = p.constant(&[0.25; 8]);
        let y = p.mul_plain(x, w);
        let b = p.constant(&[1.0; 8]);
        let z = p.add_plain(y, b);
        p.output(z);
        let params = HeParams::ckks_insecure(1024, &[45, 45, 46], 38).unwrap();
        let ctx = CkksContext::new(&params).unwrap();
        let copts = CompilerOptions {
            scale_bits: 38,
            prime_bits: 45,
            max_levels: ctx.top_level(),
        };
        let c = compile(&p, &copts).unwrap();
        let mut rng = Blake3Rng::from_seed(b"cache test");
        let keys = ctx.keygen(&mut rng);
        let relin = ctx.relin_key(keys.secret_key(), &mut rng);
        let galois = ctx.galois_keys(keys.secret_key(), &c.rotation_steps, &mut rng);
        let mut inputs = HashMap::new();
        let pt = ctx.encode(&[1.0; 8]).unwrap();
        inputs.insert(
            "x".to_string(),
            ctx.encrypt(&pt, keys.public_key(), &mut rng).unwrap(),
        );

        let cache = ExecCache::<Ckks>::new(16);
        let cold = c
            .execute_encrypted_cached::<Ckks>(&ctx, &inputs, &relin, &galois, &cache)
            .unwrap();
        let after_cold = cache.counters();
        assert_eq!(after_cold.misses, 2, "two constants → two encodes");
        assert_eq!(after_cold.hits, 0);

        let warm = c
            .execute_encrypted_cached::<Ckks>(&ctx, &inputs, &relin, &galois, &cache)
            .unwrap();
        let after_warm = cache.counters();
        assert_eq!(after_warm.misses, 2, "warm run must not re-encode");
        assert_eq!(after_warm.hits, 2);

        // And the uncached twin agrees bit-for-bit.
        let plainpath = c
            .execute_encrypted::<Ckks>(&ctx, &inputs, &relin, &galois)
            .unwrap();
        let wire = |ct: &CkksCiphertext| choco_he::serialize::ckks_ciphertext_to_bytes(ct);
        assert_eq!(wire(&cold[0]), wire(&warm[0]));
        assert_eq!(wire(&cold[0]), wire(&plainpath[0]));
    }

    #[test]
    fn add_after_different_depths_aligns_levels() {
        // x*x (one rescale) + x must mod-switch x down one level.
        let mut p = Program::new();
        let x = p.input("x");
        let sq = p.mul(x, x);
        let s = p.add(sq, x);
        p.output(s);
        let c = compile(&p, &opts(4)).unwrap();
        assert!(c.counts.mod_switches >= 1, "level alignment required");
        // And it runs correctly end to end on plaintext.
        let mut inputs = HashMap::new();
        inputs.insert("x".to_string(), vec![2.0, 3.0]);
        let out = c.execute_plain(&inputs).unwrap();
        assert_eq!(out[0], vec![6.0, 12.0]);
    }

    #[test]
    fn cse_deduplicates_repeated_subexpressions() {
        // x*x computed twice, rotate-by-zero, duplicate constants.
        let mut p = Program::new();
        let x = p.input("x");
        let sq1 = p.mul(x, x);
        let sq2 = p.mul(x, x);
        let r0 = p.rotate(sq1, 0);
        let c1 = p.constant(&[2.0]);
        let c2 = p.constant(&[2.0]);
        let t1 = p.mul_plain(r0, c1);
        let t2 = p.mul_plain(sq2, c2);
        let y = p.add(t1, t2); // = 2x² + 2x² — both sides identical after CSE
        p.output(y);

        let opt = optimize(&p);
        assert!(opt.len() < p.len(), "{} -> {}", p.len(), opt.len());
        // Semantics preserved.
        let copts = opts(4);
        let mut inputs = HashMap::new();
        inputs.insert("x".to_string(), vec![3.0]);
        let before = compile(&p, &copts).unwrap().execute_plain(&inputs).unwrap();
        let after = compile(&opt, &copts)
            .unwrap()
            .execute_plain(&inputs)
            .unwrap();
        assert_eq!(before, after);
        assert_eq!(after[0], vec![36.0]); // 4·x² at x=3
                                          // The optimized program compiles to fewer homomorphic multiplies.
        let c_before = compile(&p, &copts).unwrap().counts;
        let c_after = compile(&opt, &copts).unwrap().counts;
        assert!(c_after.ct_mults < c_before.ct_mults);
        assert!(c_after.pt_mults <= c_before.pt_mults);
    }

    #[test]
    fn cse_respects_commutativity_of_add_and_mul() {
        let mut p = Program::new();
        let x = p.input("x");
        let y = p.input("y");
        let a = p.add(x, y);
        let b = p.add(y, x); // same value, swapped operands
        let s = p.mul(a, b);
        p.output(s);
        let opt = optimize(&p);
        // a and b collapse into one node.
        assert_eq!(opt.len(), p.len() - 1);
    }

    #[test]
    fn required_levels_grow_with_multiplicative_depth() {
        let depth_of = |muls: usize| -> usize {
            let mut p = Program::new();
            let x = p.input("x");
            let mut acc = x;
            for _ in 0..muls {
                acc = p.mul(acc, acc);
            }
            p.output(acc);
            compile(&p, &opts(10)).unwrap().required_levels
        };
        assert!(depth_of(1) < depth_of(2));
        assert!(depth_of(2) < depth_of(4));
    }
}
