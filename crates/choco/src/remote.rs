//! Remote evaluation: the client-side half of the offload-server protocol.
//!
//! The paper's deployment model (§2) puts the HE kernels on the *server*:
//! the client keygens, encrypts, uploads its evaluation keys once, and then
//! streams small evaluate requests; the server hosts the compiled circuits
//! and the plaintext models. This module defines the wire protocol both
//! halves share and the [`RemoteEvaluator`] client:
//!
//! * **Session setup** ([`SessionSetup`], magic `CRS1`): the parameter
//!   recipe plus the tenant's relinearization and Galois keys in their
//!   existing `CHR*`/`CHG*` wire formats, sent once right after the
//!   authenticated TCP hello. Only *evaluation* keys ever cross the wire —
//!   never the secret key, never the full `CHB*` bundle.
//! * **Evaluate** ([`EvalRequest`], magic `CRQ1`): a [`CompiledProgram`]
//!   reference (BLAKE3 over the canonical source-program wire form and the
//!   compiler options) plus named input ciphertexts. The source program
//!   itself rides along only when the server has not seen the hash
//!   (`NeedProgram` round trip otherwise), so steady-state requests carry
//!   nothing but ciphertexts.
//! * **Responses** ([`EvalResponse`], magic `CRA1`): output ciphertexts,
//!   or a typed error.
//!
//! Every message is carried inside the session's keyed-BLAKE3 frame format
//! ([`FrameKind::EvalRequest`] / [`FrameKind::EvalResponse`]), so
//! integrity, authentication, and duplicate accounting are inherited from
//! the relay transport unchanged. All decoders are total: truncated,
//! bit-flipped, oversized, or cross-scheme inputs surface as typed
//! [`TransportError`]s, never panics.

use crate::compiler::{CompilerOptions, CompilerScheme, NodeId, Op, Program};
use crate::protocol::CommLedger;
use crate::transport::frame::{decode_frame, encode_frame, FrameKind};
use crate::transport::tcp::{dial_io, BlobIo, Redialer, TcpOptions};
use crate::transport::{RetryPolicy, TagKey, TransportError};
use choco_he::params::{HeParams, SchemeType};
use choco_prng::blake3;
use std::collections::BTreeSet;
use std::marker::PhantomData;
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Magic prefix of a serialized session setup.
pub const SETUP_MAGIC: &[u8; 4] = b"CRS1";
/// Magic prefix of a serialized evaluate request.
pub const REQUEST_MAGIC: &[u8; 4] = b"CRQ1";
/// Magic prefix of a serialized response.
pub const RESPONSE_MAGIC: &[u8; 4] = b"CRA1";
/// Magic of a journal query: a resuming client asks the server which of
/// its accepted-but-unanswered requests died with the previous process.
pub const JOURNAL_MAGIC: &[u8; 4] = b"CRJ1";

/// Upper bound on ids in a `DeadRequests` response — a parse-time guard
/// mirroring [`MAX_PROGRAM_NODES`].
pub const MAX_DEAD_IDS: usize = 1 << 16;

/// Upper bound on IR nodes in an uploaded program — a parse-time guard so
/// a hostile length field cannot drive allocation beyond what the frame
/// size bound already admitted.
pub const MAX_PROGRAM_NODES: usize = 1 << 20;

fn bad(msg: impl Into<String>) -> TransportError {
    TransportError::Malformed(msg.into())
}

fn take<'a>(rest: &mut &'a [u8], n: usize) -> Result<&'a [u8], TransportError> {
    if rest.len() < n {
        return Err(TransportError::Truncated {
            need: n,
            have: rest.len(),
        });
    }
    let (head, tail) = rest.split_at(n);
    *rest = tail;
    Ok(head)
}

fn take_u8(rest: &mut &[u8]) -> Result<u8, TransportError> {
    Ok(take(rest, 1)?[0])
}

fn take_u16(rest: &mut &[u8]) -> Result<u16, TransportError> {
    let b = take(rest, 2)?;
    let mut buf = [0u8; 2];
    buf.copy_from_slice(b);
    Ok(u16::from_le_bytes(buf))
}

fn take_u32(rest: &mut &[u8]) -> Result<u32, TransportError> {
    let b = take(rest, 4)?;
    let mut buf = [0u8; 4];
    buf.copy_from_slice(b);
    Ok(u32::from_le_bytes(buf))
}

fn take_u64(rest: &mut &[u8]) -> Result<u64, TransportError> {
    let b = take(rest, 8)?;
    let mut buf = [0u8; 8];
    buf.copy_from_slice(b);
    Ok(u64::from_le_bytes(buf))
}

/// Reads a `u32`-length-prefixed byte field, bounds-checked against the
/// remaining input so a hostile length cannot over-allocate.
fn take_blob<'a>(rest: &mut &'a [u8]) -> Result<&'a [u8], TransportError> {
    let len = take_u32(rest)? as usize;
    take(rest, len)
}

fn push_blob(out: &mut Vec<u8>, bytes: &[u8]) {
    out.extend_from_slice(&(bytes.len() as u32).to_le_bytes());
    out.extend_from_slice(bytes);
}

// ---------------------------------------------------------------------------
// Parameter recipe
// ---------------------------------------------------------------------------

/// Serializes a parameter set as a deterministic rebuild recipe (the same
/// approach as the session checkpoint format): scheme, security mode,
/// degree, plain modulus, scale bits, and the prime-bit list.
pub fn params_to_wire(params: &HeParams) -> Vec<u8> {
    let mut out = Vec::with_capacity(32 + 4 * params.prime_bits().len());
    out.push(match params.scheme() {
        SchemeType::Bfv => 1u8,
        SchemeType::Ckks => 2u8,
    });
    out.push(params.is_security_checked() as u8);
    out.extend_from_slice(&(params.degree() as u32).to_le_bytes());
    out.extend_from_slice(&params.plain_modulus().to_le_bytes());
    out.extend_from_slice(&params.scale_bits().to_le_bytes());
    out.extend_from_slice(&(params.prime_bits().len() as u16).to_le_bytes());
    for bits in params.prime_bits() {
        out.extend_from_slice(&bits.to_le_bytes());
    }
    out
}

/// Rebuilds a parameter set from its recipe and cross-checks the derived
/// values against the recorded ones.
///
/// # Errors
///
/// [`TransportError::Truncated`]/[`TransportError::Malformed`] on bad
/// bytes, or when the deterministic rebuild disagrees with the recipe.
pub fn params_from_wire(rest: &mut &[u8]) -> Result<HeParams, TransportError> {
    let scheme = match take_u8(rest)? {
        1 => SchemeType::Bfv,
        2 => SchemeType::Ckks,
        other => return Err(bad(format!("unknown scheme byte {other}"))),
    };
    let checked = match take_u8(rest)? {
        0 => false,
        1 => true,
        other => return Err(bad(format!("bad security flag {other}"))),
    };
    let n = take_u32(rest)? as usize;
    let plain_modulus = take_u64(rest)?;
    let scale_bits = take_u32(rest)?;
    let prime_count = take_u16(rest)? as usize;
    if prime_count > 64 {
        return Err(bad(format!("implausible prime count {prime_count}")));
    }
    let mut prime_bits = Vec::with_capacity(prime_count);
    for _ in 0..prime_count {
        prime_bits.push(take_u32(rest)?);
    }
    let params = match scheme {
        SchemeType::Bfv => {
            let plain_bits = 64 - plain_modulus.leading_zeros();
            if checked {
                HeParams::bfv(n, &prime_bits, plain_bits)
            } else {
                HeParams::bfv_insecure(n, &prime_bits, plain_bits)
            }
        }
        SchemeType::Ckks => {
            if checked {
                HeParams::ckks(n, &prime_bits, scale_bits)
            } else {
                HeParams::ckks_insecure(n, &prime_bits, scale_bits)
            }
        }
    }
    .map_err(|e| bad(format!("parameter recipe rejected: {e}")))?;
    let consistent = match scheme {
        SchemeType::Bfv => params.plain_modulus() == plain_modulus,
        SchemeType::Ckks => params.scale_bits() == scale_bits,
    };
    if !consistent || params.degree() != n {
        return Err(bad("rebuilt parameters disagree with recipe"));
    }
    Ok(params)
}

/// The cache key component identifying a parameter set: BLAKE3 over its
/// recipe. Tenants sharing a parameter set share server-side caches;
/// different sets can never collide.
pub fn params_hash(params: &HeParams) -> [u8; 32] {
    blake3::hash(&params_to_wire(params))
}

// ---------------------------------------------------------------------------
// Program wire form
// ---------------------------------------------------------------------------

/// Serializes a *source* program (no `Rescale`/`ModSwitch` nodes) into its
/// canonical wire form — the bytes [`program_ref`] hashes.
///
/// # Errors
///
/// [`TransportError::Malformed`] if the program contains compiler-inserted
/// nodes (only source programs travel; the server compiles).
pub fn program_to_wire(program: &Program) -> Result<Vec<u8>, TransportError> {
    let mut out = Vec::with_capacity(16 + program.len() * 12);
    out.extend_from_slice(&(program.len() as u32).to_le_bytes());
    for (i, op) in program.ops().iter().enumerate() {
        match op {
            Op::Input(name) => {
                out.push(0);
                if name.len() > u16::MAX as usize {
                    return Err(bad(format!("node {i}: input name too long")));
                }
                out.extend_from_slice(&(name.len() as u16).to_le_bytes());
                out.extend_from_slice(name.as_bytes());
            }
            Op::Constant(values) => {
                out.push(1);
                out.extend_from_slice(&(values.len() as u32).to_le_bytes());
                for v in values {
                    out.extend_from_slice(&v.to_bits().to_le_bytes());
                }
            }
            Op::Add(a, b) => {
                out.push(2);
                out.extend_from_slice(&(a.index() as u32).to_le_bytes());
                out.extend_from_slice(&(b.index() as u32).to_le_bytes());
            }
            Op::Sub(a, b) => {
                out.push(3);
                out.extend_from_slice(&(a.index() as u32).to_le_bytes());
                out.extend_from_slice(&(b.index() as u32).to_le_bytes());
            }
            Op::Mul(a, b) => {
                out.push(4);
                out.extend_from_slice(&(a.index() as u32).to_le_bytes());
                out.extend_from_slice(&(b.index() as u32).to_le_bytes());
            }
            Op::MulPlain(a, c) => {
                out.push(5);
                out.extend_from_slice(&(a.index() as u32).to_le_bytes());
                out.extend_from_slice(&(c.index() as u32).to_le_bytes());
            }
            Op::AddPlain(a, c) => {
                out.push(6);
                out.extend_from_slice(&(a.index() as u32).to_le_bytes());
                out.extend_from_slice(&(c.index() as u32).to_le_bytes());
            }
            Op::Rotate(a, s) => {
                out.push(7);
                out.extend_from_slice(&(a.index() as u32).to_le_bytes());
                out.extend_from_slice(&s.to_le_bytes());
            }
            Op::Rescale(_) | Op::ModSwitch(_) => {
                return Err(bad(format!(
                    "node {i}: compiled nodes cannot travel; upload source programs"
                )));
            }
        }
    }
    out.extend_from_slice(&(program.output_ids().len() as u32).to_le_bytes());
    for o in program.output_ids() {
        out.extend_from_slice(&(o.index() as u32).to_le_bytes());
    }
    Ok(out)
}

/// Rebuilds a source program from its wire form through the builder API,
/// revalidating every operand reference.
///
/// # Errors
///
/// Typed [`TransportError`]s on truncation, bad op tags, forward or
/// out-of-range operand references, or implausible node counts. Never
/// panics.
pub fn program_from_wire(bytes: &[u8]) -> Result<Program, TransportError> {
    let mut rest = bytes;
    let node_count = take_u32(&mut rest)? as usize;
    if node_count > MAX_PROGRAM_NODES {
        return Err(bad(format!("implausible node count {node_count}")));
    }
    let mut prog = Program::new();
    let operand = |rest: &mut &[u8], built: usize| -> Result<NodeId, TransportError> {
        let idx = take_u32(rest)? as usize;
        if idx >= built {
            return Err(bad(format!(
                "operand {idx} references node {built} or later"
            )));
        }
        Ok(NodeId::new(idx))
    };
    for i in 0..node_count {
        match take_u8(&mut rest)? {
            0 => {
                let len = take_u16(&mut rest)? as usize;
                let name = std::str::from_utf8(take(&mut rest, len)?)
                    .map_err(|_| bad(format!("node {i}: input name is not UTF-8")))?;
                prog.input(name);
            }
            1 => {
                let len = take_u32(&mut rest)? as usize;
                if len > rest.len() / 8 + 1 {
                    return Err(bad(format!("node {i}: constant length overruns input")));
                }
                let mut values = Vec::with_capacity(len);
                for _ in 0..len {
                    values.push(f64::from_bits(take_u64(&mut rest)?));
                }
                prog.constant(&values);
            }
            2 => {
                let (a, b) = (operand(&mut rest, i)?, operand(&mut rest, i)?);
                prog.add(a, b);
            }
            3 => {
                let (a, b) = (operand(&mut rest, i)?, operand(&mut rest, i)?);
                prog.sub(a, b);
            }
            4 => {
                let (a, b) = (operand(&mut rest, i)?, operand(&mut rest, i)?);
                prog.mul(a, b);
            }
            5 => {
                let (a, c) = (operand(&mut rest, i)?, operand(&mut rest, i)?);
                prog.mul_plain(a, c);
            }
            6 => {
                let (a, c) = (operand(&mut rest, i)?, operand(&mut rest, i)?);
                prog.add_plain(a, c);
            }
            7 => {
                let a = operand(&mut rest, i)?;
                let s = take_u64(&mut rest)? as i64;
                prog.rotate(a, s);
            }
            other => return Err(bad(format!("node {i}: unknown op tag {other}"))),
        }
    }
    let output_count = take_u32(&mut rest)? as usize;
    if output_count > node_count {
        return Err(bad("more outputs than nodes"));
    }
    for _ in 0..output_count {
        let idx = take_u32(&mut rest)? as usize;
        if idx >= node_count {
            return Err(bad(format!("output references missing node {idx}")));
        }
        prog.output(NodeId::new(idx));
    }
    if !rest.is_empty() {
        return Err(bad("trailing bytes after program"));
    }
    Ok(prog)
}

fn options_to_wire(options: &CompilerOptions) -> [u8; 12] {
    let mut out = [0u8; 12];
    let words = options
        .scale_bits
        .to_le_bytes()
        .into_iter()
        .chain(options.prime_bits.to_le_bytes())
        .chain((options.max_levels as u32).to_le_bytes());
    for (dst, src) in out.iter_mut().zip(words) {
        *dst = src;
    }
    out
}

fn options_from_wire(rest: &mut &[u8]) -> Result<CompilerOptions, TransportError> {
    let scale_bits = take_u32(rest)?;
    let prime_bits = take_u32(rest)?;
    let max_levels = take_u32(rest)? as usize;
    if max_levels == 0 || max_levels > 64 {
        return Err(bad(format!("implausible level count {max_levels}")));
    }
    Ok(CompilerOptions {
        scale_bits,
        prime_bits,
        max_levels,
    })
}

/// The identity of a compiled program on the wire: BLAKE3 over the
/// canonical program bytes and the compiler options. Together with
/// [`params_hash`] this is the server's cache key — same hash, same
/// `CompiledProgram`, same encoded operands.
pub fn program_ref_of(program_wire: &[u8], options: &CompilerOptions) -> [u8; 32] {
    let mut h = blake3::Hasher::new();
    h.update(&(program_wire.len() as u64).to_le_bytes());
    h.update(program_wire);
    h.update(&options_to_wire(options));
    h.finalize()
}

/// A program serialized once on the client, ready to reference in any
/// number of [`EvalRequest`]s.
#[derive(Debug, Clone)]
pub struct PreparedProgram {
    /// Canonical source-program bytes.
    pub wire: Vec<u8>,
    /// The compiler configuration the server must compile under.
    pub options: CompilerOptions,
    /// BLAKE3 identity of (wire, options).
    pub program_ref: [u8; 32],
}

impl PreparedProgram {
    /// Serializes and hashes a source program.
    ///
    /// # Errors
    ///
    /// [`TransportError::Malformed`] if the program contains
    /// compiler-inserted nodes.
    pub fn new(program: &Program, options: &CompilerOptions) -> Result<Self, TransportError> {
        let wire = program_to_wire(program)?;
        let program_ref = program_ref_of(&wire, options);
        Ok(PreparedProgram {
            wire,
            options: *options,
            program_ref,
        })
    }
}

// ---------------------------------------------------------------------------
// Messages
// ---------------------------------------------------------------------------

/// The one-time key upload that turns an admitted relay connection into an
/// evaluation session.
#[derive(Debug, Clone)]
pub struct SessionSetup {
    /// The tenant's parameter set (recipe form).
    pub params: HeParams,
    /// Relinearization key, `CHR1`/`CHR2` wire form.
    pub relin_wire: Vec<u8>,
    /// Galois keys, `CHG1`/`CHG2` wire form.
    pub galois_wire: Vec<u8>,
}

impl SessionSetup {
    /// Serializes the setup message.
    pub fn to_wire(&self) -> Vec<u8> {
        let params = params_to_wire(&self.params);
        let mut out = Vec::with_capacity(
            4 + params.len() + self.relin_wire.len() + self.galois_wire.len() + 8,
        );
        out.extend_from_slice(SETUP_MAGIC);
        out.extend_from_slice(&params);
        push_blob(&mut out, &self.relin_wire);
        push_blob(&mut out, &self.galois_wire);
        out
    }

    /// Decodes and validates a setup message, including the cross-scheme
    /// check: the key blobs' magics must match the parameter scheme (a BFV
    /// session cannot smuggle CKKS keys, and vice versa).
    ///
    /// # Errors
    ///
    /// Typed [`TransportError`]s; never panics.
    pub fn from_wire(bytes: &[u8]) -> Result<Self, TransportError> {
        let mut rest = bytes;
        if take(&mut rest, 4)? != SETUP_MAGIC {
            return Err(bad("bad setup magic"));
        }
        let params = params_from_wire(&mut rest)?;
        let relin_wire = take_blob(&mut rest)?.to_vec();
        let galois_wire = take_blob(&mut rest)?.to_vec();
        if !rest.is_empty() {
            return Err(bad("trailing bytes after setup"));
        }
        let (relin_magic, galois_magic): (&[u8], &[u8]) = match params.scheme() {
            SchemeType::Bfv => (b"CHR1", b"CHG1"),
            SchemeType::Ckks => (b"CHR2", b"CHG2"),
        };
        if relin_wire.get(..4) != Some(relin_magic) {
            return Err(bad(format!(
                "relin key wire does not match the {:?} parameter scheme",
                params.scheme()
            )));
        }
        if galois_wire.get(..4) != Some(galois_magic) {
            return Err(bad(format!(
                "galois key wire does not match the {:?} parameter scheme",
                params.scheme()
            )));
        }
        Ok(SessionSetup {
            params,
            relin_wire,
            galois_wire,
        })
    }
}

/// One evaluate call: a program reference, optionally the program body
/// (first use), and the named input ciphertexts.
#[derive(Debug, Clone)]
pub struct EvalRequest {
    /// Client-chosen id echoed in the response, so pipelined requests can
    /// be matched up.
    pub request_id: u64,
    /// [`program_ref_of`] the referenced program.
    pub program_ref: [u8; 32],
    /// The program body + options, included when the server may not hold
    /// the reference yet.
    pub program: Option<(Vec<u8>, CompilerOptions)>,
    /// Optional dispatch deadline, milliseconds from server-side arrival.
    /// A job still queued when its budget elapses is shed with a typed
    /// `DeadlineExceeded` instead of burning evaluator time on a result
    /// nobody is waiting for.
    pub deadline_ms: Option<u64>,
    /// `(input name, ciphertext wire)` pairs.
    pub inputs: Vec<(String, Vec<u8>)>,
}

impl EvalRequest {
    /// Serializes the request.
    pub fn to_wire(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(
            64 + self
                .inputs
                .iter()
                .map(|(n, c)| n.len() + c.len() + 8)
                .sum::<usize>(),
        );
        out.extend_from_slice(REQUEST_MAGIC);
        out.extend_from_slice(&self.request_id.to_le_bytes());
        out.extend_from_slice(&self.program_ref);
        match self.deadline_ms {
            Some(ms) => {
                out.push(1);
                out.extend_from_slice(&ms.to_le_bytes());
            }
            None => out.push(0),
        }
        match &self.program {
            Some((wire, options)) => {
                out.push(1);
                push_blob(&mut out, wire);
                out.extend_from_slice(&options_to_wire(options));
            }
            None => out.push(0),
        }
        out.extend_from_slice(&(self.inputs.len() as u16).to_le_bytes());
        for (name, ct) in &self.inputs {
            out.extend_from_slice(&(name.len() as u16).to_le_bytes());
            out.extend_from_slice(name.as_bytes());
            push_blob(&mut out, ct);
        }
        out
    }

    /// Decodes a request.
    ///
    /// # Errors
    ///
    /// Typed [`TransportError`]s; never panics. An inline program body
    /// whose hash disagrees with `program_ref` is rejected here, so cache
    /// poisoning by reference/body mismatch is impossible.
    pub fn from_wire(bytes: &[u8]) -> Result<Self, TransportError> {
        let mut rest = bytes;
        if take(&mut rest, 4)? != REQUEST_MAGIC {
            return Err(bad("bad request magic"));
        }
        let request_id = take_u64(&mut rest)?;
        let mut program_ref = [0u8; 32];
        program_ref.copy_from_slice(take(&mut rest, 32)?);
        let deadline_ms = match take_u8(&mut rest)? {
            0 => None,
            1 => Some(take_u64(&mut rest)?),
            other => return Err(bad(format!("bad deadline flag {other}"))),
        };
        let program = match take_u8(&mut rest)? {
            0 => None,
            1 => {
                let wire = take_blob(&mut rest)?.to_vec();
                let options = options_from_wire(&mut rest)?;
                if program_ref_of(&wire, &options) != program_ref {
                    return Err(bad("program body does not hash to its reference"));
                }
                Some((wire, options))
            }
            other => return Err(bad(format!("bad program flag {other}"))),
        };
        let input_count = take_u16(&mut rest)? as usize;
        let mut inputs = Vec::with_capacity(input_count.min(64));
        for _ in 0..input_count {
            let name_len = take_u16(&mut rest)? as usize;
            let name = std::str::from_utf8(take(&mut rest, name_len)?)
                .map_err(|_| bad("input name is not UTF-8"))?
                .to_string();
            let ct = take_blob(&mut rest)?.to_vec();
            inputs.push((name, ct));
        }
        if !rest.is_empty() {
            return Err(bad("trailing bytes after request"));
        }
        Ok(EvalRequest {
            request_id,
            program_ref,
            program,
            deadline_ms,
            inputs,
        })
    }
}

/// The server's answer to one [`SessionSetup`] or [`EvalRequest`].
#[derive(Debug, Clone, PartialEq)]
pub enum EvalResponse {
    /// Session setup accepted; evaluate requests may follow.
    SetupOk,
    /// Output ciphertexts, in program-output order.
    Outputs {
        /// Echo of the request id.
        request_id: u64,
        /// Serialized output ciphertexts.
        outputs: Vec<Vec<u8>>,
    },
    /// The referenced program is unknown here — resend with the body.
    NeedProgram {
        /// Echo of the request id.
        request_id: u64,
    },
    /// The request failed; the message is the typed server-side error,
    /// rendered.
    Error {
        /// Echo of the request id (0 for setup failures).
        request_id: u64,
        /// Human-readable cause.
        message: String,
    },
    /// The job was shed: its deadline passed before the scheduler
    /// dispatched it. The client may resend (with a fresh budget).
    DeadlineExceeded {
        /// Echo of the request id.
        request_id: u64,
    },
    /// The tenant's circuit breaker is open; retry after the hint.
    Unavailable {
        /// Echo of the request id.
        request_id: u64,
        /// Milliseconds until the breaker half-opens.
        retry_after_ms: u64,
    },
    /// The referenced `(params_hash, program_ref)` is quarantined after a
    /// prior isolated failure. Terminal for this program on this server.
    Quarantined {
        /// Echo of the request id.
        request_id: u64,
        /// The recorded failure that caused the quarantine.
        reason: String,
    },
    /// Answer to a journal query: the request ids this session had
    /// accepted but not answered when the previous server process died.
    DeadRequests {
        /// Ids that must be resent to ever complete.
        request_ids: Vec<u64>,
    },
}

impl EvalResponse {
    /// Serializes the response.
    pub fn to_wire(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(32);
        out.extend_from_slice(RESPONSE_MAGIC);
        match self {
            EvalResponse::SetupOk => {
                out.push(0);
                out.extend_from_slice(&0u64.to_le_bytes());
            }
            EvalResponse::Outputs {
                request_id,
                outputs,
            } => {
                out.push(1);
                out.extend_from_slice(&request_id.to_le_bytes());
                out.extend_from_slice(&(outputs.len() as u16).to_le_bytes());
                for ct in outputs {
                    push_blob(&mut out, ct);
                }
            }
            EvalResponse::NeedProgram { request_id } => {
                out.push(2);
                out.extend_from_slice(&request_id.to_le_bytes());
            }
            EvalResponse::Error {
                request_id,
                message,
            } => {
                out.push(3);
                out.extend_from_slice(&request_id.to_le_bytes());
                push_blob(&mut out, message.as_bytes());
            }
            EvalResponse::DeadlineExceeded { request_id } => {
                out.push(4);
                out.extend_from_slice(&request_id.to_le_bytes());
            }
            EvalResponse::Unavailable {
                request_id,
                retry_after_ms,
            } => {
                out.push(5);
                out.extend_from_slice(&request_id.to_le_bytes());
                out.extend_from_slice(&retry_after_ms.to_le_bytes());
            }
            EvalResponse::Quarantined { request_id, reason } => {
                out.push(6);
                out.extend_from_slice(&request_id.to_le_bytes());
                push_blob(&mut out, reason.as_bytes());
            }
            EvalResponse::DeadRequests { request_ids } => {
                out.push(7);
                out.extend_from_slice(&0u64.to_le_bytes());
                out.extend_from_slice(&(request_ids.len() as u32).to_le_bytes());
                for id in request_ids {
                    out.extend_from_slice(&id.to_le_bytes());
                }
            }
        }
        out
    }

    /// Reads just the echoed request id out of a serialized response —
    /// what the server's journal needs to mark a delivery without a full
    /// decode. `None` for ill-formed payloads and id-less responses
    /// (`SetupOk`, `DeadRequests`).
    pub fn peek_request_id(payload: &[u8]) -> Option<u64> {
        let mut rest = payload;
        if take(&mut rest, 4).ok()? != RESPONSE_MAGIC {
            return None;
        }
        let code = take_u8(&mut rest).ok()?;
        let id = take_u64(&mut rest).ok()?;
        matches!(code, 1..=6).then_some(id)
    }

    /// Decodes a response.
    ///
    /// # Errors
    ///
    /// Typed [`TransportError`]s; never panics.
    pub fn from_wire(bytes: &[u8]) -> Result<Self, TransportError> {
        let mut rest = bytes;
        if take(&mut rest, 4)? != RESPONSE_MAGIC {
            return Err(bad("bad response magic"));
        }
        let code = take_u8(&mut rest)?;
        let request_id = take_u64(&mut rest)?;
        let resp = match code {
            0 => EvalResponse::SetupOk,
            1 => {
                let count = take_u16(&mut rest)? as usize;
                let mut outputs = Vec::with_capacity(count.min(64));
                for _ in 0..count {
                    outputs.push(take_blob(&mut rest)?.to_vec());
                }
                EvalResponse::Outputs {
                    request_id,
                    outputs,
                }
            }
            2 => EvalResponse::NeedProgram { request_id },
            3 => {
                let msg = String::from_utf8_lossy(take_blob(&mut rest)?).into_owned();
                EvalResponse::Error {
                    request_id,
                    message: msg,
                }
            }
            4 => EvalResponse::DeadlineExceeded { request_id },
            5 => EvalResponse::Unavailable {
                request_id,
                retry_after_ms: take_u64(&mut rest)?,
            },
            6 => {
                let reason = String::from_utf8_lossy(take_blob(&mut rest)?).into_owned();
                EvalResponse::Quarantined { request_id, reason }
            }
            7 => {
                let count = take_u32(&mut rest)? as usize;
                if count > MAX_DEAD_IDS {
                    return Err(bad(format!("implausible dead-id count {count}")));
                }
                let mut request_ids = Vec::with_capacity(count.min(1024));
                for _ in 0..count {
                    request_ids.push(take_u64(&mut rest)?);
                }
                EvalResponse::DeadRequests { request_ids }
            }
            other => return Err(bad(format!("unknown response code {other}"))),
        };
        if !rest.is_empty() {
            return Err(bad("trailing bytes after response"));
        }
        Ok(resp)
    }
}

// ---------------------------------------------------------------------------
// Batch response matching
// ---------------------------------------------------------------------------

/// What one absorbed response means for the batch. Raw ciphertext wires —
/// the collector is scheme-agnostic so the matching logic is fuzzable
/// without an HE context.
#[derive(Debug, Clone, PartialEq)]
pub enum Absorbed {
    /// The slot completed with these output wires.
    Done {
        /// Batch slot (request order).
        slot: usize,
        /// Serialized output ciphertexts.
        outputs: Vec<Vec<u8>>,
    },
    /// `NeedProgram`: resend the slot's request with the program body.
    ResendWithProgram {
        /// Batch slot to resend.
        slot: usize,
    },
    /// The server shed the slot's job past its deadline; resend or fail.
    Shed {
        /// Batch slot that was shed.
        slot: usize,
    },
    /// The tenant breaker is open; back off before resending the slot.
    RetryAfter {
        /// Batch slot refused.
        slot: usize,
        /// Server backoff hint in milliseconds.
        retry_after_ms: u64,
    },
}

/// Tracks a pipelined batch's outstanding request ids and enforces the
/// response discipline: every id matches exactly one live slot, duplicate
/// and unknown ids are typed errors, and terminal refusals surface as
/// typed [`TransportError`]s. Extracted from the evaluator so hostile
/// response streams (truncation, bit-flips, id games) can be fuzzed
/// without a socket.
#[derive(Debug)]
pub struct BatchCollector {
    ids: Vec<u64>,
    done: Vec<bool>,
    pending: usize,
}

impl BatchCollector {
    /// A collector over one in-flight request id per batch slot.
    pub fn new(ids: Vec<u64>) -> Self {
        let pending = ids.len();
        BatchCollector {
            done: vec![false; ids.len()],
            ids,
            pending,
        }
    }

    /// Slots still awaiting a terminal response.
    pub fn pending(&self) -> usize {
        self.pending
    }

    /// The live request id of `slot`, if the slot exists and is unanswered.
    pub fn live_id(&self, slot: usize) -> Option<u64> {
        if *self.done.get(slot)? {
            return None;
        }
        self.ids.get(slot).copied()
    }

    /// `(slot, request_id)` for every unanswered slot, in batch order.
    pub fn unanswered(&self) -> Vec<(usize, u64)> {
        self.ids
            .iter()
            .zip(&self.done)
            .enumerate()
            .filter(|(_, (_, done))| !**done)
            .map(|(slot, (id, _))| (slot, *id))
            .collect()
    }

    /// Repoints `slot` at a fresh request id (resend under a new id).
    pub fn rebind(&mut self, slot: usize, new_id: u64) {
        if let Some(id) = self.ids.get_mut(slot) {
            *id = new_id;
        }
    }

    fn slot_of(&self, request_id: u64) -> Result<usize, TransportError> {
        let slot = self
            .ids
            .iter()
            .position(|id| *id == request_id)
            .ok_or_else(|| bad(format!("unexpected response id {request_id}")))?;
        if self.done.get(slot).copied().unwrap_or(true) {
            return Err(bad(format!("duplicate response for id {request_id}")));
        }
        Ok(slot)
    }

    /// Folds one decoded response into the batch state.
    ///
    /// # Errors
    ///
    /// Typed [`TransportError`]s for unknown ids, duplicate ids, mid-batch
    /// setup acks or journal answers, and terminal server refusals
    /// ([`TransportError::Quarantined`], [`TransportError::Rejected`]).
    pub fn absorb(&mut self, resp: EvalResponse) -> Result<Absorbed, TransportError> {
        match resp {
            EvalResponse::Outputs {
                request_id,
                outputs,
            } => {
                let slot = self.slot_of(request_id)?;
                if let Some(done) = self.done.get_mut(slot) {
                    *done = true;
                    self.pending -= 1;
                }
                Ok(Absorbed::Done { slot, outputs })
            }
            EvalResponse::NeedProgram { request_id } => {
                let slot = self.slot_of(request_id)?;
                Ok(Absorbed::ResendWithProgram { slot })
            }
            EvalResponse::DeadlineExceeded { request_id } => {
                let slot = self.slot_of(request_id)?;
                Ok(Absorbed::Shed { slot })
            }
            EvalResponse::Unavailable {
                request_id,
                retry_after_ms,
            } => {
                let slot = self.slot_of(request_id)?;
                Ok(Absorbed::RetryAfter {
                    slot,
                    retry_after_ms,
                })
            }
            EvalResponse::Quarantined { request_id, reason } => {
                self.slot_of(request_id)?;
                Err(TransportError::Quarantined(reason))
            }
            EvalResponse::Error {
                request_id,
                message,
            } => Err(TransportError::Rejected(format!(
                "evaluate {request_id} refused: {message}"
            ))),
            EvalResponse::SetupOk => Err(bad("unexpected setup ack mid-batch")),
            EvalResponse::DeadRequests { .. } => Err(bad("unexpected journal answer mid-batch")),
        }
    }
}

// ---------------------------------------------------------------------------
// Client
// ---------------------------------------------------------------------------

/// The thin client of the remote evaluator: dials `choco-serve`, uploads
/// the evaluation keys once, and then issues evaluate calls — single or
/// pipelined — against programs it references by hash. Keeps a
/// [`CommLedger`] with the same upload/download semantics the local
/// protocol uses, so Figure-10-style accounting carries over to the remote
/// deployment unchanged.
///
/// Connected via [`RemoteEvaluator::connect_reliable`], the client also
/// survives server loss mid-batch: transient failures (connection loss,
/// read timeout, `Unavailable`) trigger bounded retries with exponential
/// backoff — redial with the resume flag, re-upload the session keys,
/// query the server's eval journal for requests that died with the old
/// process, and resend every unanswered request. Resends are billed to
/// `recovery_bytes` (journal-confirmed deaths) or `retransmit_bytes`
/// (everything else), never to the primary upload/download lines, so a
/// crash-interrupted run stays point-comparable to its uninterrupted
/// twin. Terminal refusals ([`TransportError::Quarantined`], cross-scheme
/// setup rejection) are never retried.
pub struct RemoteEvaluator<S: CompilerScheme> {
    io: BlobIo,
    key: TagKey,
    seq: u64,
    next_id: u64,
    ledger: CommLedger,
    sent_programs: BTreeSet<[u8; 32]>,
    opts: TcpOptions,
    deadline_ms: Option<u64>,
    retry: RetryPolicy,
    reconnect: Option<Reconnect>,
    _scheme: PhantomData<S>,
}

/// Everything needed to re-establish a session after the server vanishes.
struct Reconnect {
    /// Shared handle so a supervisor can repoint the client at a restarted
    /// server's new address mid-run.
    addr: Arc<Mutex<String>>,
    seed: Vec<u8>,
    tenant: u64,
    session: u64,
    /// The serialized [`SessionSetup`] re-uploaded on every redial.
    setup_wire: Arc<Vec<u8>>,
}

/// Which ledger line a payload is billed to.
#[derive(Clone, Copy, PartialEq)]
enum Bill {
    Upload,
    Download,
    Retransmit,
    Recovery,
}

fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    match m.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// Transient failures the reconnect loop may absorb; everything else is
/// terminal for the batch.
fn is_transient(e: &TransportError) -> bool {
    matches!(
        e,
        TransportError::Disconnected(_)
            | TransportError::Dropped
            | TransportError::TimeoutExceeded { .. }
            | TransportError::Overloaded { .. }
    )
}

impl<S: CompilerScheme> RemoteEvaluator<S> {
    /// Dials the server, authenticates as `(tenant, session)` with the
    /// tenant seed, and uploads the session's evaluation keys.
    ///
    /// # Errors
    ///
    /// Propagates dial/handshake errors ([`TransportError::Rejected`],
    /// [`TransportError::Overloaded`], …) and any typed setup refusal.
    #[allow(clippy::too_many_arguments)]
    pub fn connect(
        addr: &str,
        seed: &[u8],
        tenant: u64,
        session: u64,
        params: &HeParams,
        relin: &S::RelinKey,
        galois: &S::GaloisKeys,
        opts: &TcpOptions,
    ) -> Result<Self, TransportError> {
        let key = TagKey::from_session_seed(seed);
        let io = dial_io(addr, &key, tenant, session, false, opts)?;
        let setup = SessionSetup {
            params: params.clone(),
            relin_wire: S::relin_to_wire(relin),
            galois_wire: S::galois_to_wire(galois),
        };
        let mut client = RemoteEvaluator {
            io,
            key,
            seq: 0,
            next_id: 0,
            ledger: CommLedger::new(),
            sent_programs: BTreeSet::new(),
            opts: *opts,
            deadline_ms: None,
            retry: RetryPolicy::default(),
            reconnect: None,
            _scheme: PhantomData,
        };
        client.send_request(&setup.to_wire())?;
        match client.read_response()? {
            EvalResponse::SetupOk => Ok(client),
            EvalResponse::Error { message, .. } => Err(TransportError::Rejected(format!(
                "session setup refused: {message}"
            ))),
            other => Err(bad(format!("unexpected setup response {other:?}"))),
        }
    }

    /// [`RemoteEvaluator::connect`], but fault-tolerant: the address is a
    /// shared handle (a supervisor may repoint it at a restarted server),
    /// the initial dial retries per `policy`, and every later batch
    /// recovers from connection loss by redialing, re-uploading the setup,
    /// querying the eval journal, and resending unanswered requests.
    ///
    /// # Errors
    ///
    /// Propagates dial/handshake errors once the retry budget is spent and
    /// any typed setup refusal.
    #[allow(clippy::too_many_arguments)]
    pub fn connect_reliable(
        addr: Arc<Mutex<String>>,
        seed: &[u8],
        tenant: u64,
        session: u64,
        params: &HeParams,
        relin: &S::RelinKey,
        galois: &S::GaloisKeys,
        opts: &TcpOptions,
        policy: RetryPolicy,
    ) -> Result<Self, TransportError> {
        let key = TagKey::from_session_seed(seed);
        let setup = SessionSetup {
            params: params.clone(),
            relin_wire: S::relin_to_wire(relin),
            galois_wire: S::galois_to_wire(galois),
        };
        let setup_wire = Arc::new(setup.to_wire());
        let io = Redialer::new(lock(&addr).clone(), seed, tenant, session)
            .with_policy(policy)
            .with_opts(*opts)
            .dial_fresh_io()?;
        let mut client = RemoteEvaluator {
            io,
            key,
            seq: 0,
            next_id: 0,
            ledger: CommLedger::new(),
            sent_programs: BTreeSet::new(),
            opts: *opts,
            deadline_ms: None,
            retry: policy,
            reconnect: Some(Reconnect {
                addr,
                seed: seed.to_vec(),
                tenant,
                session,
                setup_wire: Arc::clone(&setup_wire),
            }),
            _scheme: PhantomData,
        };
        client.send_request(&setup_wire)?;
        match client.read_response()? {
            EvalResponse::SetupOk => Ok(client),
            EvalResponse::Error { message, .. } => Err(TransportError::Rejected(format!(
                "session setup refused: {message}"
            ))),
            other => Err(bad(format!("unexpected setup response {other:?}"))),
        }
    }

    /// The client-side traffic ledger (requests → uploads, responses →
    /// downloads; payload bytes, frame overhead excluded).
    pub fn ledger(&self) -> &CommLedger {
        &self.ledger
    }

    /// Sets the dispatch deadline attached to every subsequent request
    /// (`None` disables). See [`EvalRequest::deadline_ms`].
    pub fn set_deadline_ms(&mut self, deadline_ms: Option<u64>) {
        self.deadline_ms = deadline_ms;
    }

    /// Evaluates `prog` on `inputs`, blocking for the result.
    ///
    /// # Errors
    ///
    /// Propagates transport errors and typed server-side refusals
    /// ([`TransportError::Rejected`] carrying the server's message).
    pub fn evaluate(
        &mut self,
        prog: &PreparedProgram,
        inputs: &[(&str, &S::Ciphertext)],
    ) -> Result<Vec<S::Ciphertext>, TransportError> {
        let mut out = self.evaluate_batch(prog, &[inputs])?;
        out.pop()
            .ok_or_else(|| bad("batch of one returned no result"))
    }

    /// Pipelines one evaluate request per element of `batch` — all
    /// requests are written before the first response is read, which is
    /// what lets the server coalesce them into one kernel invocation —
    /// and returns the results in request order.
    ///
    /// # Errors
    ///
    /// Propagates transport errors; any per-request server refusal fails
    /// the whole batch with its typed message.
    pub fn evaluate_batch(
        &mut self,
        prog: &PreparedProgram,
        batch: &[&[(&str, &S::Ciphertext)]],
    ) -> Result<Vec<Vec<S::Ciphertext>>, TransportError> {
        let first_use = self.sent_programs.insert(prog.program_ref);
        let ids: Vec<u64> = (0..batch.len() as u64).map(|i| self.next_id + i).collect();
        self.next_id += batch.len() as u64;
        let mut coll = BatchCollector::new(ids);
        let mut results: Vec<Option<Vec<S::Ciphertext>>> = vec![None; batch.len()];
        // Work list of slots to (re)send: (slot, attach program body, bill).
        let mut to_send: Vec<(usize, bool, Bill)> = (0..batch.len())
            .rev()
            .map(|i| (i, first_use && i == 0, Bill::Upload))
            .collect();
        let mut attempts = vec![0u32; batch.len()];
        let mut recoveries = 0u32;
        let per_request = self.retry.max_attempts.max(1);
        // Saturates on an out-of-range slot so the retry cap trips instead
        // of panicking (slots always come from the collector, so in
        // practice the range check never fails).
        fn bump(attempts: &mut [u32], slot: usize) -> u32 {
            attempts.get_mut(slot).map_or(u32::MAX, |a| {
                *a += 1;
                *a
            })
        }

        // One request per live slot stays in flight; the loop alternates a
        // send-flush phase with reading one response, recovering across
        // redial whenever the connection (or the server) goes away.
        while coll.pending() > 0 {
            if let Some(&(slot, with_body, bill)) = to_send.last() {
                let inputs = batch
                    .get(slot)
                    .ok_or_else(|| bad("send plan slot out of range"))?;
                let req = self.build_request(prog, inputs, coll.live_id(slot), with_body);
                match self.send_payload(&req.to_wire(), bill) {
                    Ok(()) => {
                        to_send.pop();
                        continue;
                    }
                    Err(e) if is_transient(&e) && self.reconnect.is_some() => {
                        recoveries += 1;
                        if recoveries > per_request {
                            return Err(TransportError::RetriesExhausted {
                                attempts: recoveries,
                                last: e.to_string(),
                            });
                        }
                        let dead = self.recover()?;
                        // Slots still queued here were never successfully
                        // transmitted: they keep their original bill (the
                        // primary upload line must match a fault-free run
                        // exactly) and body flag. Only already-sent,
                        // unanswered slots become recovery resends — and
                        // they go out first, so their attached program
                        // body reaches the successor before any body-less
                        // queued frame can draw a NeedProgram.
                        let mut merged = std::mem::take(&mut to_send);
                        let queued: BTreeSet<usize> = merged.iter().map(|&(s, _, _)| s).collect();
                        merged.extend(
                            resend_plan(&coll, &dead)
                                .into_iter()
                                .filter(|(s, _, _)| !queued.contains(s)),
                        );
                        to_send = merged;
                        continue;
                    }
                    Err(e) => return Err(e),
                }
            }
            match self.read_response() {
                Ok(resp) => match coll.absorb(resp)? {
                    Absorbed::Done { slot, outputs } => {
                        let cts = outputs
                            .iter()
                            .map(|wire| S::ct_from_wire(wire))
                            .collect::<Result<Vec<_>, _>>()
                            .map_err(TransportError::He)?;
                        if let Some(r) = results.get_mut(slot) {
                            *r = Some(cts);
                        }
                    }
                    Absorbed::ResendWithProgram { slot } => {
                        // The server lost the program (cache eviction or
                        // restart): resend with the body attached, billed
                        // as a retransmission — the request already paid
                        // its primary upload, and re-supplying the body is
                        // recovery traffic, not fresh work.
                        coll.rebind(slot, self.alloc_id());
                        to_send.push((slot, true, Bill::Retransmit));
                    }
                    Absorbed::Shed { slot } => {
                        if bump(&mut attempts, slot) >= per_request {
                            return Err(TransportError::DeadlineExceeded {
                                request_id: coll.live_id(slot).unwrap_or(0),
                            });
                        }
                        coll.rebind(slot, self.alloc_id());
                        to_send.push((slot, false, Bill::Retransmit));
                    }
                    Absorbed::RetryAfter {
                        slot,
                        retry_after_ms,
                    } => {
                        if bump(&mut attempts, slot) >= per_request {
                            return Err(TransportError::Unavailable { retry_after_ms });
                        }
                        std::thread::sleep(Duration::from_millis(
                            retry_after_ms.min(self.retry.max_backoff_ms),
                        ));
                        coll.rebind(slot, self.alloc_id());
                        to_send.push((slot, false, Bill::Retransmit));
                    }
                },
                Err(e) if is_transient(&e) && self.reconnect.is_some() => {
                    recoveries += 1;
                    if recoveries > per_request {
                        return Err(TransportError::RetriesExhausted {
                            attempts: recoveries,
                            last: e.to_string(),
                        });
                    }
                    let dead = self.recover()?;
                    to_send = resend_plan(&coll, &dead);
                }
                Err(e) => return Err(e),
            }
        }
        results
            .into_iter()
            .map(|r| r.ok_or_else(|| bad("missing batch result")))
            .collect()
    }

    fn alloc_id(&mut self) -> u64 {
        let id = self.next_id;
        self.next_id += 1;
        id
    }

    fn build_request(
        &self,
        prog: &PreparedProgram,
        inputs: &[(&str, &S::Ciphertext)],
        request_id: Option<u64>,
        with_body: bool,
    ) -> EvalRequest {
        EvalRequest {
            request_id: request_id.unwrap_or(0),
            program_ref: prog.program_ref,
            program: with_body.then(|| (prog.wire.clone(), prog.options)),
            deadline_ms: self.deadline_ms,
            inputs: inputs
                .iter()
                .map(|(name, ct)| (name.to_string(), S::ct_to_wire(ct)))
                .collect(),
        }
    }

    /// Redial-with-resume, re-upload the session setup, and ask the eval
    /// journal which accepted requests died with the old server process.
    /// All recovery traffic is billed to `recovery_bytes`.
    fn recover(&mut self) -> Result<BTreeSet<u64>, TransportError> {
        let (addr, seed, tenant, session, setup_wire) = {
            let rc = self
                .reconnect
                .as_ref()
                .ok_or_else(|| TransportError::Disconnected("no reconnect configured".into()))?;
            (
                Arc::clone(&rc.addr),
                rc.seed.clone(),
                rc.tenant,
                rc.session,
                Arc::clone(&rc.setup_wire),
            )
        };
        let policy = self.retry;
        let rounds = policy.max_attempts.max(1);
        let mut last = TransportError::Dropped;
        for round in 0..rounds {
            if round > 0 {
                let backoff = policy
                    .base_backoff_ms
                    .saturating_mul(1u64 << (round - 1).min(16))
                    .min(policy.max_backoff_ms);
                std::thread::sleep(Duration::from_millis(backoff));
            }
            // Re-read the address every round: a hard-killed server may
            // have been restarted on a different port.
            let one = RetryPolicy {
                max_attempts: 1,
                ..policy
            };
            let redialer = Redialer::new(lock(&addr).clone(), &seed, tenant, session)
                .with_policy(one)
                .with_opts(self.opts);
            self.io = match redialer.redial_io() {
                Ok(io) => io,
                Err(TransportError::RetriesExhausted { last: l, .. }) => {
                    last = TransportError::Disconnected(l);
                    continue;
                }
                Err(e) => return Err(e),
            };
            let exchange = |client: &mut Self, payload: &[u8]| {
                client.send_payload(payload, Bill::Recovery)?;
                client.read_response_billed(Bill::Recovery)
            };
            match exchange(self, &setup_wire) {
                Ok(EvalResponse::SetupOk) => {}
                Ok(EvalResponse::Error { message, .. }) => {
                    return Err(TransportError::Rejected(format!(
                        "session re-setup refused: {message}"
                    )))
                }
                Ok(other) => return Err(bad(format!("unexpected re-setup response {other:?}"))),
                Err(e) if is_transient(&e) => {
                    last = e;
                    continue;
                }
                Err(e) => return Err(e),
            }
            match exchange(self, JOURNAL_MAGIC) {
                Ok(EvalResponse::DeadRequests { request_ids }) => {
                    return Ok(request_ids.into_iter().collect());
                }
                Ok(other) => return Err(bad(format!("unexpected journal answer {other:?}"))),
                Err(e) if is_transient(&e) => {
                    last = e;
                    continue;
                }
                Err(e) => return Err(e),
            }
        }
        Err(TransportError::RetriesExhausted {
            attempts: rounds,
            last: last.to_string(),
        })
    }

    fn send_request(&mut self, payload: &[u8]) -> Result<(), TransportError> {
        self.send_payload(payload, Bill::Upload)
    }

    fn send_payload(&mut self, payload: &[u8], bill: Bill) -> Result<(), TransportError> {
        let wire = encode_frame(FrameKind::EvalRequest, self.seq, payload, &self.key);
        self.seq += 1;
        self.io.write_all(&wire)?;
        // Billed only after the socket accepted the bytes, so a send into
        // a dead connection is retried, not double-billed.
        match bill {
            Bill::Upload => self.ledger.record_upload(payload.len()),
            Bill::Retransmit => self.ledger.record_retransmit(payload.len()),
            Bill::Recovery => self.ledger.record_recovery(payload.len()),
            Bill::Download => {}
        }
        Ok(())
    }

    fn read_response(&mut self) -> Result<EvalResponse, TransportError> {
        self.read_response_billed(Bill::Download)
    }

    fn read_response_billed(&mut self, bill: Bill) -> Result<EvalResponse, TransportError> {
        let wire = self.io.read_blob(self.opts.recv_deadline_ms)?.ok_or(
            TransportError::TimeoutExceeded {
                budget_ms: self.opts.recv_deadline_ms,
                elapsed_ms: self.opts.recv_deadline_ms,
            },
        )?;
        let frame = decode_frame(&wire, &self.key)?;
        if frame.kind != FrameKind::EvalResponse {
            return Err(bad(format!(
                "expected an EvalResponse frame, got {:?}",
                frame.kind
            )));
        }
        match bill {
            Bill::Download => self.ledger.record_download(frame.payload.len()),
            Bill::Recovery => self.ledger.record_recovery(frame.payload.len()),
            Bill::Upload | Bill::Retransmit => {}
        }
        EvalResponse::from_wire(&frame.payload)
    }
}

/// After a recovery, every unanswered slot is resent with the program
/// body attached (the restarted server's cache is cold) — billed to
/// `recovery_bytes` when the journal confirmed the request died with the
/// old process, `retransmit_bytes` otherwise.
fn resend_plan(coll: &BatchCollector, dead: &BTreeSet<u64>) -> Vec<(usize, bool, Bill)> {
    coll.unanswered()
        .into_iter()
        .rev()
        .map(|(slot, id)| {
            let bill = if dead.contains(&id) {
                Bill::Recovery
            } else {
                Bill::Retransmit
            };
            (slot, true, bill)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_program() -> Program {
        let mut p = Program::new();
        let x = p.input("x");
        let r = p.rotate(x, 1);
        let s = p.add(x, r);
        let w = p.constant(&[0.5, 1.5]);
        let y = p.mul_plain(s, w);
        p.output(y);
        p
    }

    fn opts() -> CompilerOptions {
        CompilerOptions {
            scale_bits: 30,
            prime_bits: 45,
            max_levels: 3,
        }
    }

    #[test]
    fn program_wire_roundtrips_and_hash_is_stable() {
        let p = sample_program();
        let wire = program_to_wire(&p).unwrap();
        let back = program_from_wire(&wire).unwrap();
        assert_eq!(program_to_wire(&back).unwrap(), wire);
        assert_eq!(
            program_ref_of(&wire, &opts()),
            program_ref_of(&wire, &opts())
        );
        // Different options → different identity.
        let other = CompilerOptions {
            scale_bits: 31,
            ..opts()
        };
        assert_ne!(
            program_ref_of(&wire, &opts()),
            program_ref_of(&wire, &other)
        );
    }

    #[test]
    fn params_recipe_roundtrips_both_schemes() {
        for params in [
            HeParams::bfv_insecure(1024, &[45, 45, 46], 17).unwrap(),
            HeParams::ckks_insecure(1024, &[45, 45, 46], 38).unwrap(),
        ] {
            let wire = params_to_wire(&params);
            let mut rest = wire.as_slice();
            let back = params_from_wire(&mut rest).unwrap();
            assert!(rest.is_empty());
            assert_eq!(params_hash(&params), params_hash(&back));
            assert_eq!(back.degree(), params.degree());
            assert_eq!(back.scheme(), params.scheme());
        }
        let a = HeParams::bfv_insecure(1024, &[45, 45, 46], 17).unwrap();
        let b = HeParams::ckks_insecure(1024, &[45, 45, 46], 38).unwrap();
        assert_ne!(params_hash(&a), params_hash(&b));
    }

    #[test]
    fn request_and_response_roundtrip() {
        let p = sample_program();
        let prep = PreparedProgram::new(&p, &opts()).unwrap();
        let req = EvalRequest {
            request_id: 42,
            program_ref: prep.program_ref,
            program: Some((prep.wire.clone(), prep.options)),
            deadline_ms: Some(250),
            inputs: vec![("x".into(), vec![1, 2, 3])],
        };
        let back = EvalRequest::from_wire(&req.to_wire()).unwrap();
        assert_eq!(back.request_id, 42);
        assert_eq!(back.program_ref, prep.program_ref);
        assert_eq!(back.inputs, req.inputs);

        for resp in [
            EvalResponse::SetupOk,
            EvalResponse::Outputs {
                request_id: 7,
                outputs: vec![vec![9, 9], vec![]],
            },
            EvalResponse::NeedProgram { request_id: 3 },
            EvalResponse::Error {
                request_id: 1,
                message: "nope".into(),
            },
        ] {
            assert_eq!(EvalResponse::from_wire(&resp.to_wire()).unwrap(), resp);
        }
    }

    #[test]
    fn mismatched_program_body_is_rejected() {
        let p = sample_program();
        let prep = PreparedProgram::new(&p, &opts()).unwrap();
        let mut tampered_ref = prep.program_ref;
        tampered_ref[0] ^= 1;
        let req = EvalRequest {
            request_id: 1,
            program_ref: tampered_ref,
            program: Some((prep.wire.clone(), prep.options)),
            deadline_ms: None,
            inputs: vec![],
        };
        assert!(matches!(
            EvalRequest::from_wire(&req.to_wire()),
            Err(TransportError::Malformed(_))
        ));
    }

    #[test]
    fn unknown_op_tags_are_rejected() {
        // Rescale/ModSwitch have no wire tag at all (only source programs
        // travel; the server compiles), so any unassigned tag must come
        // back as a typed error, not a panic.
        let mut wire = Vec::new();
        wire.extend_from_slice(&1u32.to_le_bytes());
        wire.push(9);
        assert!(matches!(
            program_from_wire(&wire),
            Err(TransportError::Malformed(_))
        ));
    }

    #[test]
    fn forward_references_are_rejected() {
        // Node 0 referencing node 1 (not yet built) must be refused.
        let mut wire = Vec::new();
        wire.extend_from_slice(&1u32.to_le_bytes());
        wire.push(2); // Add
        wire.extend_from_slice(&1u32.to_le_bytes());
        wire.extend_from_slice(&0u32.to_le_bytes());
        assert!(matches!(
            program_from_wire(&wire),
            Err(TransportError::Malformed(_))
        ));
    }
}
