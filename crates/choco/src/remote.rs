//! Remote evaluation: the client-side half of the offload-server protocol.
//!
//! The paper's deployment model (§2) puts the HE kernels on the *server*:
//! the client keygens, encrypts, uploads its evaluation keys once, and then
//! streams small evaluate requests; the server hosts the compiled circuits
//! and the plaintext models. This module defines the wire protocol both
//! halves share and the [`RemoteEvaluator`] client:
//!
//! * **Session setup** ([`SessionSetup`], magic `CRS1`): the parameter
//!   recipe plus the tenant's relinearization and Galois keys in their
//!   existing `CHR*`/`CHG*` wire formats, sent once right after the
//!   authenticated TCP hello. Only *evaluation* keys ever cross the wire —
//!   never the secret key, never the full `CHB*` bundle.
//! * **Evaluate** ([`EvalRequest`], magic `CRQ1`): a [`CompiledProgram`]
//!   reference (BLAKE3 over the canonical source-program wire form and the
//!   compiler options) plus named input ciphertexts. The source program
//!   itself rides along only when the server has not seen the hash
//!   (`NeedProgram` round trip otherwise), so steady-state requests carry
//!   nothing but ciphertexts.
//! * **Responses** ([`EvalResponse`], magic `CRA1`): output ciphertexts,
//!   or a typed error.
//!
//! Every message is carried inside the session's keyed-BLAKE3 frame format
//! ([`FrameKind::EvalRequest`] / [`FrameKind::EvalResponse`]), so
//! integrity, authentication, and duplicate accounting are inherited from
//! the relay transport unchanged. All decoders are total: truncated,
//! bit-flipped, oversized, or cross-scheme inputs surface as typed
//! [`TransportError`]s, never panics.

use crate::compiler::{CompilerOptions, CompilerScheme, NodeId, Op, Program};
use crate::protocol::CommLedger;
use crate::transport::frame::{decode_frame, encode_frame, FrameKind};
use crate::transport::tcp::{dial_io, BlobIo, TcpOptions};
use crate::transport::{TagKey, TransportError};
use choco_he::params::{HeParams, SchemeType};
use choco_prng::blake3;
use std::collections::BTreeSet;
use std::marker::PhantomData;

/// Magic prefix of a serialized session setup.
pub const SETUP_MAGIC: &[u8; 4] = b"CRS1";
/// Magic prefix of a serialized evaluate request.
pub const REQUEST_MAGIC: &[u8; 4] = b"CRQ1";
/// Magic prefix of a serialized response.
pub const RESPONSE_MAGIC: &[u8; 4] = b"CRA1";

/// Upper bound on IR nodes in an uploaded program — a parse-time guard so
/// a hostile length field cannot drive allocation beyond what the frame
/// size bound already admitted.
pub const MAX_PROGRAM_NODES: usize = 1 << 20;

fn bad(msg: impl Into<String>) -> TransportError {
    TransportError::Malformed(msg.into())
}

fn take<'a>(rest: &mut &'a [u8], n: usize) -> Result<&'a [u8], TransportError> {
    if rest.len() < n {
        return Err(TransportError::Truncated {
            need: n,
            have: rest.len(),
        });
    }
    let (head, tail) = rest.split_at(n);
    *rest = tail;
    Ok(head)
}

fn take_u8(rest: &mut &[u8]) -> Result<u8, TransportError> {
    Ok(take(rest, 1)?[0])
}

fn take_u16(rest: &mut &[u8]) -> Result<u16, TransportError> {
    let b = take(rest, 2)?;
    let mut buf = [0u8; 2];
    buf.copy_from_slice(b);
    Ok(u16::from_le_bytes(buf))
}

fn take_u32(rest: &mut &[u8]) -> Result<u32, TransportError> {
    let b = take(rest, 4)?;
    let mut buf = [0u8; 4];
    buf.copy_from_slice(b);
    Ok(u32::from_le_bytes(buf))
}

fn take_u64(rest: &mut &[u8]) -> Result<u64, TransportError> {
    let b = take(rest, 8)?;
    let mut buf = [0u8; 8];
    buf.copy_from_slice(b);
    Ok(u64::from_le_bytes(buf))
}

/// Reads a `u32`-length-prefixed byte field, bounds-checked against the
/// remaining input so a hostile length cannot over-allocate.
fn take_blob<'a>(rest: &mut &'a [u8]) -> Result<&'a [u8], TransportError> {
    let len = take_u32(rest)? as usize;
    take(rest, len)
}

fn push_blob(out: &mut Vec<u8>, bytes: &[u8]) {
    out.extend_from_slice(&(bytes.len() as u32).to_le_bytes());
    out.extend_from_slice(bytes);
}

// ---------------------------------------------------------------------------
// Parameter recipe
// ---------------------------------------------------------------------------

/// Serializes a parameter set as a deterministic rebuild recipe (the same
/// approach as the session checkpoint format): scheme, security mode,
/// degree, plain modulus, scale bits, and the prime-bit list.
pub fn params_to_wire(params: &HeParams) -> Vec<u8> {
    let mut out = Vec::with_capacity(32 + 4 * params.prime_bits().len());
    out.push(match params.scheme() {
        SchemeType::Bfv => 1u8,
        SchemeType::Ckks => 2u8,
    });
    out.push(params.is_security_checked() as u8);
    out.extend_from_slice(&(params.degree() as u32).to_le_bytes());
    out.extend_from_slice(&params.plain_modulus().to_le_bytes());
    out.extend_from_slice(&params.scale_bits().to_le_bytes());
    out.extend_from_slice(&(params.prime_bits().len() as u16).to_le_bytes());
    for bits in params.prime_bits() {
        out.extend_from_slice(&bits.to_le_bytes());
    }
    out
}

/// Rebuilds a parameter set from its recipe and cross-checks the derived
/// values against the recorded ones.
///
/// # Errors
///
/// [`TransportError::Truncated`]/[`TransportError::Malformed`] on bad
/// bytes, or when the deterministic rebuild disagrees with the recipe.
pub fn params_from_wire(rest: &mut &[u8]) -> Result<HeParams, TransportError> {
    let scheme = match take_u8(rest)? {
        1 => SchemeType::Bfv,
        2 => SchemeType::Ckks,
        other => return Err(bad(format!("unknown scheme byte {other}"))),
    };
    let checked = match take_u8(rest)? {
        0 => false,
        1 => true,
        other => return Err(bad(format!("bad security flag {other}"))),
    };
    let n = take_u32(rest)? as usize;
    let plain_modulus = take_u64(rest)?;
    let scale_bits = take_u32(rest)?;
    let prime_count = take_u16(rest)? as usize;
    if prime_count > 64 {
        return Err(bad(format!("implausible prime count {prime_count}")));
    }
    let mut prime_bits = Vec::with_capacity(prime_count);
    for _ in 0..prime_count {
        prime_bits.push(take_u32(rest)?);
    }
    let params = match scheme {
        SchemeType::Bfv => {
            let plain_bits = 64 - plain_modulus.leading_zeros();
            if checked {
                HeParams::bfv(n, &prime_bits, plain_bits)
            } else {
                HeParams::bfv_insecure(n, &prime_bits, plain_bits)
            }
        }
        SchemeType::Ckks => {
            if checked {
                HeParams::ckks(n, &prime_bits, scale_bits)
            } else {
                HeParams::ckks_insecure(n, &prime_bits, scale_bits)
            }
        }
    }
    .map_err(|e| bad(format!("parameter recipe rejected: {e}")))?;
    let consistent = match scheme {
        SchemeType::Bfv => params.plain_modulus() == plain_modulus,
        SchemeType::Ckks => params.scale_bits() == scale_bits,
    };
    if !consistent || params.degree() != n {
        return Err(bad("rebuilt parameters disagree with recipe"));
    }
    Ok(params)
}

/// The cache key component identifying a parameter set: BLAKE3 over its
/// recipe. Tenants sharing a parameter set share server-side caches;
/// different sets can never collide.
pub fn params_hash(params: &HeParams) -> [u8; 32] {
    blake3::hash(&params_to_wire(params))
}

// ---------------------------------------------------------------------------
// Program wire form
// ---------------------------------------------------------------------------

/// Serializes a *source* program (no `Rescale`/`ModSwitch` nodes) into its
/// canonical wire form — the bytes [`program_ref`] hashes.
///
/// # Errors
///
/// [`TransportError::Malformed`] if the program contains compiler-inserted
/// nodes (only source programs travel; the server compiles).
pub fn program_to_wire(program: &Program) -> Result<Vec<u8>, TransportError> {
    let mut out = Vec::with_capacity(16 + program.len() * 12);
    out.extend_from_slice(&(program.len() as u32).to_le_bytes());
    for (i, op) in program.ops().iter().enumerate() {
        match op {
            Op::Input(name) => {
                out.push(0);
                if name.len() > u16::MAX as usize {
                    return Err(bad(format!("node {i}: input name too long")));
                }
                out.extend_from_slice(&(name.len() as u16).to_le_bytes());
                out.extend_from_slice(name.as_bytes());
            }
            Op::Constant(values) => {
                out.push(1);
                out.extend_from_slice(&(values.len() as u32).to_le_bytes());
                for v in values {
                    out.extend_from_slice(&v.to_bits().to_le_bytes());
                }
            }
            Op::Add(a, b) => {
                out.push(2);
                out.extend_from_slice(&(a.index() as u32).to_le_bytes());
                out.extend_from_slice(&(b.index() as u32).to_le_bytes());
            }
            Op::Sub(a, b) => {
                out.push(3);
                out.extend_from_slice(&(a.index() as u32).to_le_bytes());
                out.extend_from_slice(&(b.index() as u32).to_le_bytes());
            }
            Op::Mul(a, b) => {
                out.push(4);
                out.extend_from_slice(&(a.index() as u32).to_le_bytes());
                out.extend_from_slice(&(b.index() as u32).to_le_bytes());
            }
            Op::MulPlain(a, c) => {
                out.push(5);
                out.extend_from_slice(&(a.index() as u32).to_le_bytes());
                out.extend_from_slice(&(c.index() as u32).to_le_bytes());
            }
            Op::AddPlain(a, c) => {
                out.push(6);
                out.extend_from_slice(&(a.index() as u32).to_le_bytes());
                out.extend_from_slice(&(c.index() as u32).to_le_bytes());
            }
            Op::Rotate(a, s) => {
                out.push(7);
                out.extend_from_slice(&(a.index() as u32).to_le_bytes());
                out.extend_from_slice(&s.to_le_bytes());
            }
            Op::Rescale(_) | Op::ModSwitch(_) => {
                return Err(bad(format!(
                    "node {i}: compiled nodes cannot travel; upload source programs"
                )));
            }
        }
    }
    out.extend_from_slice(&(program.output_ids().len() as u32).to_le_bytes());
    for o in program.output_ids() {
        out.extend_from_slice(&(o.index() as u32).to_le_bytes());
    }
    Ok(out)
}

/// Rebuilds a source program from its wire form through the builder API,
/// revalidating every operand reference.
///
/// # Errors
///
/// Typed [`TransportError`]s on truncation, bad op tags, forward or
/// out-of-range operand references, or implausible node counts. Never
/// panics.
pub fn program_from_wire(bytes: &[u8]) -> Result<Program, TransportError> {
    let mut rest = bytes;
    let node_count = take_u32(&mut rest)? as usize;
    if node_count > MAX_PROGRAM_NODES {
        return Err(bad(format!("implausible node count {node_count}")));
    }
    let mut prog = Program::new();
    let operand = |rest: &mut &[u8], built: usize| -> Result<NodeId, TransportError> {
        let idx = take_u32(rest)? as usize;
        if idx >= built {
            return Err(bad(format!(
                "operand {idx} references node {built} or later"
            )));
        }
        Ok(NodeId::new(idx))
    };
    for i in 0..node_count {
        match take_u8(&mut rest)? {
            0 => {
                let len = take_u16(&mut rest)? as usize;
                let name = std::str::from_utf8(take(&mut rest, len)?)
                    .map_err(|_| bad(format!("node {i}: input name is not UTF-8")))?;
                prog.input(name);
            }
            1 => {
                let len = take_u32(&mut rest)? as usize;
                if len > rest.len() / 8 + 1 {
                    return Err(bad(format!("node {i}: constant length overruns input")));
                }
                let mut values = Vec::with_capacity(len);
                for _ in 0..len {
                    values.push(f64::from_bits(take_u64(&mut rest)?));
                }
                prog.constant(&values);
            }
            2 => {
                let (a, b) = (operand(&mut rest, i)?, operand(&mut rest, i)?);
                prog.add(a, b);
            }
            3 => {
                let (a, b) = (operand(&mut rest, i)?, operand(&mut rest, i)?);
                prog.sub(a, b);
            }
            4 => {
                let (a, b) = (operand(&mut rest, i)?, operand(&mut rest, i)?);
                prog.mul(a, b);
            }
            5 => {
                let (a, c) = (operand(&mut rest, i)?, operand(&mut rest, i)?);
                prog.mul_plain(a, c);
            }
            6 => {
                let (a, c) = (operand(&mut rest, i)?, operand(&mut rest, i)?);
                prog.add_plain(a, c);
            }
            7 => {
                let a = operand(&mut rest, i)?;
                let s = take_u64(&mut rest)? as i64;
                prog.rotate(a, s);
            }
            other => return Err(bad(format!("node {i}: unknown op tag {other}"))),
        }
    }
    let output_count = take_u32(&mut rest)? as usize;
    if output_count > node_count {
        return Err(bad("more outputs than nodes"));
    }
    for _ in 0..output_count {
        let idx = take_u32(&mut rest)? as usize;
        if idx >= node_count {
            return Err(bad(format!("output references missing node {idx}")));
        }
        prog.output(NodeId::new(idx));
    }
    if !rest.is_empty() {
        return Err(bad("trailing bytes after program"));
    }
    Ok(prog)
}

fn options_to_wire(options: &CompilerOptions) -> [u8; 12] {
    let mut out = [0u8; 12];
    let words = options
        .scale_bits
        .to_le_bytes()
        .into_iter()
        .chain(options.prime_bits.to_le_bytes())
        .chain((options.max_levels as u32).to_le_bytes());
    for (dst, src) in out.iter_mut().zip(words) {
        *dst = src;
    }
    out
}

fn options_from_wire(rest: &mut &[u8]) -> Result<CompilerOptions, TransportError> {
    let scale_bits = take_u32(rest)?;
    let prime_bits = take_u32(rest)?;
    let max_levels = take_u32(rest)? as usize;
    if max_levels == 0 || max_levels > 64 {
        return Err(bad(format!("implausible level count {max_levels}")));
    }
    Ok(CompilerOptions {
        scale_bits,
        prime_bits,
        max_levels,
    })
}

/// The identity of a compiled program on the wire: BLAKE3 over the
/// canonical program bytes and the compiler options. Together with
/// [`params_hash`] this is the server's cache key — same hash, same
/// `CompiledProgram`, same encoded operands.
pub fn program_ref_of(program_wire: &[u8], options: &CompilerOptions) -> [u8; 32] {
    let mut h = blake3::Hasher::new();
    h.update(&(program_wire.len() as u64).to_le_bytes());
    h.update(program_wire);
    h.update(&options_to_wire(options));
    h.finalize()
}

/// A program serialized once on the client, ready to reference in any
/// number of [`EvalRequest`]s.
#[derive(Debug, Clone)]
pub struct PreparedProgram {
    /// Canonical source-program bytes.
    pub wire: Vec<u8>,
    /// The compiler configuration the server must compile under.
    pub options: CompilerOptions,
    /// BLAKE3 identity of (wire, options).
    pub program_ref: [u8; 32],
}

impl PreparedProgram {
    /// Serializes and hashes a source program.
    ///
    /// # Errors
    ///
    /// [`TransportError::Malformed`] if the program contains
    /// compiler-inserted nodes.
    pub fn new(program: &Program, options: &CompilerOptions) -> Result<Self, TransportError> {
        let wire = program_to_wire(program)?;
        let program_ref = program_ref_of(&wire, options);
        Ok(PreparedProgram {
            wire,
            options: *options,
            program_ref,
        })
    }
}

// ---------------------------------------------------------------------------
// Messages
// ---------------------------------------------------------------------------

/// The one-time key upload that turns an admitted relay connection into an
/// evaluation session.
#[derive(Debug, Clone)]
pub struct SessionSetup {
    /// The tenant's parameter set (recipe form).
    pub params: HeParams,
    /// Relinearization key, `CHR1`/`CHR2` wire form.
    pub relin_wire: Vec<u8>,
    /// Galois keys, `CHG1`/`CHG2` wire form.
    pub galois_wire: Vec<u8>,
}

impl SessionSetup {
    /// Serializes the setup message.
    pub fn to_wire(&self) -> Vec<u8> {
        let params = params_to_wire(&self.params);
        let mut out = Vec::with_capacity(
            4 + params.len() + self.relin_wire.len() + self.galois_wire.len() + 8,
        );
        out.extend_from_slice(SETUP_MAGIC);
        out.extend_from_slice(&params);
        push_blob(&mut out, &self.relin_wire);
        push_blob(&mut out, &self.galois_wire);
        out
    }

    /// Decodes and validates a setup message, including the cross-scheme
    /// check: the key blobs' magics must match the parameter scheme (a BFV
    /// session cannot smuggle CKKS keys, and vice versa).
    ///
    /// # Errors
    ///
    /// Typed [`TransportError`]s; never panics.
    pub fn from_wire(bytes: &[u8]) -> Result<Self, TransportError> {
        let mut rest = bytes;
        if take(&mut rest, 4)? != SETUP_MAGIC {
            return Err(bad("bad setup magic"));
        }
        let params = params_from_wire(&mut rest)?;
        let relin_wire = take_blob(&mut rest)?.to_vec();
        let galois_wire = take_blob(&mut rest)?.to_vec();
        if !rest.is_empty() {
            return Err(bad("trailing bytes after setup"));
        }
        let (relin_magic, galois_magic): (&[u8], &[u8]) = match params.scheme() {
            SchemeType::Bfv => (b"CHR1", b"CHG1"),
            SchemeType::Ckks => (b"CHR2", b"CHG2"),
        };
        if relin_wire.get(..4) != Some(relin_magic) {
            return Err(bad(format!(
                "relin key wire does not match the {:?} parameter scheme",
                params.scheme()
            )));
        }
        if galois_wire.get(..4) != Some(galois_magic) {
            return Err(bad(format!(
                "galois key wire does not match the {:?} parameter scheme",
                params.scheme()
            )));
        }
        Ok(SessionSetup {
            params,
            relin_wire,
            galois_wire,
        })
    }
}

/// One evaluate call: a program reference, optionally the program body
/// (first use), and the named input ciphertexts.
#[derive(Debug, Clone)]
pub struct EvalRequest {
    /// Client-chosen id echoed in the response, so pipelined requests can
    /// be matched up.
    pub request_id: u64,
    /// [`program_ref_of`] the referenced program.
    pub program_ref: [u8; 32],
    /// The program body + options, included when the server may not hold
    /// the reference yet.
    pub program: Option<(Vec<u8>, CompilerOptions)>,
    /// `(input name, ciphertext wire)` pairs.
    pub inputs: Vec<(String, Vec<u8>)>,
}

impl EvalRequest {
    /// Serializes the request.
    pub fn to_wire(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(
            64 + self
                .inputs
                .iter()
                .map(|(n, c)| n.len() + c.len() + 8)
                .sum::<usize>(),
        );
        out.extend_from_slice(REQUEST_MAGIC);
        out.extend_from_slice(&self.request_id.to_le_bytes());
        out.extend_from_slice(&self.program_ref);
        match &self.program {
            Some((wire, options)) => {
                out.push(1);
                push_blob(&mut out, wire);
                out.extend_from_slice(&options_to_wire(options));
            }
            None => out.push(0),
        }
        out.extend_from_slice(&(self.inputs.len() as u16).to_le_bytes());
        for (name, ct) in &self.inputs {
            out.extend_from_slice(&(name.len() as u16).to_le_bytes());
            out.extend_from_slice(name.as_bytes());
            push_blob(&mut out, ct);
        }
        out
    }

    /// Decodes a request.
    ///
    /// # Errors
    ///
    /// Typed [`TransportError`]s; never panics. An inline program body
    /// whose hash disagrees with `program_ref` is rejected here, so cache
    /// poisoning by reference/body mismatch is impossible.
    pub fn from_wire(bytes: &[u8]) -> Result<Self, TransportError> {
        let mut rest = bytes;
        if take(&mut rest, 4)? != REQUEST_MAGIC {
            return Err(bad("bad request magic"));
        }
        let request_id = take_u64(&mut rest)?;
        let mut program_ref = [0u8; 32];
        program_ref.copy_from_slice(take(&mut rest, 32)?);
        let program = match take_u8(&mut rest)? {
            0 => None,
            1 => {
                let wire = take_blob(&mut rest)?.to_vec();
                let options = options_from_wire(&mut rest)?;
                if program_ref_of(&wire, &options) != program_ref {
                    return Err(bad("program body does not hash to its reference"));
                }
                Some((wire, options))
            }
            other => return Err(bad(format!("bad program flag {other}"))),
        };
        let input_count = take_u16(&mut rest)? as usize;
        let mut inputs = Vec::with_capacity(input_count.min(64));
        for _ in 0..input_count {
            let name_len = take_u16(&mut rest)? as usize;
            let name = std::str::from_utf8(take(&mut rest, name_len)?)
                .map_err(|_| bad("input name is not UTF-8"))?
                .to_string();
            let ct = take_blob(&mut rest)?.to_vec();
            inputs.push((name, ct));
        }
        if !rest.is_empty() {
            return Err(bad("trailing bytes after request"));
        }
        Ok(EvalRequest {
            request_id,
            program_ref,
            program,
            inputs,
        })
    }
}

/// The server's answer to one [`SessionSetup`] or [`EvalRequest`].
#[derive(Debug, Clone, PartialEq)]
pub enum EvalResponse {
    /// Session setup accepted; evaluate requests may follow.
    SetupOk,
    /// Output ciphertexts, in program-output order.
    Outputs {
        /// Echo of the request id.
        request_id: u64,
        /// Serialized output ciphertexts.
        outputs: Vec<Vec<u8>>,
    },
    /// The referenced program is unknown here — resend with the body.
    NeedProgram {
        /// Echo of the request id.
        request_id: u64,
    },
    /// The request failed; the message is the typed server-side error,
    /// rendered.
    Error {
        /// Echo of the request id (0 for setup failures).
        request_id: u64,
        /// Human-readable cause.
        message: String,
    },
}

impl EvalResponse {
    /// Serializes the response.
    pub fn to_wire(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(32);
        out.extend_from_slice(RESPONSE_MAGIC);
        match self {
            EvalResponse::SetupOk => {
                out.push(0);
                out.extend_from_slice(&0u64.to_le_bytes());
            }
            EvalResponse::Outputs {
                request_id,
                outputs,
            } => {
                out.push(1);
                out.extend_from_slice(&request_id.to_le_bytes());
                out.extend_from_slice(&(outputs.len() as u16).to_le_bytes());
                for ct in outputs {
                    push_blob(&mut out, ct);
                }
            }
            EvalResponse::NeedProgram { request_id } => {
                out.push(2);
                out.extend_from_slice(&request_id.to_le_bytes());
            }
            EvalResponse::Error {
                request_id,
                message,
            } => {
                out.push(3);
                out.extend_from_slice(&request_id.to_le_bytes());
                push_blob(&mut out, message.as_bytes());
            }
        }
        out
    }

    /// Decodes a response.
    ///
    /// # Errors
    ///
    /// Typed [`TransportError`]s; never panics.
    pub fn from_wire(bytes: &[u8]) -> Result<Self, TransportError> {
        let mut rest = bytes;
        if take(&mut rest, 4)? != RESPONSE_MAGIC {
            return Err(bad("bad response magic"));
        }
        let code = take_u8(&mut rest)?;
        let request_id = take_u64(&mut rest)?;
        let resp = match code {
            0 => EvalResponse::SetupOk,
            1 => {
                let count = take_u16(&mut rest)? as usize;
                let mut outputs = Vec::with_capacity(count.min(64));
                for _ in 0..count {
                    outputs.push(take_blob(&mut rest)?.to_vec());
                }
                EvalResponse::Outputs {
                    request_id,
                    outputs,
                }
            }
            2 => EvalResponse::NeedProgram { request_id },
            3 => {
                let msg = String::from_utf8_lossy(take_blob(&mut rest)?).into_owned();
                EvalResponse::Error {
                    request_id,
                    message: msg,
                }
            }
            other => return Err(bad(format!("unknown response code {other}"))),
        };
        if !rest.is_empty() {
            return Err(bad("trailing bytes after response"));
        }
        Ok(resp)
    }
}

// ---------------------------------------------------------------------------
// Client
// ---------------------------------------------------------------------------

/// The thin client of the remote evaluator: dials `choco-serve`, uploads
/// the evaluation keys once, and then issues evaluate calls — single or
/// pipelined — against programs it references by hash. Keeps a
/// [`CommLedger`] with the same upload/download semantics the local
/// protocol uses, so Figure-10-style accounting carries over to the remote
/// deployment unchanged.
pub struct RemoteEvaluator<S: CompilerScheme> {
    io: BlobIo,
    key: TagKey,
    seq: u64,
    ledger: CommLedger,
    sent_programs: BTreeSet<[u8; 32]>,
    opts: TcpOptions,
    _scheme: PhantomData<S>,
}

impl<S: CompilerScheme> RemoteEvaluator<S> {
    /// Dials the server, authenticates as `(tenant, session)` with the
    /// tenant seed, and uploads the session's evaluation keys.
    ///
    /// # Errors
    ///
    /// Propagates dial/handshake errors ([`TransportError::Rejected`],
    /// [`TransportError::Overloaded`], …) and any typed setup refusal.
    #[allow(clippy::too_many_arguments)]
    pub fn connect(
        addr: &str,
        seed: &[u8],
        tenant: u64,
        session: u64,
        params: &HeParams,
        relin: &S::RelinKey,
        galois: &S::GaloisKeys,
        opts: &TcpOptions,
    ) -> Result<Self, TransportError> {
        let key = TagKey::from_session_seed(seed);
        let io = dial_io(addr, &key, tenant, session, false, opts)?;
        let setup = SessionSetup {
            params: params.clone(),
            relin_wire: S::relin_to_wire(relin),
            galois_wire: S::galois_to_wire(galois),
        };
        let mut client = RemoteEvaluator {
            io,
            key,
            seq: 0,
            ledger: CommLedger::new(),
            sent_programs: BTreeSet::new(),
            opts: *opts,
            _scheme: PhantomData,
        };
        client.send_request(&setup.to_wire())?;
        match client.read_response()? {
            EvalResponse::SetupOk => Ok(client),
            EvalResponse::Error { message, .. } => Err(TransportError::Rejected(format!(
                "session setup refused: {message}"
            ))),
            other => Err(bad(format!("unexpected setup response {other:?}"))),
        }
    }

    /// The client-side traffic ledger (requests → uploads, responses →
    /// downloads; payload bytes, frame overhead excluded).
    pub fn ledger(&self) -> &CommLedger {
        &self.ledger
    }

    /// Evaluates `prog` on `inputs`, blocking for the result.
    ///
    /// # Errors
    ///
    /// Propagates transport errors and typed server-side refusals
    /// ([`TransportError::Rejected`] carrying the server's message).
    pub fn evaluate(
        &mut self,
        prog: &PreparedProgram,
        inputs: &[(&str, &S::Ciphertext)],
    ) -> Result<Vec<S::Ciphertext>, TransportError> {
        let mut out = self.evaluate_batch(prog, &[inputs])?;
        out.pop()
            .ok_or_else(|| bad("batch of one returned no result"))
    }

    /// Pipelines one evaluate request per element of `batch` — all
    /// requests are written before the first response is read, which is
    /// what lets the server coalesce them into one kernel invocation —
    /// and returns the results in request order.
    ///
    /// # Errors
    ///
    /// Propagates transport errors; any per-request server refusal fails
    /// the whole batch with its typed message.
    pub fn evaluate_batch(
        &mut self,
        prog: &PreparedProgram,
        batch: &[&[(&str, &S::Ciphertext)]],
    ) -> Result<Vec<Vec<S::Ciphertext>>, TransportError> {
        let first_use = self.sent_programs.insert(prog.program_ref);
        let base_id = self.seq;
        let mut ids = Vec::with_capacity(batch.len());
        for (i, inputs) in batch.iter().enumerate() {
            let request_id = base_id + i as u64;
            let req = EvalRequest {
                request_id,
                program_ref: prog.program_ref,
                program: (first_use && i == 0).then(|| (prog.wire.clone(), prog.options)),
                inputs: inputs
                    .iter()
                    .map(|(name, ct)| (name.to_string(), S::ct_to_wire(ct)))
                    .collect(),
            };
            self.send_request(&req.to_wire())?;
            ids.push(request_id);
        }
        let mut results: Vec<Option<Vec<S::Ciphertext>>> = vec![None; batch.len()];
        let mut pending = batch.len();
        while pending > 0 {
            match self.read_response()? {
                EvalResponse::Outputs {
                    request_id,
                    outputs,
                } => {
                    let slot = ids
                        .iter()
                        .position(|id| *id == request_id)
                        .ok_or_else(|| bad(format!("unexpected response id {request_id}")))?;
                    let cts = outputs
                        .iter()
                        .map(|wire| S::ct_from_wire(wire))
                        .collect::<Result<Vec<_>, _>>()
                        .map_err(TransportError::He)?;
                    let entry = results
                        .get_mut(slot)
                        .ok_or_else(|| bad(format!("unexpected response id {request_id}")))?;
                    if entry.replace(cts).is_some() {
                        return Err(bad(format!("duplicate response for id {request_id}")));
                    }
                    pending -= 1;
                }
                EvalResponse::NeedProgram { request_id } => {
                    // The server lost the program (e.g. cache eviction):
                    // resend that request with the body attached.
                    let slot = ids
                        .iter()
                        .position(|id| *id == request_id)
                        .ok_or_else(|| bad(format!("unexpected response id {request_id}")))?;
                    let inputs = batch
                        .get(slot)
                        .ok_or_else(|| bad(format!("unexpected response id {request_id}")))?;
                    let resend_id = self.seq;
                    let req = EvalRequest {
                        request_id: resend_id,
                        program_ref: prog.program_ref,
                        program: Some((prog.wire.clone(), prog.options)),
                        inputs: inputs
                            .iter()
                            .map(|(name, ct)| (name.to_string(), S::ct_to_wire(ct)))
                            .collect(),
                    };
                    self.send_request(&req.to_wire())?;
                    if let Some(id) = ids.get_mut(slot) {
                        *id = resend_id;
                    }
                }
                EvalResponse::Error {
                    request_id,
                    message,
                } => {
                    return Err(TransportError::Rejected(format!(
                        "evaluate {request_id} refused: {message}"
                    )));
                }
                EvalResponse::SetupOk => {
                    return Err(bad("unexpected setup ack mid-batch"));
                }
            }
        }
        results
            .into_iter()
            .map(|r| r.ok_or_else(|| bad("missing batch result")))
            .collect()
    }

    fn send_request(&mut self, payload: &[u8]) -> Result<(), TransportError> {
        let wire = encode_frame(FrameKind::EvalRequest, self.seq, payload, &self.key);
        self.seq += 1;
        self.ledger.record_upload(payload.len());
        self.io.write_all(&wire)
    }

    fn read_response(&mut self) -> Result<EvalResponse, TransportError> {
        let wire = self.io.read_blob(self.opts.recv_deadline_ms)?.ok_or(
            TransportError::TimeoutExceeded {
                budget_ms: self.opts.recv_deadline_ms,
                elapsed_ms: self.opts.recv_deadline_ms,
            },
        )?;
        let frame = decode_frame(&wire, &self.key)?;
        if frame.kind != FrameKind::EvalResponse {
            return Err(bad(format!(
                "expected an EvalResponse frame, got {:?}",
                frame.kind
            )));
        }
        self.ledger.record_download(frame.payload.len());
        EvalResponse::from_wire(&frame.payload)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_program() -> Program {
        let mut p = Program::new();
        let x = p.input("x");
        let r = p.rotate(x, 1);
        let s = p.add(x, r);
        let w = p.constant(&[0.5, 1.5]);
        let y = p.mul_plain(s, w);
        p.output(y);
        p
    }

    fn opts() -> CompilerOptions {
        CompilerOptions {
            scale_bits: 30,
            prime_bits: 45,
            max_levels: 3,
        }
    }

    #[test]
    fn program_wire_roundtrips_and_hash_is_stable() {
        let p = sample_program();
        let wire = program_to_wire(&p).unwrap();
        let back = program_from_wire(&wire).unwrap();
        assert_eq!(program_to_wire(&back).unwrap(), wire);
        assert_eq!(
            program_ref_of(&wire, &opts()),
            program_ref_of(&wire, &opts())
        );
        // Different options → different identity.
        let other = CompilerOptions {
            scale_bits: 31,
            ..opts()
        };
        assert_ne!(
            program_ref_of(&wire, &opts()),
            program_ref_of(&wire, &other)
        );
    }

    #[test]
    fn params_recipe_roundtrips_both_schemes() {
        for params in [
            HeParams::bfv_insecure(1024, &[45, 45, 46], 17).unwrap(),
            HeParams::ckks_insecure(1024, &[45, 45, 46], 38).unwrap(),
        ] {
            let wire = params_to_wire(&params);
            let mut rest = wire.as_slice();
            let back = params_from_wire(&mut rest).unwrap();
            assert!(rest.is_empty());
            assert_eq!(params_hash(&params), params_hash(&back));
            assert_eq!(back.degree(), params.degree());
            assert_eq!(back.scheme(), params.scheme());
        }
        let a = HeParams::bfv_insecure(1024, &[45, 45, 46], 17).unwrap();
        let b = HeParams::ckks_insecure(1024, &[45, 45, 46], 38).unwrap();
        assert_ne!(params_hash(&a), params_hash(&b));
    }

    #[test]
    fn request_and_response_roundtrip() {
        let p = sample_program();
        let prep = PreparedProgram::new(&p, &opts()).unwrap();
        let req = EvalRequest {
            request_id: 42,
            program_ref: prep.program_ref,
            program: Some((prep.wire.clone(), prep.options)),
            inputs: vec![("x".into(), vec![1, 2, 3])],
        };
        let back = EvalRequest::from_wire(&req.to_wire()).unwrap();
        assert_eq!(back.request_id, 42);
        assert_eq!(back.program_ref, prep.program_ref);
        assert_eq!(back.inputs, req.inputs);

        for resp in [
            EvalResponse::SetupOk,
            EvalResponse::Outputs {
                request_id: 7,
                outputs: vec![vec![9, 9], vec![]],
            },
            EvalResponse::NeedProgram { request_id: 3 },
            EvalResponse::Error {
                request_id: 1,
                message: "nope".into(),
            },
        ] {
            assert_eq!(EvalResponse::from_wire(&resp.to_wire()).unwrap(), resp);
        }
    }

    #[test]
    fn mismatched_program_body_is_rejected() {
        let p = sample_program();
        let prep = PreparedProgram::new(&p, &opts()).unwrap();
        let mut tampered_ref = prep.program_ref;
        tampered_ref[0] ^= 1;
        let req = EvalRequest {
            request_id: 1,
            program_ref: tampered_ref,
            program: Some((prep.wire.clone(), prep.options)),
            inputs: vec![],
        };
        assert!(matches!(
            EvalRequest::from_wire(&req.to_wire()),
            Err(TransportError::Malformed(_))
        ));
    }

    #[test]
    fn unknown_op_tags_are_rejected() {
        // Rescale/ModSwitch have no wire tag at all (only source programs
        // travel; the server compiles), so any unassigned tag must come
        // back as a typed error, not a panic.
        let mut wire = Vec::new();
        wire.extend_from_slice(&1u32.to_le_bytes());
        wire.push(9);
        assert!(matches!(
            program_from_wire(&wire),
            Err(TransportError::Malformed(_))
        ));
    }

    #[test]
    fn forward_references_are_rejected() {
        // Node 0 referencing node 1 (not yet built) must be refused.
        let mut wire = Vec::new();
        wire.extend_from_slice(&1u32.to_le_bytes());
        wire.push(2); // Add
        wire.extend_from_slice(&1u32.to_le_bytes());
        wire.extend_from_slice(&0u32.to_le_bytes());
        assert!(matches!(
            program_from_wire(&wire),
            Err(TransportError::Malformed(_))
        ));
    }
}
