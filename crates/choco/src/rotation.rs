//! Rotational redundancy: the paper's windowed-rotation algorithm (§3.3).
//!
//! A *windowed rotation* cyclically rotates the elements of a sub-range of a
//! vector. Standard HE can only rotate whole ciphertexts, so prior work
//! (Gazelle/HElib-style) synthesizes windowed rotations from two full
//! rotations, two masking multiplies, and an addition (Figure 4A) — and each
//! masking multiply is a plaintext multiplication that consumes
//! `≈ log2(t·√2N)` bits of noise budget (Table 4).
//!
//! Rotational redundancy (Figure 4B) instead packs the window with its
//! wrap-around values replicated on both sides **before encryption**. Any
//! windowed rotation by up to the redundancy amount then becomes a *single*
//! plain ciphertext rotation, whose noise cost is a couple of bits. The
//! client discards the redundant slots when it unpacks.
//!
//! Both the redundant path and the masked baseline are implemented here and
//! verified against each other; Table 4's bench contrasts their noise
//! behaviour.

use choco_he::bfv::{BfvContext, Ciphertext, GaloisKeys};
use choco_he::HeError;

/// A packing of a `window`-element vector with `redundancy` wrap-around
/// entries replicated on each side.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RedundantLayout {
    window: usize,
    redundancy: usize,
}

impl RedundantLayout {
    /// Creates a layout for `window` values supporting rotations up to
    /// `±redundancy`.
    ///
    /// # Panics
    ///
    /// Panics if `window == 0` or `redundancy > window` (wrapping more than
    /// a full window is never needed: rotations are modulo the window).
    pub fn new(window: usize, redundancy: usize) -> Self {
        assert!(window > 0, "window must be nonempty");
        assert!(
            redundancy <= window,
            "redundancy beyond one window is redundant"
        );
        RedundantLayout { window, redundancy }
    }

    /// Window size `W`.
    pub fn window(&self) -> usize {
        self.window
    }

    /// Redundancy `R` (maximum supported windowed-rotation distance).
    pub fn redundancy(&self) -> usize {
        self.redundancy
    }

    /// Total packed length `W + 2R`.
    pub fn packed_len(&self) -> usize {
        self.window + 2 * self.redundancy
    }

    /// Slot offset where the window of interest starts.
    pub fn window_offset(&self) -> usize {
        self.redundancy
    }

    /// Utilization: fraction of packed slots that carry unique values.
    pub fn utilization(&self) -> f64 {
        self.window as f64 / self.packed_len() as f64
    }

    /// Packs `values` (length `W`) into a `W + 2R` slot vector:
    /// `[v_{W−R}…v_{W−1} | v_0…v_{W−1} | v_0…v_{R−1}]`.
    ///
    /// # Panics
    ///
    /// Panics if `values.len() != window`.
    pub fn pack(&self, values: &[u64]) -> Vec<u64> {
        assert_eq!(values.len(), self.window, "value count must equal window");
        let mut out = Vec::with_capacity(self.packed_len());
        out.extend_from_slice(&values[self.window - self.redundancy..]);
        out.extend_from_slice(values);
        out.extend_from_slice(&values[..self.redundancy]);
        out
    }

    /// Reads the window of interest back out of a packed slot vector.
    ///
    /// # Panics
    ///
    /// Panics if `slots` is shorter than the packed length.
    pub fn extract(&self, slots: &[u64]) -> Vec<u64> {
        assert!(slots.len() >= self.packed_len(), "slot vector too short");
        slots[self.redundancy..self.redundancy + self.window].to_vec()
    }

    /// The plaintext-side reference result: `values` rotated left by `r`
    /// within the window (negative `r` rotates right).
    pub fn reference_rotate(&self, values: &[u64], r: i64) -> Vec<u64> {
        let w = self.window as i64;
        (0..w)
            .map(|j| values[((j + r).rem_euclid(w)) as usize])
            .collect()
    }
}

/// Performs a windowed rotation on a ciphertext packed with rotational
/// redundancy: a single row rotation (Figure 4B).
///
/// The rotation distance `r` is positive-left / negative-right and must not
/// exceed the layout's redundancy.
///
/// # Errors
///
/// Propagates missing-Galois-key and ciphertext-shape errors.
///
/// # Panics
///
/// Panics if `|r|` exceeds the layout redundancy.
pub fn windowed_rotate_redundant(
    ctx: &BfvContext,
    ct: &Ciphertext,
    layout: &RedundantLayout,
    r: i64,
    gks: &GaloisKeys,
) -> Result<Ciphertext, HeError> {
    assert!(
        r.unsigned_abs() as usize <= layout.redundancy(),
        "rotation {r} exceeds redundancy {}",
        layout.redundancy()
    );
    if r == 0 {
        return Ok(ct.clone());
    }
    ctx.evaluator().rotate_rows(ct, r, gks)
}

/// Performs many windowed rotations of the *same* redundantly-packed
/// ciphertext, sharing a single hoisted key-switch decomposition across all
/// nonzero distances — the batched form of [`windowed_rotate_redundant`]
/// for kernels that need every shift of one input (conv taps, matvec
/// diagonals).
///
/// # Errors
///
/// Propagates missing-Galois-key and ciphertext-shape errors; a rotation
/// distance exceeding the layout redundancy is reported as
/// [`HeError::Mismatch`].
pub fn windowed_rotate_redundant_many(
    ctx: &BfvContext,
    ct: &Ciphertext,
    layout: &RedundantLayout,
    rotations: &[i64],
    gks: &GaloisKeys,
) -> Result<Vec<Ciphertext>, HeError> {
    for &r in rotations {
        if r.unsigned_abs() as usize > layout.redundancy() {
            return Err(HeError::Mismatch(format!(
                "rotation {r} exceeds redundancy {}",
                layout.redundancy()
            )));
        }
    }
    let steps: Vec<i64> = rotations.iter().copied().filter(|&r| r != 0).collect();
    let mut hoisted = if steps.is_empty() {
        Vec::new()
    } else {
        ctx.evaluator().rotate_rows_many(ct, &steps, gks)?
    }
    .into_iter();
    rotations
        .iter()
        .map(|&r| {
            if r == 0 {
                Ok(ct.clone())
            } else {
                hoisted
                    .next()
                    .ok_or_else(|| HeError::Mismatch("one rotation per nonzero distance".into()))
            }
        })
        .collect()
}

/// Performs a windowed rotation via the arbitrary-permutation baseline
/// (Figure 4A): rotate + mask, counter-rotate + mask, add.
///
/// The ciphertext must hold the window's values in slots `[0, W)` with
/// anything elsewhere; slots outside the window are zeroed in the result.
///
/// # Errors
///
/// Propagates rotation/encoding errors.
///
/// # Panics
///
/// Panics if `r` is not in `(0, W)` (use the redundant path for `r == 0`).
pub fn windowed_rotate_masked(
    ctx: &BfvContext,
    ct: &Ciphertext,
    window: usize,
    r: usize,
    gks: &GaloisKeys,
) -> Result<Ciphertext, HeError> {
    assert!(r > 0 && r < window, "masked rotation needs 0 < r < window");
    let encoder = ctx.batch_encoder()?;
    let eval = ctx.evaluator();
    let row = ctx.degree() / 2;
    assert!(window <= row, "window exceeds row size");

    // Part 1: values that stay in range after rotating left by r.
    let rot1 = eval.rotate_rows(ct, r as i64, gks)?;
    let mut mask1 = vec![0u64; row];
    for slot in mask1.iter_mut().take(window - r) {
        *slot = 1;
    }
    let m1 = encoder.encode(&mask1)?;
    let part1 = eval.multiply_plain(&rot1, &m1);

    // Part 2: wrap-around values, brought in by rotating right by W − r.
    let rot2 = eval.rotate_rows(ct, -((window - r) as i64), gks)?;
    let mut mask2 = vec![0u64; row];
    for slot in mask2.iter_mut().skip(window - r).take(r) {
        *slot = 1;
    }
    let m2 = encoder.encode(&mask2)?;
    let part2 = eval.multiply_plain(&rot2, &m2);

    eval.add(&part1, &part2)
}

#[cfg(test)]
mod tests {
    use super::*;
    use choco_he::params::HeParams;
    use choco_prng::Blake3Rng;

    fn setup() -> (BfvContext, choco_he::bfv::KeyBundle, GaloisKeys, Blake3Rng) {
        let params = HeParams::bfv_insecure(1024, &[40, 40, 41], 17).unwrap();
        let ctx = BfvContext::new(&params).unwrap();
        let mut rng = Blake3Rng::from_seed(b"rotation tests");
        let keys = ctx.keygen(&mut rng);
        let gks = ctx
            .galois_keys(
                keys.secret_key(),
                &[1, 2, 3, 4, -1, -2, -3, -4, -12, -13, -14, -15],
                &mut rng,
            )
            .unwrap();
        (ctx, keys, gks, rng)
    }

    #[test]
    fn pack_matches_figure_4b() {
        let layout = RedundantLayout::new(4, 2);
        assert_eq!(layout.pack(&[1, 2, 3, 4]), vec![3, 4, 1, 2, 3, 4, 1, 2]);
        assert_eq!(layout.packed_len(), 8);
        assert_eq!(layout.window_offset(), 2);
        assert!((layout.utilization() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn pack_extract_roundtrip() {
        let layout = RedundantLayout::new(7, 3);
        let values: Vec<u64> = (10..17).collect();
        let packed = layout.pack(&values);
        assert_eq!(layout.extract(&packed), values);
    }

    #[test]
    fn reference_rotation_wraps_both_ways() {
        let layout = RedundantLayout::new(4, 2);
        let v = [1u64, 2, 3, 4];
        assert_eq!(layout.reference_rotate(&v, 1), vec![2, 3, 4, 1]);
        assert_eq!(layout.reference_rotate(&v, -1), vec![4, 1, 2, 3]);
        assert_eq!(layout.reference_rotate(&v, 0), vec![1, 2, 3, 4]);
    }

    #[test]
    fn redundant_rotation_equals_reference() {
        let (ctx, keys, gks, mut rng) = setup();
        let encoder = ctx.batch_encoder().unwrap();
        let layout = RedundantLayout::new(16, 4);
        let values: Vec<u64> = (1..=16).collect();
        let packed = layout.pack(&values);
        let pt = encoder.encode(&packed).unwrap();
        let ct = ctx.encryptor(keys.public_key()).encrypt(&pt, &mut rng);
        for r in [1i64, 3, -2, -4] {
            let rotated = windowed_rotate_redundant(&ctx, &ct, &layout, r, &gks).unwrap();
            let slots = encoder
                .decode(&ctx.decryptor(keys.secret_key()).decrypt(&rotated))
                .unwrap();
            assert_eq!(
                layout.extract(&slots),
                layout.reference_rotate(&values, r),
                "rotation by {r}"
            );
        }
    }

    #[test]
    fn masked_rotation_equals_reference() {
        let (ctx, keys, gks, mut rng) = setup();
        let encoder = ctx.batch_encoder().unwrap();
        let window = 16usize;
        let values: Vec<u64> = (1..=16).collect();
        let pt = encoder.encode(&values).unwrap();
        let ct = ctx.encryptor(keys.public_key()).encrypt(&pt, &mut rng);
        let layout = RedundantLayout::new(window, window);
        for r in [1usize, 3, 4] {
            let rotated = windowed_rotate_masked(&ctx, &ct, window, r, &gks).unwrap();
            let slots = encoder
                .decode(&ctx.decryptor(keys.secret_key()).decrypt(&rotated))
                .unwrap();
            assert_eq!(
                &slots[..window],
                &layout.reference_rotate(&values, r as i64)[..],
                "masked rotation by {r}"
            );
        }
    }

    #[test]
    fn redundant_path_preserves_noise_budget_vs_masked() {
        // The paper's Table 4 claim in miniature: one redundant windowed
        // rotation costs a few bits; the masked baseline costs tens.
        let (ctx, keys, gks, mut rng) = setup();
        let encoder = ctx.batch_encoder().unwrap();
        let dec = ctx.decryptor(keys.secret_key());
        let layout = RedundantLayout::new(16, 4);
        let values: Vec<u64> = (1..=16).collect();

        let packed_pt = encoder.encode(&layout.pack(&values)).unwrap();
        let ct_red = ctx
            .encryptor(keys.public_key())
            .encrypt(&packed_pt, &mut rng);
        let fresh = dec.invariant_noise_budget(&ct_red);

        let red = windowed_rotate_redundant(&ctx, &ct_red, &layout, 3, &gks).unwrap();
        let after_red = dec.invariant_noise_budget(&red);

        let plain_pt = encoder.encode(&values).unwrap();
        let ct_mask = ctx
            .encryptor(keys.public_key())
            .encrypt(&plain_pt, &mut rng);
        let masked = windowed_rotate_masked(&ctx, &ct_mask, 16, 3, &gks).unwrap();
        let after_mask = dec.invariant_noise_budget(&masked);

        let red_cost = fresh - after_red;
        let mask_cost = fresh - after_mask;
        assert!(red_cost < 10.0, "redundant rotation cost {red_cost} bits");
        assert!(
            mask_cost > red_cost + 8.0,
            "masked permute should cost much more: {mask_cost} vs {red_cost}"
        );
    }

    #[test]
    #[should_panic(expected = "exceeds redundancy")]
    fn redundant_rotation_rejects_overlong_step() {
        let (ctx, keys, gks, mut rng) = setup();
        let encoder = ctx.batch_encoder().unwrap();
        let layout = RedundantLayout::new(8, 2);
        let pt = encoder
            .encode(&layout.pack(&[1, 2, 3, 4, 5, 6, 7, 8]))
            .unwrap();
        let ct = ctx.encryptor(keys.public_key()).encrypt(&pt, &mut rng);
        let _ = windowed_rotate_redundant(&ctx, &ct, &layout, 3, &gks);
    }

    #[test]
    #[should_panic(expected = "redundancy beyond one window")]
    fn layout_rejects_excess_redundancy() {
        RedundantLayout::new(4, 5);
    }
}
