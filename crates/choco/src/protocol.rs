//! The client-aided protocol: roles, key distribution, and the
//! communication ledger — generic over the homomorphic scheme.
//!
//! CHOCO's trust model (§3.1): a trusted, resource-constrained client holds
//! the secret key; an untrusted but semi-honest server holds only public
//! material (encryption key, relinearization key, Galois keys) and performs
//! every encrypted linear operation. The client decrypts intermediate
//! results, applies non-linear plaintext operations, repacks, re-encrypts.
//!
//! The roles are [`Client<S>`] and [`Server<S>`] for any
//! [`HeScheme`](choco_he::HeScheme) — `Client<Bfv>` for the exact integer
//! workloads, `Client<Ckks>` for the approximate ones. Workloads written
//! against the generic surface run under either scheme.
//!
//! Every byte that crosses the link is recorded in a [`CommLedger`] — the
//! quantity Figures 10, 11, 13 and 14 report — and the client counts its
//! encryption/decryption operations, which the CHOCO-TACO model multiplies
//! by per-op hardware costs (§5.2 methodology).

use choco_he::bfv::{Ciphertext, Plaintext};
use choco_he::params::HeParams;
use choco_he::{Bfv, Ckks, HeError, HeScheme};
use choco_prng::Blake3Rng;

/// Running totals of client↔server traffic.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CommLedger {
    /// Bytes sent client → server.
    pub upload_bytes: u64,
    /// Bytes sent server → client.
    pub download_bytes: u64,
    /// Ciphertexts sent client → server.
    pub uploads: u32,
    /// Ciphertexts sent server → client.
    pub downloads: u32,
    /// Communication rounds (one round = at least one transfer each way).
    pub rounds: u32,
    /// Extra wire bytes spent re-sending frames the transport layer lost or
    /// rejected (tag mismatch, truncation, drop). Kept separate from
    /// `upload_bytes`/`download_bytes` so Figure-10-style reports under a
    /// fault schedule stay point-comparable to the fault-free baseline.
    pub retransmit_bytes: u64,
    /// Client-aided noise-refresh round trips triggered by the transport
    /// watchdog (download → decrypt → re-encrypt → upload). The refresh
    /// traffic itself is billed to the regular byte counters.
    pub refresh_rounds: u32,
    /// Extra wire bytes spent recovering from a crash: the reconnect
    /// handshake plus any state re-uploaded after a resume. Kept separate
    /// from `upload_bytes` so a crash-interrupted run stays point-comparable
    /// to its uninterrupted twin.
    pub recovery_bytes: u64,
}

impl CommLedger {
    /// A fresh, empty ledger.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a client → server transfer of `bytes`.
    pub fn record_upload(&mut self, bytes: usize) {
        self.upload_bytes += bytes as u64;
        self.uploads += 1;
    }

    /// Records a server → client transfer of `bytes`.
    pub fn record_download(&mut self, bytes: usize) {
        self.download_bytes += bytes as u64;
        self.downloads += 1;
    }

    /// Marks the end of a communication round.
    pub fn end_round(&mut self) {
        self.rounds += 1;
    }

    /// Records `bytes` of retransmitted wire traffic (lost/corrupt frames
    /// re-sent by the transport layer).
    pub fn record_retransmit(&mut self, bytes: usize) {
        self.retransmit_bytes += bytes as u64;
    }

    /// Records one watchdog-triggered noise-refresh round trip.
    pub fn record_refresh(&mut self) {
        self.refresh_rounds += 1;
    }

    /// Records `bytes` of crash-recovery traffic (reconnect handshake and
    /// state re-uploads after a resume).
    pub fn record_recovery(&mut self, bytes: usize) {
        self.recovery_bytes += bytes as u64;
    }

    /// Total bytes both ways.
    pub fn total_bytes(&self) -> u64 {
        self.upload_bytes + self.download_bytes
    }

    /// Total bytes in mebibytes.
    pub fn total_mib(&self) -> f64 {
        self.total_bytes() as f64 / (1024.0 * 1024.0)
    }

    /// Folds another ledger into this one.
    pub fn merge(&mut self, other: &CommLedger) {
        self.upload_bytes += other.upload_bytes;
        self.download_bytes += other.download_bytes;
        self.uploads += other.uploads;
        self.downloads += other.downloads;
        self.rounds += other.rounds;
        self.retransmit_bytes += other.retransmit_bytes;
        self.refresh_rounds += other.refresh_rounds;
        self.recovery_bytes += other.recovery_bytes;
    }
}

/// Per-tenant communication accounting: a keyed map of [`CommLedger`]s, one
/// per tenant id, so a multi-tenant server bills each tenant exactly. Kept
/// as a separate type (rather than a tenant field on [`CommLedger`]) so the
/// single-session ledger — and the checkpoint format that serializes it
/// field by field — is unchanged.
///
/// Iteration order is the tenant-id order (`BTreeMap`), so reports are
/// deterministic.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LedgerBook {
    ledgers: std::collections::BTreeMap<u64, CommLedger>,
}

impl LedgerBook {
    /// An empty book.
    pub fn new() -> Self {
        Self::default()
    }

    /// The mutable ledger for `tenant`, created empty on first touch.
    pub fn bill(&mut self, tenant: u64) -> &mut CommLedger {
        self.ledgers.entry(tenant).or_default()
    }

    /// The ledger for `tenant`, if it has ever been billed.
    pub fn get(&self, tenant: u64) -> Option<&CommLedger> {
        self.ledgers.get(&tenant)
    }

    /// Number of tenants with an entry.
    pub fn tenants(&self) -> usize {
        self.ledgers.len()
    }

    /// Iterates `(tenant, ledger)` in tenant-id order.
    pub fn iter(&self) -> impl Iterator<Item = (u64, &CommLedger)> {
        self.ledgers.iter().map(|(t, l)| (*t, l))
    }

    /// Folds another book into this one, tenant by tenant.
    pub fn merge(&mut self, other: &LedgerBook) {
        for (tenant, ledger) in other.iter() {
            self.bill(tenant).merge(ledger);
        }
    }

    /// The sum of every tenant's ledger.
    pub fn combined(&self) -> CommLedger {
        let mut total = CommLedger::new();
        for (_, ledger) in self.iter() {
            total.merge(ledger);
        }
        total
    }
}

/// The trusted client role: owns the secret key, encrypts, decrypts, and
/// counts its cryptographic operations. Generic over the scheme `S`.
#[derive(Debug)]
pub struct Client<S: HeScheme> {
    ctx: S::Context,
    keys: S::KeyBundle,
    rng: Blake3Rng,
    enc_ops: u64,
    dec_ops: u64,
}

impl<S: HeScheme> Client<S> {
    /// Creates a client with fresh keys from `seed`.
    ///
    /// # Errors
    ///
    /// Propagates context construction errors.
    pub fn new(params: &HeParams, seed: &[u8]) -> Result<Self, HeError> {
        let ctx = S::context(params)?;
        let mut rng = Blake3Rng::from_seed(seed);
        let keys = S::keygen(&ctx, &mut rng);
        Ok(Client {
            ctx,
            keys,
            rng,
            enc_ops: 0,
            dec_ops: 0,
        })
    }

    /// The HE context (shared with the server).
    pub fn context(&self) -> &S::Context {
        &self.ctx
    }

    /// Provisions the untrusted server: public key, relin key, Galois keys
    /// for the requested rotation steps. (One-time offline setup.)
    ///
    /// # Errors
    ///
    /// Propagates key-generation errors.
    pub fn provision_server(&mut self, rotation_steps: &[i64]) -> Result<Server<S>, HeError> {
        let relin = S::relin_key(&self.ctx, &self.keys, &mut self.rng)?;
        let galois = S::galois_keys(&self.ctx, &self.keys, rotation_steps, &mut self.rng)?;
        Ok(Server {
            ctx: self.ctx.clone(),
            public: S::public_key(&self.keys).clone(),
            relin,
            galois,
        })
    }

    /// Encrypts a slot vector (counted as one encryption op).
    ///
    /// # Errors
    ///
    /// Propagates encoding errors.
    // choco-lint: secret (public: values)
    pub fn encrypt(&mut self, values: &[S::Value]) -> Result<S::Ciphertext, HeError> {
        self.enc_ops += 1;
        S::encrypt(&self.ctx, &self.keys, values, &mut self.rng)
    }

    /// Decrypts to a slot vector (counted as one decryption op).
    ///
    /// # Errors
    ///
    /// Propagates decoding errors.
    // choco-lint: secret (public: ct)
    pub fn decrypt(&mut self, ct: &S::Ciphertext) -> Result<Vec<S::Value>, HeError> {
        self.dec_ops += 1;
        S::decrypt(&self.ctx, &self.keys, ct)
    }

    /// Remaining computation headroom of a ciphertext: noise-budget bits
    /// (BFV) or remaining rescale levels (CKKS). The transport watchdog
    /// refreshes when this drops below the session's floor.
    pub fn health(&self, ct: &S::Ciphertext) -> f64 {
        S::health(&self.ctx, &self.keys, ct)
    }

    /// Quantizes reals into the scheme's slot domain at fixed-point depth
    /// `depth` (see [`HeScheme::quantize`]).
    pub fn quantize(&self, values: &[f64], scale_bits: u32, depth: u32) -> Vec<S::Value> {
        S::quantize(&self.ctx, values, scale_bits, depth)
    }

    /// Inverse of [`Client::quantize`].
    pub fn dequantize(&self, values: &[S::Value], scale_bits: u32, depth: u32) -> Vec<f64> {
        S::dequantize(&self.ctx, values, scale_bits, depth)
    }

    /// Number of encryptions performed so far.
    pub fn encryption_count(&self) -> u64 {
        self.enc_ops
    }

    /// Number of decryptions performed so far.
    pub fn decryption_count(&self) -> u64 {
        self.dec_ops
    }

    /// Rebuilds a client from checkpointed parts. The caller is responsible
    /// for fast-forwarding `rng` to the checkpointed draw offset.
    // choco-lint: secret (public: ctx)
    pub(crate) fn from_parts(
        ctx: S::Context,
        keys: S::KeyBundle,
        rng: Blake3Rng,
        enc_ops: u64,
        dec_ops: u64,
    ) -> Self {
        Client {
            ctx,
            keys,
            rng,
            enc_ops,
            dec_ops,
        }
    }

    /// The client's key bundle (checkpoint serialization only).
    // choco-lint: secret
    pub(crate) fn keys(&self) -> &S::KeyBundle {
        &self.keys
    }

    /// Bytes drawn from the client RNG so far — together with the session
    /// seed this pins the RNG state for exact resume.
    pub(crate) fn rng_bytes_drawn(&self) -> u64 {
        self.rng.bytes_drawn()
    }
}

impl Client<Bfv> {
    /// Encrypts a slot vector (BFV-named convenience for
    /// [`Client::encrypt`]).
    ///
    /// # Errors
    ///
    /// Propagates encoding errors.
    pub fn encrypt_slots(&mut self, values: &[u64]) -> Result<Ciphertext, HeError> {
        self.encrypt(values)
    }

    /// Decrypts to a slot vector (BFV-named convenience for
    /// [`Client::decrypt`]).
    ///
    /// # Errors
    ///
    /// Propagates decoding errors.
    pub fn decrypt_slots(&mut self, ct: &Ciphertext) -> Result<Vec<u64>, HeError> {
        self.decrypt(ct)
    }

    /// Encrypts a slot vector with seed-compressed symmetric encryption:
    /// the upload carries one polynomial plus a 32-byte seed — half the
    /// bytes of [`Client::encrypt_slots`] (counted as one encryption op).
    ///
    /// # Errors
    ///
    /// Propagates encoding errors.
    // choco-lint: secret (public: values)
    pub fn encrypt_slots_seeded(
        &mut self,
        values: &[u64],
    ) -> Result<choco_he::bfv::SeededCiphertext, HeError> {
        let pt = self.ctx.batch_encoder()?.encode(values)?;
        self.enc_ops += 1;
        Ok(self
            .ctx
            .encrypt_symmetric_seeded(&pt, self.keys.secret_key(), &mut self.rng))
    }

    /// Remaining invariant noise budget of a ciphertext (diagnostics;
    /// BFV-named convenience for [`Client::health`]).
    pub fn noise_budget(&self, ct: &Ciphertext) -> f64 {
        self.health(ct)
    }
}

impl Client<Ckks> {
    /// Encrypts a real-valued vector (CKKS-named convenience for
    /// [`Client::encrypt`]).
    ///
    /// # Errors
    ///
    /// Propagates encoding errors.
    pub fn encrypt_values(
        &mut self,
        values: &[f64],
    ) -> Result<choco_he::ckks::CkksCiphertext, HeError> {
        self.encrypt(values)
    }

    /// Decrypts to real values (CKKS-named convenience for
    /// [`Client::decrypt`]).
    ///
    /// # Errors
    ///
    /// Propagates decoding errors.
    pub fn decrypt_values(
        &mut self,
        ct: &choco_he::ckks::CkksCiphertext,
    ) -> Result<Vec<f64>, HeError> {
        self.decrypt(ct)
    }
}

/// The untrusted server role: holds public material only. Generic over the
/// scheme `S`; exposes the scheme-generic evaluation surface workloads are
/// written against.
#[derive(Debug)]
pub struct Server<S: HeScheme> {
    ctx: S::Context,
    public: S::PublicKey,
    relin: S::RelinKey,
    galois: S::GaloisKeys,
}

impl<S: HeScheme> Server<S> {
    /// The HE context.
    pub fn context(&self) -> &S::Context {
        &self.ctx
    }

    /// The evaluation key for relinearization.
    pub fn relin_key(&self) -> &S::RelinKey {
        &self.relin
    }

    /// The Galois key set.
    pub fn galois_keys(&self) -> &S::GaloisKeys {
        &self.galois
    }

    /// The public key (servers may encrypt fresh constants).
    pub fn public_key(&self) -> &S::PublicKey {
        &self.public
    }

    /// One-time offline provisioning traffic: public key + relinearization
    /// key + Galois keys. Amortized across every later inference — the
    /// "offline preprocessing" Figure 10's totals include for the MPC
    /// baselines.
    pub fn provisioning_bytes(&self) -> usize {
        S::public_key_bytes(&self.public)
            + S::relin_key_bytes(&self.relin)
            + S::galois_keys_bytes(&self.galois)
    }

    /// Width of one rotation group (the packing unit for tiled kernels).
    pub fn slot_width(&self) -> usize {
        S::slot_width(&self.ctx)
    }

    /// Ciphertext + ciphertext.
    ///
    /// # Errors
    ///
    /// Propagates operand mismatches.
    pub fn add(&self, a: &S::Ciphertext, b: &S::Ciphertext) -> Result<S::Ciphertext, HeError> {
        S::add(&self.ctx, a, b)
    }

    /// Ciphertext − ciphertext.
    ///
    /// # Errors
    ///
    /// Propagates operand mismatches.
    pub fn sub(&self, a: &S::Ciphertext, b: &S::Ciphertext) -> Result<S::Ciphertext, HeError> {
        S::sub(&self.ctx, a, b)
    }

    /// Ciphertext + plaintext vector (model constants are public in CHOCO's
    /// trust model).
    ///
    /// # Errors
    ///
    /// Propagates encoding errors.
    pub fn add_plain(
        &self,
        ct: &S::Ciphertext,
        values: &[S::Value],
    ) -> Result<S::Ciphertext, HeError> {
        S::add_plain(&self.ctx, ct, values)
    }

    /// Ciphertext × plaintext vector; CKKS rescales afterwards (one level).
    ///
    /// # Errors
    ///
    /// Propagates encoding errors and exhausted level chains.
    pub fn mul_plain(
        &self,
        ct: &S::Ciphertext,
        values: &[S::Value],
    ) -> Result<S::Ciphertext, HeError> {
        S::mul_plain(&self.ctx, ct, values)
    }

    /// Rotates slots left by `step` within the rotation group.
    ///
    /// # Errors
    ///
    /// Returns a missing-Galois-key error for unprovisioned steps.
    pub fn rotate(&self, ct: &S::Ciphertext, step: i64) -> Result<S::Ciphertext, HeError> {
        S::rotate(&self.ctx, ct, step, &self.galois)
    }

    /// Fused diagonal dot kernel: `Σ_k rot(ct, shift_k) ⊙ diag_k`, routed
    /// through the scheme's hoisted fast path.
    ///
    /// # Errors
    ///
    /// Propagates missing Galois keys and encoding errors.
    pub fn dot_diagonals(
        &self,
        ct: &S::Ciphertext,
        diagonals: &[(i64, Vec<S::Value>)],
    ) -> Result<S::Ciphertext, HeError> {
        S::dot_diagonals(&self.ctx, ct, diagonals, &self.galois)
    }

    /// Rebuilds a server from checkpointed evaluation-key material.
    pub(crate) fn from_parts(
        ctx: S::Context,
        public: S::PublicKey,
        relin: S::RelinKey,
        galois: S::GaloisKeys,
    ) -> Self {
        Server {
            ctx,
            public,
            relin,
            galois,
        }
    }
}

impl Server<Bfv> {
    /// Encodes a plaintext vector server-side (model weights are public in
    /// CHOCO's trust model).
    ///
    /// # Errors
    ///
    /// Propagates encoding errors.
    pub fn encode(&self, values: &[u64]) -> Result<Plaintext, HeError> {
        self.ctx.batch_encoder()?.encode(values)
    }

    /// The homomorphic evaluator.
    pub fn evaluator(&self) -> choco_he::bfv::Evaluator<'_> {
        self.ctx.evaluator()
    }
}

impl Server<Ckks> {
    /// Encodes server-side plaintext data at a level/scale.
    ///
    /// # Errors
    ///
    /// Propagates encoding errors.
    pub fn encode_at(
        &self,
        values: &[f64],
        level: usize,
        scale: f64,
    ) -> Result<choco_he::ckks::CkksPlaintext, HeError> {
        self.ctx.encode_at(values, level, scale)
    }
}

/// Transfers a ciphertext client → server, recording its bytes.
pub fn upload<S: HeScheme>(ledger: &mut CommLedger, ct: &S::Ciphertext) -> S::Ciphertext {
    ledger.record_upload(S::ct_bytes(ct));
    ct.clone()
}

/// Transfers a ciphertext server → client, recording its bytes.
pub fn download<S: HeScheme>(ledger: &mut CommLedger, ct: &S::Ciphertext) -> S::Ciphertext {
    ledger.record_download(S::ct_bytes(ct));
    ct.clone()
}

/// Transfers a seed-compressed BFV ciphertext client → server, recording
/// its (halved) wire bytes, and expands it server-side.
pub fn upload_seeded(
    ledger: &mut CommLedger,
    ct: &choco_he::bfv::SeededCiphertext,
    server: &Server<Bfv>,
) -> Ciphertext {
    ledger.record_upload(ct.byte_size());
    server.ctx.expand_seeded(ct)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bfv_params() -> HeParams {
        HeParams::bfv_insecure(1024, &[40, 40, 41], 17).unwrap()
    }

    #[test]
    fn ledger_book_bills_per_tenant() {
        let mut book = LedgerBook::new();
        book.bill(7).record_upload(100);
        book.bill(7).record_download(40);
        book.bill(3).record_upload(9);
        book.bill(3).record_retransmit(5);
        assert_eq!(book.tenants(), 2);
        assert_eq!(book.get(7).map(|l| l.upload_bytes), Some(100));
        assert_eq!(book.get(7).map(|l| l.download_bytes), Some(40));
        assert_eq!(book.get(3).map(|l| l.retransmit_bytes), Some(5));
        assert_eq!(book.get(99), None);
        // Deterministic (tenant-id) iteration order.
        let ids: Vec<u64> = book.iter().map(|(t, _)| t).collect();
        assert_eq!(ids, vec![3, 7]);
        // Merge folds tenant-wise; combined sums everything.
        let mut other = LedgerBook::new();
        other.bill(7).record_upload(1);
        other.bill(11).record_download(2);
        book.merge(&other);
        assert_eq!(book.get(7).map(|l| l.upload_bytes), Some(101));
        assert_eq!(book.tenants(), 3);
        let total = book.combined();
        assert_eq!(total.upload_bytes, 101 + 9);
        assert_eq!(total.download_bytes, 40 + 2);
        assert_eq!(total.retransmit_bytes, 5);
    }

    #[test]
    fn ledger_accumulates_and_merges() {
        let mut a = CommLedger::new();
        a.record_upload(100);
        a.record_download(250);
        a.end_round();
        assert_eq!(a.total_bytes(), 350);
        assert_eq!(a.uploads, 1);
        assert_eq!(a.downloads, 1);
        assert_eq!(a.rounds, 1);
        let mut b = CommLedger::new();
        b.record_upload(50);
        b.merge(&a);
        assert_eq!(b.total_bytes(), 400);
        assert_eq!(b.uploads, 2);
    }

    #[test]
    fn client_server_roundtrip_with_accounting() {
        let params = bfv_params();
        let mut client = Client::<Bfv>::new(&params, b"proto test").unwrap();
        let server = client.provision_server(&[1, -1]).unwrap();
        let mut ledger = CommLedger::new();

        let values: Vec<u64> = (0..16).collect();
        let ct = client.encrypt_slots(&values).unwrap();
        let at_server = upload::<Bfv>(&mut ledger, &ct);

        // Server doubles the values homomorphically.
        let doubled = server.mul_plain(&at_server, &vec![2u64; 512]).unwrap();
        let back = download::<Bfv>(&mut ledger, &doubled);
        ledger.end_round();

        let out = client.decrypt_slots(&back).unwrap();
        assert_eq!(
            &out[..16],
            &(0..16).map(|i| i * 2).collect::<Vec<u64>>()[..]
        );
        assert_eq!(client.encryption_count(), 1);
        assert_eq!(client.decryption_count(), 1);
        assert_eq!(ledger.rounds, 1);
        // 2 polys × 1024 coeffs × 2 data residues × 8 bytes each way.
        assert_eq!(ledger.upload_bytes, 32768);
        assert_eq!(ledger.download_bytes, 32768);
    }

    #[test]
    fn seeded_uploads_halve_client_traffic() {
        let params = bfv_params();
        let mut client = Client::<Bfv>::new(&params, b"seeded proto").unwrap();
        let server = client.provision_server(&[1]).unwrap();
        let mut ledger = CommLedger::new();
        let values: Vec<u64> = (0..32).collect();

        let plain_ct = client.encrypt_slots(&values).unwrap();
        let full_bytes = plain_ct.byte_size();

        let seeded = client.encrypt_slots_seeded(&values).unwrap();
        let at_server = upload_seeded(&mut ledger, &seeded, &server);
        assert_eq!(ledger.upload_bytes, (full_bytes / 2 + 32) as u64);

        // Expanded ciphertext is fully functional server-side.
        let rotated = server.rotate(&at_server, 1).unwrap();
        let out = client.decrypt_slots(&rotated).unwrap();
        assert_eq!(out[0], 1);
        assert_eq!(client.encryption_count(), 2);
    }

    #[test]
    fn server_rotations_work_through_protocol() {
        let params = bfv_params();
        let mut client = Client::<Bfv>::new(&params, b"proto rot").unwrap();
        let server = client.provision_server(&[2]).unwrap();
        let values: Vec<u64> = (0..512).collect();
        let ct = client.encrypt_slots(&values).unwrap();
        let rotated = server.rotate(&ct, 2).unwrap();
        let out = client.decrypt_slots(&rotated).unwrap();
        assert_eq!(out[0], 2);
        assert_eq!(out[509], 511);
        assert_eq!(out[510], 0); // wrapped within the row
    }

    #[test]
    fn ckks_protocol_roundtrip() {
        let params = HeParams::ckks_insecure(1024, &[45, 45, 46], 38).unwrap();
        let mut client = Client::<Ckks>::new(&params, b"ckks proto").unwrap();
        let server = client.provision_server(&[1]).unwrap();
        let mut ledger = CommLedger::new();
        let ct = client.encrypt_values(&[1.0, 2.0, 3.0]).unwrap();
        let up = upload::<Ckks>(&mut ledger, &ct);
        let rot = server.rotate(&up, 1).unwrap();
        let down = download::<Ckks>(&mut ledger, &rot);
        let out = client.decrypt_values(&down).unwrap();
        assert!((out[0] - 2.0).abs() < 1e-2);
        assert!((out[1] - 3.0).abs() < 1e-2);
        assert!(ledger.total_bytes() > 0);
    }

    #[test]
    fn generic_workload_runs_under_both_schemes() {
        // The same generic function body serves both schemes — the rule
        // DESIGN.md §9 states: new workloads are written once, generically.
        fn double_first_slots<S: HeScheme>(
            params: &HeParams,
            inputs: &[f64],
        ) -> Result<Vec<f64>, HeError> {
            let mut client = Client::<S>::new(params, b"generic demo")?;
            let server = client.provision_server(&[1])?;
            let width = S::slot_width(client.context());
            let mut padded = inputs.to_vec();
            padded.resize(width, 0.0);
            let q = client.quantize(&padded, 6, 1);
            let ct = client.encrypt(&q)?;
            let two = client.quantize(&vec![2.0; width], 6, 0);
            let doubled = server.mul_plain(&ct, &two)?;
            let slots = client.decrypt(&doubled)?;
            Ok(client.dequantize(&slots, 6, 1)[..inputs.len()].to_vec())
        }

        let inputs = [0.5f64, 1.25, 3.0];
        let bfv = HeParams::bfv_insecure(1024, &[45, 45, 46], 20).unwrap();
        let ckks = HeParams::ckks_insecure(1024, &[45, 45, 46], 38).unwrap();
        for out in [
            double_first_slots::<Bfv>(&bfv, &inputs).unwrap(),
            double_first_slots::<Ckks>(&ckks, &inputs).unwrap(),
        ] {
            for (o, i) in out.iter().zip(&inputs) {
                assert!((o - 2.0 * i).abs() < 1e-2, "{o} vs {}", 2.0 * i);
            }
        }
    }
}
