//! The client-aided protocol: roles, key distribution, and the
//! communication ledger.
//!
//! CHOCO's trust model (§3.1): a trusted, resource-constrained client holds
//! the secret key; an untrusted but semi-honest server holds only public
//! material (encryption key, relinearization key, Galois keys) and performs
//! every encrypted linear operation. The client decrypts intermediate
//! results, applies non-linear plaintext operations, repacks, re-encrypts.
//!
//! Every byte that crosses the link is recorded in a [`CommLedger`] — the
//! quantity Figures 10, 11, 13 and 14 report — and the client counts its
//! encryption/decryption operations, which the CHOCO-TACO model multiplies
//! by per-op hardware costs (§5.2 methodology).

use choco_he::bfv::{BfvContext, Ciphertext, GaloisKeys, KeyBundle, Plaintext, RelinKey};
use choco_he::ckks::{
    CkksCiphertext, CkksContext, CkksGaloisKeys, CkksKeyBundle, CkksPlaintext, CkksRelinKey,
};
use choco_he::params::HeParams;
use choco_he::HeError;
use choco_prng::Blake3Rng;

/// Running totals of client↔server traffic.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CommLedger {
    /// Bytes sent client → server.
    pub upload_bytes: u64,
    /// Bytes sent server → client.
    pub download_bytes: u64,
    /// Ciphertexts sent client → server.
    pub uploads: u32,
    /// Ciphertexts sent server → client.
    pub downloads: u32,
    /// Communication rounds (one round = at least one transfer each way).
    pub rounds: u32,
    /// Extra wire bytes spent re-sending frames the transport layer lost or
    /// rejected (tag mismatch, truncation, drop). Kept separate from
    /// `upload_bytes`/`download_bytes` so Figure-10-style reports under a
    /// fault schedule stay point-comparable to the fault-free baseline.
    pub retransmit_bytes: u64,
    /// Client-aided noise-refresh round trips triggered by the transport
    /// watchdog (download → decrypt → re-encrypt → upload). The refresh
    /// traffic itself is billed to the regular byte counters.
    pub refresh_rounds: u32,
}

impl CommLedger {
    /// A fresh, empty ledger.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a client → server transfer of `bytes`.
    pub fn record_upload(&mut self, bytes: usize) {
        self.upload_bytes += bytes as u64;
        self.uploads += 1;
    }

    /// Records a server → client transfer of `bytes`.
    pub fn record_download(&mut self, bytes: usize) {
        self.download_bytes += bytes as u64;
        self.downloads += 1;
    }

    /// Marks the end of a communication round.
    pub fn end_round(&mut self) {
        self.rounds += 1;
    }

    /// Records `bytes` of retransmitted wire traffic (lost/corrupt frames
    /// re-sent by the transport layer).
    pub fn record_retransmit(&mut self, bytes: usize) {
        self.retransmit_bytes += bytes as u64;
    }

    /// Records one watchdog-triggered noise-refresh round trip.
    pub fn record_refresh(&mut self) {
        self.refresh_rounds += 1;
    }

    /// Total bytes both ways.
    pub fn total_bytes(&self) -> u64 {
        self.upload_bytes + self.download_bytes
    }

    /// Total bytes in mebibytes.
    pub fn total_mib(&self) -> f64 {
        self.total_bytes() as f64 / (1024.0 * 1024.0)
    }

    /// Folds another ledger into this one.
    pub fn merge(&mut self, other: &CommLedger) {
        self.upload_bytes += other.upload_bytes;
        self.download_bytes += other.download_bytes;
        self.uploads += other.uploads;
        self.downloads += other.downloads;
        self.rounds += other.rounds;
        self.retransmit_bytes += other.retransmit_bytes;
        self.refresh_rounds += other.refresh_rounds;
    }
}

/// The trusted client role (BFV): owns the secret key, encrypts, decrypts,
/// and counts its cryptographic operations.
#[derive(Debug)]
pub struct BfvClient {
    ctx: BfvContext,
    keys: KeyBundle,
    rng: Blake3Rng,
    enc_ops: u64,
    dec_ops: u64,
}

impl BfvClient {
    /// Creates a client with fresh keys from `seed`.
    ///
    /// # Errors
    ///
    /// Propagates context construction errors.
    pub fn new(params: &HeParams, seed: &[u8]) -> Result<Self, HeError> {
        let ctx = BfvContext::new(params)?;
        let mut rng = Blake3Rng::from_seed(seed);
        let keys = ctx.keygen(&mut rng);
        Ok(BfvClient {
            ctx,
            keys,
            rng,
            enc_ops: 0,
            dec_ops: 0,
        })
    }

    /// The HE context (shared with the server).
    pub fn context(&self) -> &BfvContext {
        &self.ctx
    }

    /// Provisions the untrusted server: public key, relin key, Galois keys
    /// for the requested rotation steps. (One-time offline setup.)
    ///
    /// # Errors
    ///
    /// Propagates key-generation errors.
    pub fn provision_server(&mut self, rotation_steps: &[i64]) -> Result<BfvServer, HeError> {
        let relin = self.ctx.relin_key(self.keys.secret_key(), &mut self.rng)?;
        let galois = self
            .ctx
            .galois_keys(self.keys.secret_key(), rotation_steps, &mut self.rng)?;
        Ok(BfvServer {
            ctx: self.ctx.clone(),
            public: self.keys.public_key().clone(),
            relin,
            galois,
        })
    }

    /// Encrypts a slot vector (counted as one encryption op).
    ///
    /// # Errors
    ///
    /// Propagates encoding errors.
    pub fn encrypt_slots(&mut self, values: &[u64]) -> Result<Ciphertext, HeError> {
        let pt = self.ctx.batch_encoder()?.encode(values)?;
        self.enc_ops += 1;
        Ok(self
            .ctx
            .encryptor(self.keys.public_key())
            .encrypt(&pt, &mut self.rng))
    }

    /// Decrypts to a slot vector (counted as one decryption op).
    ///
    /// # Errors
    ///
    /// Propagates decoding errors.
    pub fn decrypt_slots(&mut self, ct: &Ciphertext) -> Result<Vec<u64>, HeError> {
        self.dec_ops += 1;
        let pt = self.ctx.decryptor(self.keys.secret_key()).decrypt(ct);
        self.ctx.batch_encoder()?.decode(&pt)
    }

    /// Encrypts a slot vector with seed-compressed symmetric encryption:
    /// the upload carries one polynomial plus a 32-byte seed — half the
    /// bytes of [`BfvClient::encrypt_slots`] (counted as one encryption op).
    ///
    /// # Errors
    ///
    /// Propagates encoding errors.
    pub fn encrypt_slots_seeded(
        &mut self,
        values: &[u64],
    ) -> Result<choco_he::bfv::SeededCiphertext, HeError> {
        let pt = self.ctx.batch_encoder()?.encode(values)?;
        self.enc_ops += 1;
        Ok(self
            .ctx
            .encrypt_symmetric_seeded(&pt, self.keys.secret_key(), &mut self.rng))
    }

    /// Remaining invariant noise budget of a ciphertext (diagnostics).
    pub fn noise_budget(&self, ct: &Ciphertext) -> f64 {
        self.ctx
            .decryptor(self.keys.secret_key())
            .invariant_noise_budget(ct)
    }

    /// Number of encryptions performed so far.
    pub fn encryption_count(&self) -> u64 {
        self.enc_ops
    }

    /// Number of decryptions performed so far.
    pub fn decryption_count(&self) -> u64 {
        self.dec_ops
    }
}

/// The untrusted server role (BFV): holds public material only.
#[derive(Debug)]
pub struct BfvServer {
    ctx: BfvContext,
    public: choco_he::bfv::PublicKey,
    relin: RelinKey,
    galois: GaloisKeys,
}

impl BfvServer {
    /// The HE context.
    pub fn context(&self) -> &BfvContext {
        &self.ctx
    }

    /// The evaluation key for relinearization.
    pub fn relin_key(&self) -> &RelinKey {
        &self.relin
    }

    /// The Galois key set.
    pub fn galois_keys(&self) -> &GaloisKeys {
        &self.galois
    }

    /// The public key (servers may encrypt fresh constants).
    pub fn public_key(&self) -> &choco_he::bfv::PublicKey {
        &self.public
    }

    /// One-time offline provisioning traffic: public key + relinearization
    /// key + Galois keys. Amortized across every later inference — the
    /// "offline preprocessing" Figure 10's totals include for the MPC
    /// baselines.
    pub fn provisioning_bytes(&self) -> usize {
        self.public.byte_size() + self.relin.size_bytes() + self.galois.size_bytes()
    }

    /// Encodes a plaintext vector server-side (model weights are public in
    /// CHOCO's trust model).
    ///
    /// # Errors
    ///
    /// Propagates encoding errors.
    pub fn encode(&self, values: &[u64]) -> Result<Plaintext, HeError> {
        self.ctx.batch_encoder()?.encode(values)
    }

    /// The homomorphic evaluator.
    pub fn evaluator(&self) -> choco_he::bfv::Evaluator<'_> {
        self.ctx.evaluator()
    }
}

/// Transfers a BFV ciphertext client → server, recording its bytes.
pub fn upload(ledger: &mut CommLedger, ct: &Ciphertext) -> Ciphertext {
    ledger.record_upload(ct.byte_size());
    ct.clone()
}

/// Transfers a BFV ciphertext server → client, recording its bytes.
pub fn download(ledger: &mut CommLedger, ct: &Ciphertext) -> Ciphertext {
    ledger.record_download(ct.byte_size());
    ct.clone()
}

/// Transfers a seed-compressed ciphertext client → server, recording its
/// (halved) wire bytes, and expands it server-side.
pub fn upload_seeded(
    ledger: &mut CommLedger,
    ct: &choco_he::bfv::SeededCiphertext,
    server: &BfvServer,
) -> Ciphertext {
    ledger.record_upload(ct.byte_size());
    server.ctx.expand_seeded(ct)
}

/// The trusted client role (CKKS) for the distance-based and PageRank
/// workloads.
#[derive(Debug)]
pub struct CkksClient {
    ctx: CkksContext,
    keys: CkksKeyBundle,
    rng: Blake3Rng,
    enc_ops: u64,
    dec_ops: u64,
}

impl CkksClient {
    /// Creates a client with fresh keys from `seed`.
    ///
    /// # Errors
    ///
    /// Propagates context construction errors.
    pub fn new(params: &HeParams, seed: &[u8]) -> Result<Self, HeError> {
        let ctx = CkksContext::new(params)?;
        let mut rng = Blake3Rng::from_seed(seed);
        let keys = ctx.keygen(&mut rng);
        Ok(CkksClient {
            ctx,
            keys,
            rng,
            enc_ops: 0,
            dec_ops: 0,
        })
    }

    /// The HE context.
    pub fn context(&self) -> &CkksContext {
        &self.ctx
    }

    /// Provisions the server with public material.
    pub fn provision_server(&mut self, rotation_steps: &[i64]) -> CkksServer {
        let relin = self.ctx.relin_key(self.keys.secret_key(), &mut self.rng);
        let galois = self
            .ctx
            .galois_keys(self.keys.secret_key(), rotation_steps, &mut self.rng);
        CkksServer {
            ctx: self.ctx.clone(),
            public: self.keys.public_key().clone(),
            relin,
            galois,
        }
    }

    /// Encrypts a real-valued vector (one encryption op).
    ///
    /// # Errors
    ///
    /// Propagates encoding errors.
    pub fn encrypt_values(&mut self, values: &[f64]) -> Result<CkksCiphertext, HeError> {
        let pt = self.ctx.encode(values)?;
        self.enc_ops += 1;
        self.ctx.encrypt(&pt, self.keys.public_key(), &mut self.rng)
    }

    /// Decrypts to real values (one decryption op).
    pub fn decrypt_values(&mut self, ct: &CkksCiphertext) -> Vec<f64> {
        self.dec_ops += 1;
        let pt = self.ctx.decrypt(ct, self.keys.secret_key());
        self.ctx.decode(&pt)
    }

    /// Number of encryptions performed so far.
    pub fn encryption_count(&self) -> u64 {
        self.enc_ops
    }

    /// Number of decryptions performed so far.
    pub fn decryption_count(&self) -> u64 {
        self.dec_ops
    }
}

/// The untrusted server role (CKKS).
#[derive(Debug)]
pub struct CkksServer {
    ctx: CkksContext,
    public: choco_he::ckks::CkksPublicKey,
    relin: CkksRelinKey,
    galois: CkksGaloisKeys,
}

impl CkksServer {
    /// The HE context.
    pub fn context(&self) -> &CkksContext {
        &self.ctx
    }

    /// The relinearization key.
    pub fn relin_key(&self) -> &CkksRelinKey {
        &self.relin
    }

    /// The Galois key set.
    pub fn galois_keys(&self) -> &CkksGaloisKeys {
        &self.galois
    }

    /// The public key.
    pub fn public_key(&self) -> &choco_he::ckks::CkksPublicKey {
        &self.public
    }

    /// One-time offline provisioning traffic (public + relin + Galois keys).
    pub fn provisioning_bytes(&self) -> usize {
        self.public.byte_size() + self.relin.size_bytes() + self.galois.size_bytes()
    }

    /// Encodes server-side plaintext data at a level/scale.
    ///
    /// # Errors
    ///
    /// Propagates encoding errors.
    pub fn encode_at(
        &self,
        values: &[f64],
        level: usize,
        scale: f64,
    ) -> Result<CkksPlaintext, HeError> {
        self.ctx.encode_at(values, level, scale)
    }
}

/// Transfers a CKKS ciphertext client → server, recording its bytes.
pub fn upload_ckks(ledger: &mut CommLedger, ct: &CkksCiphertext) -> CkksCiphertext {
    ledger.record_upload(ct.byte_size());
    ct.clone()
}

/// Transfers a CKKS ciphertext server → client, recording its bytes.
pub fn download_ckks(ledger: &mut CommLedger, ct: &CkksCiphertext) -> CkksCiphertext {
    ledger.record_download(ct.byte_size());
    ct.clone()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bfv_params() -> HeParams {
        HeParams::bfv_insecure(1024, &[40, 40, 41], 17).unwrap()
    }

    #[test]
    fn ledger_accumulates_and_merges() {
        let mut a = CommLedger::new();
        a.record_upload(100);
        a.record_download(250);
        a.end_round();
        assert_eq!(a.total_bytes(), 350);
        assert_eq!(a.uploads, 1);
        assert_eq!(a.downloads, 1);
        assert_eq!(a.rounds, 1);
        let mut b = CommLedger::new();
        b.record_upload(50);
        b.merge(&a);
        assert_eq!(b.total_bytes(), 400);
        assert_eq!(b.uploads, 2);
    }

    #[test]
    fn client_server_roundtrip_with_accounting() {
        let params = bfv_params();
        let mut client = BfvClient::new(&params, b"proto test").unwrap();
        let server = client.provision_server(&[1, -1]).unwrap();
        let mut ledger = CommLedger::new();

        let values: Vec<u64> = (0..16).collect();
        let ct = client.encrypt_slots(&values).unwrap();
        let at_server = upload(&mut ledger, &ct);

        // Server doubles the values homomorphically.
        let two = server.encode(&vec![2u64; 512]).unwrap();
        let doubled = server.evaluator().multiply_plain(&at_server, &two);
        let back = download(&mut ledger, &doubled);
        ledger.end_round();

        let out = client.decrypt_slots(&back).unwrap();
        assert_eq!(
            &out[..16],
            &(0..16).map(|i| i * 2).collect::<Vec<u64>>()[..]
        );
        assert_eq!(client.encryption_count(), 1);
        assert_eq!(client.decryption_count(), 1);
        assert_eq!(ledger.rounds, 1);
        // 2 polys × 1024 coeffs × 2 data residues × 8 bytes each way.
        assert_eq!(ledger.upload_bytes, 32768);
        assert_eq!(ledger.download_bytes, 32768);
    }

    #[test]
    fn seeded_uploads_halve_client_traffic() {
        let params = bfv_params();
        let mut client = BfvClient::new(&params, b"seeded proto").unwrap();
        let server = client.provision_server(&[1]).unwrap();
        let mut ledger = CommLedger::new();
        let values: Vec<u64> = (0..32).collect();

        let plain_ct = client.encrypt_slots(&values).unwrap();
        let full_bytes = plain_ct.byte_size();

        let seeded = client.encrypt_slots_seeded(&values).unwrap();
        let at_server = upload_seeded(&mut ledger, &seeded, &server);
        assert_eq!(ledger.upload_bytes, (full_bytes / 2 + 32) as u64);

        // Expanded ciphertext is fully functional server-side.
        let rotated = server
            .evaluator()
            .rotate_rows(&at_server, 1, server.galois_keys())
            .unwrap();
        let out = client.decrypt_slots(&rotated).unwrap();
        assert_eq!(out[0], 1);
        assert_eq!(client.encryption_count(), 2);
    }

    #[test]
    fn server_rotations_work_through_protocol() {
        let params = bfv_params();
        let mut client = BfvClient::new(&params, b"proto rot").unwrap();
        let server = client.provision_server(&[2]).unwrap();
        let values: Vec<u64> = (0..512).collect();
        let ct = client.encrypt_slots(&values).unwrap();
        let rotated = server
            .evaluator()
            .rotate_rows(&ct, 2, server.galois_keys())
            .unwrap();
        let out = client.decrypt_slots(&rotated).unwrap();
        assert_eq!(out[0], 2);
        assert_eq!(out[509], 511);
        assert_eq!(out[510], 0); // wrapped within the row
    }

    #[test]
    fn ckks_protocol_roundtrip() {
        let params = HeParams::ckks_insecure(1024, &[45, 45, 46], 38).unwrap();
        let mut client = CkksClient::new(&params, b"ckks proto").unwrap();
        let server = client.provision_server(&[1]);
        let mut ledger = CommLedger::new();
        let ct = client.encrypt_values(&[1.0, 2.0, 3.0]).unwrap();
        let up = upload_ckks(&mut ledger, &ct);
        let rot = server
            .context()
            .rotate(&up, 1, server.galois_keys())
            .unwrap();
        let down = download_ckks(&mut ledger, &rot);
        let out = client.decrypt_values(&down);
        assert!((out[0] - 2.0).abs() < 1e-2);
        assert!((out[1] - 3.0).abs() < 1e-2);
        assert!(ledger.total_bytes() > 0);
    }
}
