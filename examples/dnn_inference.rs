//! Encrypted DNN convolution offload: one real conv layer through the full
//! CHOCO stack, followed by the client-aided cost plan for all four Table 5
//! networks with CHOCO-TACO acceleration.
//!
//! ```sh
//! cargo run --release --example dnn_inference
//! ```

use choco::transport::Session;
use choco_apps::dnn::{
    client_aided_plan, conv2d_plain_circular, conv_rotation_steps, run_encrypted_conv_layer,
    Network,
};
use choco_he::params::HeParams;
use choco_he::Bfv;
use choco_taco::config::AcceleratorConfig;
use choco_taco::model::{decryption_profile, encryption_profile};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // --- Part 1: a real encrypted convolution layer ------------------------
    let (h, w, f, in_ch, out_ch) = (8usize, 8usize, 3usize, 4usize, 2usize);
    println!("encrypted conv: {in_ch}→{out_ch} channels, {h}x{w} maps, {f}x{f} filter");
    let params = HeParams::set_b();
    let steps = conv_rotation_steps(in_ch, h, w, f);
    let mut session = Session::<Bfv>::direct(&params, b"dnn example", &steps)?;

    // Seeded 4-bit image and weights.
    let image: Vec<Vec<u64>> = (0..in_ch)
        .map(|c| (0..h * w).map(|i| ((i * 5 + c) % 16) as u64).collect())
        .collect();
    let weights: Vec<Vec<Vec<u64>>> = (0..out_ch)
        .map(|o| {
            (0..in_ch)
                .map(|c| (0..f * f).map(|i| ((i + o * 2 + c) % 16) as u64).collect())
                .collect()
        })
        .collect();

    let maps = run_encrypted_conv_layer(&mut session, &image, &weights, h, w, f)?;
    let plain_t = session.server().context().plain_modulus();
    let reference = conv2d_plain_circular(&image, &weights, h, w, f, plain_t);
    assert_eq!(maps, reference, "encrypted conv must match the reference");
    let (client, _server, ledger) = session.into_parts();
    println!(
        "  ✓ matches plaintext reference; {:.2} MB communicated, {} enc / {} dec ops",
        ledger.total_mib(),
        client.encryption_count(),
        client.decryption_count()
    );

    // --- Part 2: whole-network client cost plans ---------------------------
    println!("\nclient-aided plans with CHOCO-TACO acceleration:");
    let cfg = AcceleratorConfig::paper_operating_point();
    for net in Network::all() {
        let p = if net.dataset == "MNIST" {
            HeParams::set_b()
        } else {
            HeParams::set_a()
        };
        let plan = client_aided_plan(&net, &p);
        let crypto_ms = (plan.encryptions as f64
            * encryption_profile(&cfg, p.degree(), p.prime_count()).time_s
            + plan.decryptions as f64
                * decryption_profile(&cfg, p.degree(), p.prime_count()).time_s)
            * 1e3;
        println!(
            "  {:<8} {:>3} boundaries, {:>4} enc / {:>4} dec ops, {:>7.2} MB comm, {:>7.2} ms client crypto",
            net.name,
            plan.boundaries,
            plan.encryptions,
            plan.decryptions,
            plan.comm_bytes as f64 / 1e6,
            crypto_ms
        );
    }
    Ok(())
}
