//! Encrypted PageRank offload: the server iterates the rank vector on
//! encrypted data; the client refreshes noise on a configurable schedule
//! (the Figure 13 tradeoff).
//!
//! ```sh
//! cargo run --release --example pagerank
//! ```

use choco::transport::LinkConfig;
use choco_apps::pagerank::{pagerank_comm_model, pagerank_encrypted, pagerank_plain, Graph};
use choco_he::params::{HeParams, SchemeType};
use choco_he::Bfv;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A small web graph: 0 and 2 form a hub pair; 3 is a dangling page.
    let graph = Graph::from_adjacency(&[
        vec![1, 2],
        vec![2],
        vec![0],
        vec![0, 2],
        vec![2, 4].into_iter().filter(|&x| x != 4).collect(),
        vec![0, 3],
    ]);
    let damping = 0.85;
    let iterations = 8;

    let reference = pagerank_plain(&graph, damping, iterations);
    println!("plaintext ranks: {reference:?}");

    let params = HeParams::bfv_insecure(1024, &[45, 45, 46], 24)?;
    let enc = pagerank_encrypted::<Bfv>(
        &graph,
        damping,
        iterations,
        1,
        &params,
        10,
        LinkConfig::direct(),
    )?;
    println!("encrypted ranks: {:?}", enc.ranks);
    let max_err = enc
        .ranks
        .iter()
        .zip(&reference)
        .map(|(a, b)| (a - b).abs())
        .fold(0.0f64, f64::max);
    println!(
        "max error {max_err:.4}; {} refresh rounds, {:.2} MB communicated",
        enc.ledger.rounds,
        enc.ledger.total_bytes() as f64 / 1e6
    );
    assert!(max_err < 0.02);

    println!("\nFigure 13 schedule tradeoff for 24 total iterations (64-node graph):");
    for set in [1u32, 2, 3, 4, 6, 8, 12, 24] {
        match pagerank_comm_model(SchemeType::Bfv, 24, set, 64, 16) {
            Some((n, k, bytes)) => println!(
                "  burst {set:>2}: N={n:>5}, k={k}, comm {:>8.2} MB",
                bytes as f64 / 1e6
            ),
            None => {
                println!("  burst {set:>2}: no 128-bit-secure parameter set can hold the noise")
            }
        }
    }
    println!("frequent refresh with small ciphertexts wins — and fits CHOCO-TACO (N<=8192, k<=3)");
    Ok(())
}
