//! The EVA-style compiler in action: author an encrypted-vector program,
//! optimize it, compile it (automatic rescale/mod-switch insertion), and
//! run it on real CKKS ciphertexts — checking against the plaintext
//! executor.
//!
//! ```sh
//! cargo run --release --example eva_compiler
//! ```

use choco::compiler::{compile, optimize, CompilerOptions, Program};
use choco_he::ckks::CkksContext;
use choco_he::params::HeParams;
use choco_he::Ckks;
use choco_prng::Blake3Rng;
use std::collections::HashMap;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A smoothed finite-difference kernel with a squared non-linearity:
    //   y = (w ⊙ (x + rot(x,1) + rot(x,-1)))², then + x·x (written twice to
    // show CSE earning its keep).
    let mut p = Program::new();
    let x = p.input("x");
    let l = p.rotate(x, 1);
    let r = p.rotate(x, -1);
    let s1 = p.add(x, l);
    let s = p.add(s1, r);
    let w = p.constant(&[1.0 / 3.0; 8]);
    let smooth = p.mul_plain(s, w);
    let sq = p.mul(smooth, smooth);
    let xx1 = p.mul(x, x);
    let xx2 = p.mul(x, x); // duplicate on purpose
    let both = p.add(xx1, xx2);
    let y = p.add(sq, both);
    p.output(y);

    println!("source program: {} nodes", p.len());
    let opt = optimize(&p);
    println!("after CSE:      {} nodes", opt.len());

    // Uniform 40-bit rescale chain matching the 2^40 waterline: every
    // rescale lands scales back at the waterline, so differently-deep
    // branches stay addable (EVA's standard configuration).
    let params = HeParams::ckks(8192, &[40, 40, 40, 59], 40)?;
    let ctx = CkksContext::new(&params)?;
    let copts = CompilerOptions {
        scale_bits: 40,
        prime_bits: 40,
        max_levels: ctx.top_level(),
    };
    let compiled = compile(&opt, &copts)?;
    println!(
        "compiled: {} ops ({} ct-mults, {} pt-mults, {} rotations, {} rescales, {} mod-switches); needs {} levels",
        compiled.len(),
        compiled.counts.ct_mults,
        compiled.counts.pt_mults,
        compiled.counts.rotations,
        compiled.counts.rescales,
        compiled.counts.mod_switches,
        compiled.required_levels,
    );

    // Keys sized by what the compiler says it needs.
    let mut rng = Blake3Rng::from_seed(b"eva example");
    let keys = ctx.keygen(&mut rng);
    let relin = ctx.relin_key(keys.secret_key(), &mut rng);
    let galois = ctx.galois_keys(keys.secret_key(), &compiled.rotation_steps, &mut rng);

    let x_vals: Vec<f64> = (0..8).map(|i| (i as f64) / 4.0 - 1.0).collect();
    let mut plain_inputs = HashMap::new();
    plain_inputs.insert("x".to_string(), {
        let mut v = x_vals.clone();
        v.resize(ctx.slot_count(), 0.0);
        v
    });
    let expected = compiled.execute_plain(&plain_inputs)?;

    let mut enc_inputs = HashMap::new();
    let pt = ctx.encode(&x_vals)?;
    enc_inputs.insert(
        "x".to_string(),
        ctx.encrypt(&pt, keys.public_key(), &mut rng)?,
    );
    let out_ct = compiled.execute_encrypted::<Ckks>(&ctx, &enc_inputs, &relin, &galois)?;
    let got = ctx.decode(&ctx.decrypt(&out_ct[0], keys.secret_key()));

    println!("\nslot | encrypted | plaintext reference");
    for i in 0..8 {
        println!("{i:>4} | {:>9.5} | {:>9.5}", got[i], expected[0][i]);
        assert!((got[i] - expected[0][i]).abs() < 1e-2);
    }
    println!("\nencrypted execution matches the plaintext executor ✓");
    Ok(())
}
