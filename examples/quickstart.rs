//! Quickstart: the CHOCO client-aided loop in ~50 lines.
//!
//! A client encrypts a vector, the untrusted server computes an encrypted
//! affine transform (multiply + rotate + add) using rotational-redundancy
//! packing, and the client decrypts — with every byte accounted.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use choco::protocol::{download, upload, Client, CommLedger};
use choco::rotation::{windowed_rotate_redundant, RedundantLayout};
use choco_he::params::HeParams;
use choco_he::Bfv;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Paper parameter set B: N = 4096, {36,36,37}, 18-bit t — 128 KiB
    // ciphertexts at 128-bit security.
    let params = HeParams::set_b();
    println!(
        "parameters: set B — N={}, ciphertext {} bytes",
        params.degree(),
        params.ciphertext_bytes()
    );

    // The trusted client owns the keys; the server gets public material.
    let mut client = Client::<Bfv>::new(&params, b"quickstart seed")?;
    let server = client.provision_server(&[1, 2, -1, -2])?;
    let mut ledger = CommLedger::new();

    // Sensor data, packed with redundancy so the server can rotate the
    // window without masking multiplies.
    let readings: Vec<u64> = (0..16).map(|i| 10 + i).collect();
    let layout = RedundantLayout::new(16, 2);
    let ct = client.encrypt_slots(&layout.pack(&readings))?;
    println!("fresh noise budget: {:.0} bits", client.noise_budget(&ct));

    // Offload: the server shifts the window by +2 and doubles it.
    let at_server = upload::<Bfv>(&mut ledger, &ct);
    let ctx = server.context();
    let rotated = windowed_rotate_redundant(ctx, &at_server, &layout, 2, server.galois_keys())?;
    let two = server.encode(&vec![2u64; ctx.degree() / 2])?;
    let doubled = ctx.evaluator().multiply_plain(&rotated, &two);
    let reply = download::<Bfv>(&mut ledger, &doubled);
    ledger.end_round();

    // Client decrypts and unpacks the window of interest.
    let slots = client.decrypt_slots(&reply)?;
    let result = layout.extract(&slots);
    println!("result: {result:?}");
    assert_eq!(result[0], 2 * readings[2]);
    assert_eq!(result[15], 2 * readings[1]); // wrapped around

    println!(
        "communication: {} up + {} down = {:.2} MB in {} round(s)",
        ledger.uploads,
        ledger.downloads,
        ledger.total_mib(),
        ledger.rounds
    );
    println!(
        "client crypto ops: {} encryptions, {} decryptions",
        client.encryption_count(),
        client.decryption_count()
    );
    Ok(())
}
