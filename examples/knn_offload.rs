//! Privacy-preserving KNN: a client classifies its secret query against the
//! server's point database using encrypted CKKS distance computation —
//! comparing the five packing variants of Figure 9.
//!
//! ```sh
//! cargo run --release --example knn_offload
//! ```

use choco::transport::Session;
use choco_apps::distance::{
    distance_rotation_steps, distances_plain, encrypted_distances, knn_classify, PackingVariant,
};
use choco_he::params::HeParams;
use choco_he::Ckks;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Two Gaussian-ish clusters with labels 0 / 1; the query sits in
    // cluster 1's neighbourhood.
    let dims = 4usize;
    let points: Vec<Vec<f64>> = vec![
        vec![0.1, 0.2, 0.0, 0.1],
        vec![0.0, 0.1, 0.2, 0.0],
        vec![0.2, 0.0, 0.1, 0.1],
        vec![1.9, 2.0, 2.1, 1.8],
        vec![2.0, 2.1, 1.9, 2.0],
        vec![2.1, 1.9, 2.0, 2.1],
    ];
    let labels = vec![0usize, 0, 0, 1, 1, 1];
    let query = vec![1.8, 2.2, 2.0, 1.9];

    // Small CKKS parameters keep the example fast; set C is the production
    // choice (use `HeParams::set_c()`).
    let params = HeParams::ckks_insecure(1024, &[45, 45, 45, 46], 38)?;
    let expected = distances_plain(&query, &points);

    for variant in PackingVariant::all() {
        let steps = distance_rotation_steps(dims, points.len(), params.slot_count());
        let mut session = Session::<Ckks>::direct(&params, b"knn example", &steps)?;
        let res = encrypted_distances(variant, &mut session, &query, &points)?;
        let label = knn_classify(&res.distances, &labels, 3);
        let max_err = res
            .distances
            .iter()
            .zip(&expected)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f64, f64::max);
        println!(
            "{:<26} → class {label}  (max dist err {max_err:.4}, {} up / {} down cts, {} server ops)",
            variant.label(),
            res.ledger.uploads,
            res.ledger.downloads,
            res.server_ops
        );
        assert_eq!(label, 1, "query belongs to cluster 1");
    }
    println!("\nall five packings agree; collapsed point-major trades server work for minimal client traffic (§5.4)");
    Ok(())
}
