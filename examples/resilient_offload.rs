//! Encrypted DNN offload over a lossy link.
//!
//! Runs the LeNet-like encrypted pipeline twice — once over perfect
//! in-memory channels, once over seeded fault-injecting channels — and
//! shows that the logits are bit-identical while the ledger separates the
//! fault-tolerance cost (retransmitted bytes, refresh rounds) from the
//! paper-comparable upload/download columns.
//!
//! ```sh
//! cargo run --release --example resilient_offload
//! ```

use choco::transport::{FaultPlan, FaultyChannel, LinkConfig, RetryPolicy};
use choco_apps::pipeline::{run_encrypted, seeded_weights, LenetLikeSpec};
use choco_he::params::HeParams;

fn or_die<T, E: std::fmt::Display>(what: &str, result: Result<T, E>) -> T {
    result.unwrap_or_else(|e| {
        eprintln!("resilient_offload: {what}: {e}");
        std::process::exit(1)
    })
}

fn main() {
    let spec = LenetLikeSpec::tiny();
    let weights = seeded_weights(&spec, b"resilient demo");
    let image: Vec<u64> = (0..spec.img * spec.img)
        .map(|i| ((i * 5 + 1) % 16) as u64)
        .collect();
    let params = or_die("params", HeParams::bfv_insecure(1024, &[45, 45, 46], 18));

    println!("== fault-free baseline ==");
    let base = or_die(
        "baseline run",
        run_encrypted(
            &spec,
            &weights,
            &image,
            &params,
            b"demo",
            LinkConfig::direct(),
        ),
    );
    println!("logits: {:?}  -> class {}", base.logits, base.class);
    println!(
        "upload {} B, download {} B, rounds {}",
        base.ledger.upload_bytes, base.ledger.download_bytes, base.ledger.rounds
    );

    println!();
    println!("== same run over a lossy link (20% drop, 15% corrupt, 10% truncate) ==");
    let plan = FaultPlan::flaky();
    let link = LinkConfig {
        uplink: Box::new(FaultyChannel::new(b"demo uplink", plan)),
        downlink: Box::new(FaultyChannel::new(b"demo downlink", plan)),
        policy: RetryPolicy {
            max_attempts: 16,
            ..RetryPolicy::default()
        },
    };
    let faulty = or_die(
        "faulty-link run",
        run_encrypted(&spec, &weights, &image, &params, b"demo", link),
    );
    println!("logits: {:?}  -> class {}", faulty.logits, faulty.class);
    println!(
        "upload {} B, download {} B, rounds {} (unchanged: Figure-10 comparable)",
        faulty.ledger.upload_bytes, faulty.ledger.download_bytes, faulty.ledger.rounds
    );
    println!(
        "retransmitted {} B, refresh rounds {} (the fault-tolerance bill)",
        faulty.ledger.retransmit_bytes, faulty.ledger.refresh_rounds
    );

    assert_eq!(
        base.logits, faulty.logits,
        "faults must never change results"
    );
    println!();
    println!("bit-identical logits under faults: OK");
}
