//! Full LeNet-5-Small inference through the client-aided encrypted
//! pipeline: two encrypted convolutions, client-side requantize + pool
//! boundaries, and an encrypted fully-connected classifier — verified
//! bit-exact against the plaintext twin.
//!
//! ```sh
//! cargo run --release --example lenet_encrypted
//! ```

use choco::transport::LinkConfig;
use choco_apps::pipeline::{run_encrypted, run_plain, seeded_weights, LenetLikeSpec};
use choco_he::bfv::BfvContext;
use choco_he::params::HeParams;
use std::time::Instant;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let spec = LenetLikeSpec::lenet_small();
    println!(
        "LeNet-5-Small (28x28, {}→{} channels, {}x{} filters, {} classes)",
        spec.conv1_ch, spec.conv2_ch, spec.filter, spec.filter, spec.classes
    );
    let weights = seeded_weights(&spec, b"lenet weights");
    // A synthetic 4-bit "digit": bright diagonal stroke on dark background.
    let image: Vec<u64> = (0..spec.img * spec.img)
        .map(|i| {
            let (y, x) = (i / spec.img, i % spec.img);
            if y.abs_diff(x) <= 2 {
                12
            } else {
                1
            }
        })
        .collect();

    let params = HeParams::set_b(); // Table 3 set B, 128-bit security
    let start = Instant::now();
    let run = run_encrypted(
        &spec,
        &weights,
        &image,
        &params,
        b"lenet demo",
        LinkConfig::direct(),
    )?;
    let elapsed = start.elapsed();

    let t = BfvContext::new(&params)?.plain_modulus();
    let (plain_logits, plain_class) = run_plain(&spec, &weights, &image, t);
    assert_eq!(
        run.logits, plain_logits,
        "encrypted logits must be bit-exact"
    );
    assert_eq!(run.class, plain_class);

    println!("logits: {:?}", run.logits);
    println!(
        "predicted class: {} (matches plaintext twin exactly)",
        run.class
    );
    println!(
        "client: {} encryptions, {} decryptions; {:.2} MB over {} rounds; wall time {:.2?}",
        run.crypto_ops.0,
        run.crypto_ops.1,
        run.ledger.total_mib(),
        run.ledger.rounds,
        elapsed
    );
    Ok(())
}
